//! Retention-period sweep: how refresh overhead and ESTEEM's benefit grow
//! as the eDRAM retention period shrinks (paper §7.3 studies 50 us vs
//! 40 us; retention halves roughly every 45 C of temperature increase).
//!
//! ```text
//! cargo run --release --example retention_sweep [benchmark]
//! ```

use esteem::core::{Simulator, SystemConfig, Technique};
use esteem::edram::retention::retention_micros_at_temp;
use esteem::edram::RetentionSpec;
use esteem::harness::{default_algo, Scale};
use esteem::workloads::benchmark_by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gobmk".into());
    let profile = benchmark_by_name(&name).expect("unknown benchmark");
    let scale = Scale::Quick;

    println!("retention physics (anchored at 40us @ 105C, 50us @ 60C):");
    for temp in [30.0, 60.0, 85.0, 105.0] {
        println!(
            "  {temp:>5.0} C -> retention {:>6.1} us",
            retention_micros_at_temp(temp)
        );
    }

    println!(
        "\n{name}: baseline vs ESTEEM across retention periods ({} instrs)",
        scale.instructions()
    );
    println!(
        "\n{:>9} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "retention", "base RPKI", "base IPC", "E-save %", "WS", "active %"
    );
    println!("{}", "-".repeat(68));
    for us in [100.0, 80.0, 60.0, 50.0, 40.0, 30.0] {
        let mut algo = default_algo(1);
        algo.interval_cycles = scale.interval_cycles();
        let make = |t: Technique| {
            let mut cfg = SystemConfig::paper_single_core(t);
            cfg.retention = RetentionSpec::from_micros(us, 2.0);
            cfg.sim_instructions = scale.instructions();
            cfg.warmup_cycles = scale.warmup_cycles();
            cfg
        };
        let base = Simulator::single(make(Technique::Baseline), &profile).run();
        let est = Simulator::single(make(Technique::Esteem(algo)), &profile).run();
        let save =
            esteem::energy::model::energy_saving_percent(base.energy.total(), est.energy.total());
        println!(
            "{:>7.0}us {:>12.0} {:>12.3} {:>10.2} {:>10.3} {:>9.1}",
            us,
            base.rpki(),
            base.per_core[0].ipc,
            save,
            est.per_core[0].ipc / base.per_core[0].ipc,
            est.active_ratio * 100.0
        );
    }
    println!("\nShorter retention -> more refreshes -> slower, hungrier baseline");
    println!("-> larger ESTEEM benefit (the paper's §7.3 observation).");
}
