//! Build a custom synthetic workload against the public API — a two-phase
//! application that alternates between a cache-resident phase and a
//! scan-heavy (non-LRU) phase — and watch ESTEEM's per-module decisions
//! track it over time (the mechanics behind the paper's Figure 2).
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use esteem::core::{AlgoParams, Simulator, SystemConfig, Technique};
use esteem::workloads::{BenchmarkProfile, PhaseSpec, Suite};

fn main() {
    let resident = PhaseSpec {
        duration_instrs: 6_000_000,
        mem_ratio: 0.33,
        write_ratio: 0.25,
        hot_blocks: 256,
        hot_weight: 0.93,
        ws_blocks: 4_000,
        locality_decay: 0.35,
        zones: 6,
        stream_frac: 0.01,
        stream_blocks: 1 << 20,
        scan_frac: 0.0,
        scan_blocks: 0,
    };
    let scanning = PhaseSpec {
        duration_instrs: 6_000_000,
        scan_frac: 0.30,
        scan_blocks: 36_864, // ~9 ways deep on a 4096-set L2
        ws_blocks: 24_000,
        locality_decay: 0.8,
        ..resident.clone()
    };
    let app = BenchmarkProfile {
        name: "custom-two-phase",
        acronym: "Cu",
        suite: Suite::Hpc,
        cpi_base: 0.5,
        mlp: 1.5,
        phases: vec![resident, scanning],
    };
    app.validate();

    let algo = AlgoParams {
        interval_cycles: 2_000_000,
        ..AlgoParams::paper_single_core()
    };
    let mut cfg = SystemConfig::paper_single_core(Technique::Esteem(algo));
    cfg.sim_instructions = 30_000_000;
    cfg.warmup_cycles = 5_000_000;

    let report = Simulator::single(cfg, &app).run();

    println!("custom two-phase workload under ESTEEM (interval = 2M cycles)\n");
    println!(
        "{:>14}  {:>8}  per-module active ways",
        "cycle (M)", "active%"
    );
    println!("{}", "-".repeat(60));
    for rec in &report.intervals {
        let ways: Vec<String> = rec.ways.iter().map(|w| w.to_string()).collect();
        println!(
            "{:>14.0}  {:>8.1}  [{}]",
            rec.cycle as f64 / 1e6,
            rec.active_fraction * 100.0,
            ways.join(" ")
        );
    }
    println!(
        "\nfinal: IPC {:.3}, active ratio {:.1}%, {} refreshes, {:.2}% of L2 storage\nspent on ESTEEM counters (eq. 1)",
        report.per_core[0].ipc,
        report.active_ratio * 100.0,
        report.refreshes,
        esteem::cache::CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 8)
            .esteem_counter_overhead_percent()
    );
    println!("\nExpected pattern: few active ways during the resident phase, most");
    println!("ways re-enabled during the scan phase (the non-LRU guard), and");
    println!("different modules settling at different way counts.");
}
