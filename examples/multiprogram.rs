//! Dual-core multiprogrammed scenario: two benchmarks share an 8 MB eDRAM
//! L2 (the paper's dual-core system), comparing baseline, RPV, and ESTEEM.
//!
//! ```text
//! cargo run --release --example multiprogram [mix-acronym]   # e.g. GkNe
//! ```

use esteem::core::{Simulator, SystemConfig, Technique};
use esteem::energy::metrics;
use esteem::harness::{default_algo, Scale};
use esteem::workloads::mixes::mix_by_acronym;

fn main() {
    let acr = std::env::args().nth(1).unwrap_or_else(|| "GkNe".into());
    let mix = mix_by_acronym(&acr).unwrap_or_else(|| {
        eprintln!("unknown mix '{acr}'; see Table 1 (e.g. GkNe, McLu, LqPo)");
        std::process::exit(1);
    });
    let profiles = [mix.a.clone(), mix.b.clone()];

    // Default scale: short runs leave the 8 MB cache half-empty, which
    // inflates RPV (it skips refreshing invalid lines); the paper-faithful
    // comparison needs warmed caches.
    let scale = Scale::Default;
    let mut algo = default_algo(2);
    algo.interval_cycles = scale.interval_cycles();
    let make = |t: Technique| {
        let mut cfg = SystemConfig::paper_dual_core(t);
        cfg.sim_instructions = scale.instructions();
        cfg.warmup_cycles = scale.warmup_cycles();
        cfg
    };

    println!(
        "mix {}: core0={}, core1={} (8MB shared eDRAM L2, 15GB/s memory)",
        mix.acronym, mix.a.name, mix.b.name
    );
    let base = Simulator::new(make(Technique::Baseline), &profiles, mix.acronym).run();
    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>9} {:>10} {:>8}",
        "technique", "IPC0", "IPC1", "WS", "FS", "E-save %", "active %"
    );
    println!("{}", "-".repeat(68));
    println!(
        "{:<10} {:>8.3} {:>8.3} {:>8} {:>9} {:>10} {:>8.1}",
        "baseline", base.per_core[0].ipc, base.per_core[1].ipc, "1.000", "1.000", "0.00", 100.0
    );
    for t in [Technique::Rpv, Technique::Esteem(algo)] {
        let r = Simulator::new(make(t), &profiles, mix.acronym).run();
        let ws = metrics::weighted_speedup(&r.ipcs(), &base.ipcs());
        let fs = metrics::fair_speedup(&r.ipcs(), &base.ipcs());
        let save =
            esteem::energy::model::energy_saving_percent(base.energy.total(), r.energy.total());
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>9.3} {:>10.2} {:>8.1}",
            r.technique,
            r.per_core[0].ipc,
            r.per_core[1].ipc,
            ws,
            fs,
            save,
            r.active_ratio * 100.0
        );
    }
    println!("\n(WS = weighted speedup, FS = fair speedup; paper §6.4)");
}
