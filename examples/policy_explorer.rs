//! Refresh-policy explorer: per-component power for every refresh policy
//! on one benchmark, including the policies the paper describes but does
//! not evaluate (RPD, periodic-valid).
//!
//! ```text
//! cargo run --release --example policy_explorer [benchmark]
//! ```

use esteem::harness::experiments::breakdown;
use esteem::harness::Scale;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bzip2".into());
    let rows = breakdown::run(Scale::Quick, &name);
    print!("{}", breakdown::render(&name, &rows));
    println!();
    println!("Notes:");
    println!("  * RPV skips refreshes of recently-touched and invalid lines.");
    println!("  * RPD additionally *invalidates* idle clean lines instead of");
    println!("    refreshing them — cheap on refresh, costly on re-fetches;");
    println!("    the paper excludes it for exactly that reason (§6.2).");
    println!("  * ESTEEM turns ways off per module, attacking leakage AND refresh.");
}
