//! Quickstart: run ESTEEM on one benchmark and compare it against the
//! baseline eDRAM cache (which refreshes every line each retention period).
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use esteem::core::{run_comparison, SystemConfig, Technique};
use esteem::harness::{default_algo, Scale};
use esteem::workloads::benchmark_by_name;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "h264ref".into());
    let profile = benchmark_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'; try e.g. gamess, mcf, lbm, h264ref");
        std::process::exit(1);
    });

    let scale = Scale::Quick;
    let mut algo = default_algo(1);
    algo.interval_cycles = scale.interval_cycles();
    let make = |t: Technique| {
        let mut cfg = SystemConfig::paper_single_core(t);
        cfg.sim_instructions = scale.instructions();
        cfg.warmup_cycles = scale.warmup_cycles();
        cfg
    };

    println!(
        "simulating {name} ({} instructions, 4MB eDRAM L2, 50us retention)...",
        scale.instructions()
    );
    let cmp = run_comparison(
        make,
        Technique::Esteem(algo),
        std::slice::from_ref(&profile),
        profile.name,
    );

    println!();
    println!("baseline IPC:        {:.3}", cmp.base.per_core[0].ipc);
    println!("ESTEEM IPC:          {:.3}", cmp.tech.per_core[0].ipc);
    println!("weighted speedup:    {:.3}x", cmp.weighted_speedup);
    println!("energy saving:       {:.2}%", cmp.energy_saving_pct);
    println!("active ratio:        {:.1}%", cmp.active_ratio * 100.0);
    println!("RPKI decrease:       {:.1}", cmp.rpki_decrease);
    println!("MPKI increase:       {:.3}", cmp.mpki_increase);
    println!();
    println!("baseline refreshes:  {}", cmp.base.refreshes);
    println!("ESTEEM refreshes:    {}", cmp.tech.refreshes);
    println!(
        "baseline energy:     {:.4} J  ({:.3} W)",
        cmp.base.energy.total(),
        cmp.base.energy.total() / cmp.base.inputs.seconds
    );
    println!(
        "ESTEEM energy:       {:.4} J  ({:.3} W)",
        cmp.tech.energy.total(),
        cmp.tech.energy.total() / cmp.tech.inputs.seconds
    );
}
