//! Memory-subsystem energy model and evaluation metrics for the ESTEEM
//! (HPDC'14) reproduction.
//!
//! Implements the paper's §6.3 energy model verbatim:
//!
//! ```text
//! E      = E_L2 + E_MM + E_Algo                       (2)
//! E_L2   = LE_L2 + DE_L2 + RE_L2                      (3)
//! LE_L2  = P_L2_leak * F_A * T                        (4)
//! DE_L2  = E_L2_dyn * (2 * M_L2 + H_L2)               (5)
//! RE_L2  = N_R * E_L2_dyn                             (6)
//! E_MM   = P_MM_leak * T + E_MM_dyn * A_MM            (7)
//! E_Algo = E_chi * N_L                                (8)
//! ```
//!
//! with the CACTI-derived eDRAM constants of Table 2 ([`params::TABLE2`]),
//! `E_MM_dyn` = 70 nJ, `P_MM_leak` = 0.18 W and `E_chi` = 2 pJ. A refresh
//! of a line costs one dynamic access energy (following Refrint), and an
//! L2 miss costs twice the dynamic energy of a hit.
//!
//! The evaluation metrics of §6.4 live in [`metrics`]: percentage energy
//! saving, weighted speedup (eq. 9), fair speedup, RPKI/MPKI deltas and
//! active ratio.

pub mod metrics;
pub mod model;
pub mod params;

pub use model::{EnergyBreakdown, EnergyInputs};
pub use params::EnergyParams;
