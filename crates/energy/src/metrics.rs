//! Evaluation metrics (paper §6.4).

/// Weighted speedup (eq. 9): mean over cores of `IPC_tech / IPC_base`.
///
/// Panics if the slices differ in length or any baseline IPC is zero.
pub fn weighted_speedup(ipc_tech: &[f64], ipc_base: &[f64]) -> f64 {
    assert_eq!(ipc_tech.len(), ipc_base.len());
    assert!(!ipc_tech.is_empty());
    let sum: f64 = ipc_tech
        .iter()
        .zip(ipc_base)
        .map(|(&t, &b)| {
            assert!(b > 0.0, "baseline IPC must be positive");
            t / b
        })
        .sum();
    sum / ipc_tech.len() as f64
}

/// Fair speedup: harmonic mean of per-core speedups,
/// `N / sum(IPC_base_n / IPC_tech_n)`. The paper computes it to show the
/// technique "does not cause unfairness" (§6.4).
pub fn fair_speedup(ipc_tech: &[f64], ipc_base: &[f64]) -> f64 {
    assert_eq!(ipc_tech.len(), ipc_base.len());
    assert!(!ipc_tech.is_empty());
    let denom: f64 = ipc_tech
        .iter()
        .zip(ipc_base)
        .map(|(&t, &b)| {
            assert!(t > 0.0, "technique IPC must be positive");
            b / t
        })
        .sum();
    ipc_tech.len() as f64 / denom
}

/// Events per kilo-instruction (used for RPKI and MPKI).
pub fn per_kilo_instruction(events: u64, instructions: u64) -> f64 {
    assert!(instructions > 0, "instructions must be positive");
    events as f64 * 1000.0 / instructions as f64
}

/// Geometric mean; the paper averages speedups geometrically.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean; the paper averages the remaining metrics (which "can
/// be zero or negative") arithmetically.
pub fn arithmetic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Energy-delay product (J*s). Lower is better; rewards techniques that
/// save energy *without* losing time. Not reported by the paper, but the
/// standard figure of merit for energy/performance trade-offs.
pub fn energy_delay_product(energy_j: f64, seconds: f64) -> f64 {
    assert!(energy_j >= 0.0 && seconds >= 0.0);
    energy_j * seconds
}

/// ED^2P (J*s^2): weighs performance more heavily than EDP.
pub fn energy_delay_squared(energy_j: f64, seconds: f64) -> f64 {
    energy_delay_product(energy_j, seconds) * seconds
}

/// Percentage improvement of a technique's EDP over the baseline's
/// (positive = better).
pub fn edp_improvement_percent(
    base_energy_j: f64,
    base_seconds: f64,
    tech_energy_j: f64,
    tech_seconds: f64,
) -> f64 {
    let base = energy_delay_product(base_energy_j, base_seconds);
    assert!(base > 0.0, "baseline EDP must be positive");
    (base - energy_delay_product(tech_energy_j, tech_seconds)) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_single_core_is_ratio() {
        assert!((weighted_speedup(&[1.2], &[1.0]) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn ws_averages_cores() {
        let ws = weighted_speedup(&[1.5, 0.5], &[1.0, 1.0]);
        assert!((ws - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fair_speedup_penalizes_imbalance() {
        // Same WS but unfair: FS must be lower than WS.
        let tech = [2.0, 0.5];
        let base = [1.0, 1.0];
        let ws = weighted_speedup(&tech, &base);
        let fs = fair_speedup(&tech, &base);
        assert!(fs < ws);
        // Perfectly balanced: FS == WS.
        let fs2 = fair_speedup(&[1.3, 1.3], &[1.0, 1.0]);
        assert!((fs2 - 1.3).abs() < 1e-12);
    }

    #[test]
    fn pki() {
        assert!((per_kilo_instruction(500, 1_000_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn means() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        // Geometric <= arithmetic (AM-GM).
        let xs = [0.5, 1.5, 2.5];
        assert!(geometric_mean(&xs) <= arithmetic_mean(&xs));
    }

    #[test]
    #[should_panic(expected = "baseline IPC")]
    fn ws_rejects_zero_baseline() {
        weighted_speedup(&[1.0], &[0.0]);
    }

    #[test]
    fn edp_family() {
        assert!((energy_delay_product(2.0, 3.0) - 6.0).abs() < 1e-12);
        assert!((energy_delay_squared(2.0, 3.0) - 18.0).abs() < 1e-12);
        // Saving energy at equal time improves EDP by the energy ratio.
        let imp = edp_improvement_percent(1.0, 1.0, 0.75, 1.0);
        assert!((imp - 25.0).abs() < 1e-12);
        // Saving energy but doubling runtime can lose EDP.
        let imp2 = edp_improvement_percent(1.0, 1.0, 0.75, 2.0);
        assert!(imp2 < 0.0);
    }
}
