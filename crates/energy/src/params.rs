//! Energy constants (paper §6.3, Table 2).

use serde::{Deserialize, Serialize};

/// Table 2 of the paper: CACTI 5.3 values at 32 nm for a 16-way eDRAM
/// cache — `(capacity MB, E_dyn nJ/access, P_leak W)`.
pub const TABLE2: [(u32, f64, f64); 5] = [
    (2, 0.186, 0.096),
    (4, 0.212, 0.116),
    (8, 0.282, 0.280),
    (16, 0.370, 0.456),
    (32, 0.467, 1.056),
];

/// Paper constants: main-memory dynamic energy per access (nJ).
pub const MM_DYN_NJ: f64 = 70.0;
/// Main-memory leakage power (W).
pub const MM_LEAK_W: f64 = 0.18;
/// Energy of one block power-state transition, `E_chi` (pJ).
pub const E_CHI_PJ: f64 = 2.0;

/// All constants needed to evaluate equations (2)–(8) for one system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// L2 dynamic energy per access, Joules.
    pub l2_dyn_j: f64,
    /// L2 leakage power at full activity, Watts.
    pub l2_leak_w: f64,
    /// Main-memory dynamic energy per access, Joules.
    pub mm_dyn_j: f64,
    /// Main-memory leakage power, Watts.
    pub mm_leak_w: f64,
    /// Energy per block on/off transition, Joules.
    pub e_chi_j: f64,
}

impl EnergyParams {
    /// Constants for an eDRAM L2 of the given capacity. Exact Table 2
    /// entries are used when available; other power-of-two sizes are
    /// filled by log2-linear interpolation/extrapolation, which matches
    /// the table's visible growth pattern.
    pub fn for_l2_capacity(capacity_bytes: u64) -> Self {
        let mb = capacity_bytes as f64 / (1 << 20) as f64;
        let (dyn_nj, leak_w) = table2_lookup(mb);
        Self {
            l2_dyn_j: dyn_nj * 1e-9,
            l2_leak_w: leak_w,
            mm_dyn_j: MM_DYN_NJ * 1e-9,
            mm_leak_w: MM_LEAK_W,
            e_chi_j: E_CHI_PJ * 1e-12,
        }
    }
}

/// `(E_dyn nJ, P_leak W)` for a capacity in MB (see
/// [`EnergyParams::for_l2_capacity`]).
pub fn table2_lookup(mb: f64) -> (f64, f64) {
    assert!(mb > 0.0, "capacity must be positive");
    // Exact hit?
    for &(sz, d, l) in &TABLE2 {
        if (mb - f64::from(sz)).abs() < 1e-9 {
            return (d, l);
        }
    }
    // Interpolate in log2(capacity); clamp-extrapolate at the ends using
    // the nearest segment's slope.
    let x = mb.log2();
    let pts: Vec<(f64, f64, f64)> = TABLE2
        .iter()
        .map(|&(sz, d, l)| (f64::from(sz).log2(), d, l))
        .collect();
    let seg = if x <= pts[0].0 {
        (pts[0], pts[1])
    } else if x >= pts[pts.len() - 1].0 {
        (pts[pts.len() - 2], pts[pts.len() - 1])
    } else {
        // Structurally panic-free: fall back to the last segment if no
        // point exceeds `x` (unreachable for finite `x`, but comparisons
        // involving pathological floats must clamp, not unwrap).
        let i = pts
            .iter()
            .position(|p| p.0 > x)
            .unwrap_or(pts.len() - 1)
            .max(1);
        (pts[i - 1], pts[i])
    };
    let t = (x - seg.0 .0) / (seg.1 .0 - seg.0 .0);
    let d = seg.0 .1 + t * (seg.1 .1 - seg.0 .1);
    let l = seg.0 .2 + t * (seg.1 .2 - seg.0 .2);
    (d.max(0.0), l.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_table_entries() {
        assert_eq!(table2_lookup(4.0), (0.212, 0.116));
        assert_eq!(table2_lookup(32.0), (0.467, 1.056));
    }

    #[test]
    fn interpolation_monotone() {
        let (d6, l6) = table2_lookup(6.0);
        assert!(d6 > 0.212 && d6 < 0.282);
        assert!(l6 > 0.116 && l6 < 0.280);
    }

    #[test]
    fn extrapolation_stays_positive() {
        let (d, l) = table2_lookup(1.0);
        assert!(d > 0.0 && l > 0.0);
        let (d64, l64) = table2_lookup(64.0);
        assert!(d64 > 0.467 && l64 > 1.056);
    }

    /// Regression: the segment search must clamp, never panic, across
    /// boundary and extreme capacities (it used to `unwrap()` a
    /// `position` that pathological floats can fail).
    #[test]
    fn lookup_is_total_over_extreme_and_boundary_capacities() {
        for mb in [
            f64::MIN_POSITIVE,
            1e-6,
            2.0 - 1e-12,
            2.0 + 1e-12,
            31.999_999,
            32.000_001,
            1e12,
            f64::MAX,
        ] {
            let (d, l) = table2_lookup(mb);
            assert!(d >= 0.0 && l >= 0.0, "mb={mb}: got ({d}, {l})");
        }
        // Values a hair past an exact entry stay continuous with it.
        let (d, l) = table2_lookup(8.0 + 1e-9);
        assert!((d - 0.282).abs() < 1e-6 && (l - 0.280).abs() < 1e-6);
    }

    #[test]
    fn params_builder() {
        let p = EnergyParams::for_l2_capacity(4 << 20);
        assert!((p.l2_dyn_j - 0.212e-9).abs() < 1e-15);
        assert!((p.l2_leak_w - 0.116).abs() < 1e-12);
        assert!((p.mm_dyn_j - 70e-9).abs() < 1e-15);
    }

    /// Sanity check from the paper's §1: refresh is ~70% of baseline L2
    /// (leakage + refresh) energy for a 4 MB cache at 50 us retention —
    /// the constants are self-consistent with that claim.
    #[test]
    fn refresh_dominates_baseline_l2_energy() {
        let p = EnergyParams::for_l2_capacity(4 << 20);
        let lines = (4u64 << 20) / 64;
        let refresh_power = lines as f64 * p.l2_dyn_j / 50e-6;
        let frac = refresh_power / (refresh_power + p.l2_leak_w);
        assert!(
            frac > 0.65 && frac < 0.75,
            "refresh fraction {frac} inconsistent with the paper's ~70%"
        );
    }
}
