//! Equations (2)–(8): energy accounting for one measurement span.

use serde::{Deserialize, Serialize};

use crate::params::EnergyParams;

/// Measured activity over a span of `seconds` (an interval or a whole
/// run). Field names follow the paper's notation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyInputs {
    /// `T` — wall-clock span in seconds.
    pub seconds: f64,
    /// `F_A` — time-weighted active fraction of the L2 over the span
    /// (1.0 for the baseline and RPV).
    pub active_fraction: f64,
    /// `H_L2` — L2 hits.
    pub l2_hits: u64,
    /// `M_L2` — L2 misses.
    pub l2_misses: u64,
    /// `N_R` — cache lines refreshed.
    pub refreshes: u64,
    /// `A_MM` — main-memory accesses (fills + write-backs).
    pub mem_accesses: u64,
    /// `N_L` — block power-state transitions (0 except for ESTEEM).
    pub block_transitions: u64,
}

impl EnergyInputs {
    pub fn add(&mut self, o: &EnergyInputs) {
        self.seconds += o.seconds;
        // `active_fraction` must be re-derived by the caller when merging;
        // keep a time-weighted running mean here.
        let t = self.seconds;
        if t > 0.0 {
            self.active_fraction =
                (self.active_fraction * (t - o.seconds) + o.active_fraction * o.seconds) / t;
        }
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.refreshes += o.refreshes;
        self.mem_accesses += o.mem_accesses;
        self.block_transitions += o.block_transitions;
    }
}

/// Energy of one span, split by source. All values in Joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `LE_L2` — L2 leakage.
    pub l2_leakage: f64,
    /// `DE_L2` — L2 dynamic.
    pub l2_dynamic: f64,
    /// `RE_L2` — L2 refresh.
    pub l2_refresh: f64,
    /// Main-memory leakage part of `E_MM`.
    pub mm_leakage: f64,
    /// Main-memory dynamic part of `E_MM`.
    pub mm_dynamic: f64,
    /// `E_Algo`.
    pub algo: f64,
}

impl EnergyBreakdown {
    /// Evaluates equations (2)–(8).
    pub fn compute(p: &EnergyParams, i: &EnergyInputs) -> Self {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&i.active_fraction));
        Self {
            l2_leakage: p.l2_leak_w * i.active_fraction * i.seconds,
            l2_dynamic: p.l2_dyn_j * (2 * i.l2_misses + i.l2_hits) as f64,
            l2_refresh: i.refreshes as f64 * p.l2_dyn_j,
            mm_leakage: p.mm_leak_w * i.seconds,
            mm_dynamic: p.mm_dyn_j * i.mem_accesses as f64,
            algo: p.e_chi_j * i.block_transitions as f64,
        }
    }

    /// `E_L2` (eq. 3).
    pub fn l2_total(&self) -> f64 {
        self.l2_leakage + self.l2_dynamic + self.l2_refresh
    }

    /// `E_MM` (eq. 7).
    pub fn mm_total(&self) -> f64 {
        self.mm_leakage + self.mm_dynamic
    }

    /// `E` (eq. 2) — total memory-subsystem energy.
    pub fn total(&self) -> f64 {
        self.l2_total() + self.mm_total() + self.algo
    }

    pub fn add(&mut self, o: &EnergyBreakdown) {
        self.l2_leakage += o.l2_leakage;
        self.l2_dynamic += o.l2_dynamic;
        self.l2_refresh += o.l2_refresh;
        self.mm_leakage += o.mm_leakage;
        self.mm_dynamic += o.mm_dynamic;
        self.algo += o.algo;
    }
}

/// Percentage energy saved by `technique` relative to `baseline`
/// (positive = saving).
pub fn energy_saving_percent(baseline: f64, technique: f64) -> f64 {
    assert!(baseline > 0.0, "baseline energy must be positive");
    (baseline - technique) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnergyParams;

    fn params() -> EnergyParams {
        EnergyParams::for_l2_capacity(4 << 20)
    }

    #[test]
    fn equations_match_hand_computation() {
        let p = params();
        let i = EnergyInputs {
            seconds: 0.01,
            active_fraction: 0.5,
            l2_hits: 1000,
            l2_misses: 200,
            refreshes: 5000,
            mem_accesses: 300,
            block_transitions: 40,
        };
        let b = EnergyBreakdown::compute(&p, &i);
        assert!((b.l2_leakage - 0.116 * 0.5 * 0.01).abs() < 1e-12);
        assert!((b.l2_dynamic - 0.212e-9 * 1400.0).abs() < 1e-15);
        assert!((b.l2_refresh - 0.212e-9 * 5000.0).abs() < 1e-15);
        assert!((b.mm_leakage - 0.18 * 0.01).abs() < 1e-12);
        assert!((b.mm_dynamic - 70e-9 * 300.0).abs() < 1e-15);
        assert!((b.algo - 2e-12 * 40.0).abs() < 1e-18);
        let sum = b.l2_leakage + b.l2_dynamic + b.l2_refresh + b.mm_leakage + b.mm_dynamic + b.algo;
        assert!((b.total() - sum).abs() < 1e-15);
    }

    #[test]
    fn zero_inputs_zero_energy() {
        let b = EnergyBreakdown::compute(&params(), &EnergyInputs::default());
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn saving_percent() {
        assert!((energy_saving_percent(2.0, 1.5) - 25.0).abs() < 1e-12);
        assert!(energy_saving_percent(1.0, 1.2) < 0.0);
    }

    #[test]
    fn inputs_merge_time_weighted() {
        let mut a = EnergyInputs {
            seconds: 1.0,
            active_fraction: 1.0,
            ..Default::default()
        };
        let b = EnergyInputs {
            seconds: 3.0,
            active_fraction: 0.2,
            l2_hits: 5,
            ..Default::default()
        };
        a.add(&b);
        assert!((a.seconds - 4.0).abs() < 1e-12);
        assert!((a.active_fraction - 0.4).abs() < 1e-12);
        assert_eq!(a.l2_hits, 5);
    }

    #[test]
    fn breakdown_add() {
        let p = params();
        let i = EnergyInputs {
            seconds: 0.5,
            active_fraction: 1.0,
            l2_hits: 10,
            l2_misses: 1,
            refreshes: 7,
            mem_accesses: 2,
            block_transitions: 0,
        };
        let one = EnergyBreakdown::compute(&p, &i);
        let mut two = one;
        two.add(&one);
        assert!((two.total() - 2.0 * one.total()).abs() < 1e-12);
    }
}
