//! Deterministic, seeded generation of random configurations and
//! operation streams for the lockstep checker.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::oracle::{CaseConfig, CheckPolicy};

/// One operation of a lockstep run. Cycle time is carried as *deltas* so
/// the minimizer can drop ops without invalidating later timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Advance the clock by `dcycles`, then perform one demand access.
    Access {
        block: u64,
        write: bool,
        dcycles: u64,
    },
    /// Reconfigure one module to `ways` active ways.
    Reconfig { module: u16, ways: u8 },
    /// Advance the clock by `dcycles` and drain due refreshes up to the
    /// new time (the simulator's quantum boundary), then compare the full
    /// state of both models.
    Advance { dcycles: u64 },
}

/// A complete self-contained checker case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Case {
    pub config: CaseConfig,
    pub ops: Vec<Op>,
}

/// RNG for case `index` of a run seeded with `seed`: every case is
/// independently reproducible from `(seed, index)`.
pub fn case_rng(seed: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generates one random case. Geometry honours the `CacheGeometry`
/// invariants (power-of-two sets, modules and banks dividing sets);
/// everything else — associativity (including non-power-of-two and
/// wide-LRU counts), leader strides (power-of-two and not, larger than
/// the set count, or absent), phase counts, retention periods — is drawn
/// broadly to reach representation corners.
pub fn gen_case(rng: &mut SmallRng) -> Case {
    let sets: u32 = 1 << rng.gen_range(3u32..=7);
    let ways: u8 = *pick(rng, &[1, 2, 3, 4, 4, 5, 7, 8, 8, 12, 16, 17, 20]);
    let modules: u16 = std::cmp::min(1 << rng.gen_range(0u16..=3), sets as u16);
    let banks: u8 = *pick(rng, &[1, 2, 4]);
    let leader_stride = if rng.gen_bool(0.25) {
        None
    } else {
        Some(*pick(rng, &[1u32, 2, 3, 4, 5, 7, 8, 16, 64, 257]))
    };
    let policy = *pick(
        rng,
        &[
            CheckPolicy::PeriodicAll,
            CheckPolicy::PeriodicValid,
            CheckPolicy::PolyphaseValid,
            CheckPolicy::PolyphaseValid,
            CheckPolicy::PolyphaseDirty,
            CheckPolicy::PolyphaseDirty,
        ],
    );
    let phases: u8 = if policy.is_polyphase() {
        rng.gen_range(1u8..=6)
    } else {
        1
    };
    let phase_len: u64 = rng.gen_range(10u64..=1000);
    let retention = phase_len * u64::from(phases);
    let config = CaseConfig {
        sets,
        ways,
        banks,
        modules,
        leader_stride,
        policy,
        retention,
        phases,
    };

    let n_ops = rng.gen_range(1usize..=160);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let roll = rng.gen_range(0u32..100);
        if roll < 70 {
            // Small tag space so sets refill, collide, and evict.
            let set = rng.gen_range(0u32..sets);
            let tag = rng.gen_range(0u64..=u64::from(ways) * 2 + 2);
            ops.push(Op::Access {
                block: tag * u64::from(sets) + u64::from(set),
                write: rng.gen_bool(0.3),
                dcycles: gen_dcycles(rng, phase_len, retention),
            });
        } else if roll < 85 {
            ops.push(Op::Advance {
                dcycles: gen_dcycles(rng, phase_len, retention),
            });
        } else {
            ops.push(Op::Reconfig {
                module: rng.gen_range(0u16..modules),
                ways: rng.gen_range(1u8..=ways),
            });
        }
    }
    Case { config, ops }
}

/// Clock-advance distribution: mostly sub-phase steps, sometimes a few
/// periods, occasionally a jump of many retention periods — the latter is
/// what exercises calendar-ring wraparound in the polyphase scheduler.
fn gen_dcycles(rng: &mut SmallRng, phase_len: u64, retention: u64) -> u64 {
    let roll = rng.gen_range(0u32..100);
    if roll < 75 {
        rng.gen_range(0u64..=phase_len)
    } else if roll < 95 {
        rng.gen_range(0u64..=retention * 2)
    } else {
        rng.gen_range(retention * 4..=retention * 24)
    }
}

/// Fuzzed input for the Algorithm 1 differential check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Algo1Case {
    pub hits: Vec<u64>,
    pub alpha: f64,
    pub a_min: u8,
    pub non_lru_guard: bool,
}

/// Generates one Algorithm 1 input: a per-LRU-position hit histogram with
/// a mix of monotone, noisy, and adversarially anti-recency shapes, plus
/// an `A_min` drawn over the full `1..=A` range (including `A_min == A`,
/// where the floor must still dominate the non-LRU clamp).
pub fn gen_algo1_case(rng: &mut SmallRng) -> Algo1Case {
    let a = rng.gen_range(1usize..=20);
    let shape = rng.gen_range(0u32..3);
    let hits: Vec<u64> = (0..a)
        .map(|i| match shape {
            // Decaying (LRU-friendly) with noise.
            0 => rng.gen_range(0u64..=2000) >> i.min(20),
            // Flat noise.
            1 => rng.gen_range(0u64..=300),
            // Anti-recency ramp (non-LRU): deep positions get the hits.
            _ => rng.gen_range(0u64..=50) + (i as u64) * rng.gen_range(0u64..=200),
        })
        .collect();
    Algo1Case {
        hits,
        alpha: *pick(rng, &[0.5, 0.8, 0.9, 0.95, 0.97, 0.99]),
        a_min: rng.gen_range(1u8..=a as u8),
        non_lru_guard: rng.gen_bool(0.8),
    }
}

fn pick<'a, T>(rng: &mut SmallRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0usize..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_case(&mut case_rng(7, 3));
        let b = gen_case(&mut case_rng(7, 3));
        assert_eq!(a, b);
        let c = gen_case(&mut case_rng(7, 4));
        assert_ne!(a, c, "different case index must vary the stream");
    }

    #[test]
    fn generated_configs_are_valid() {
        for i in 0..200 {
            let case = gen_case(&mut case_rng(0, i));
            let c = &case.config;
            assert!(c.sets.is_power_of_two());
            assert!(c.sets.is_multiple_of(u32::from(c.modules)));
            assert!(c.sets.is_multiple_of(u32::from(c.banks)));
            assert!((1..=64).contains(&c.ways));
            assert!(c.retention.is_multiple_of(u64::from(c.phases)));
            for op in &case.ops {
                if let Op::Reconfig { module, ways } = op {
                    assert!(*module < c.modules);
                    assert!((1..=c.ways).contains(ways));
                }
            }
        }
    }
}
