//! Reproducer files: a minimized divergent case serialized to JSON so it
//! can be committed as a regression, attached to CI artifacts, and
//! replayed with `esteem-check --replay FILE`.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::fuzz::{Case, Op};
use crate::oracle::CaseConfig;
use crate::Divergence;

/// One self-contained reproducer: where it came from, the minimized
/// config + op list, and the divergence it produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repro {
    /// Fuzzer seed of the run that found the case.
    pub seed: u64,
    /// Case index within the run (the case is regenerable from
    /// `(seed, case_index)` before minimization).
    pub case_index: u64,
    pub config: CaseConfig,
    pub ops: Vec<Op>,
    pub divergence: Divergence,
}

impl Repro {
    pub fn case(&self) -> Case {
        Case {
            config: self.config.clone(),
            ops: self.ops.clone(),
        }
    }
}

/// Writes a reproducer into `dir` (created if needed) as
/// `div-<seed>-<case_index>.json`; returns the path.
pub fn save(dir: &Path, repro: &Repro) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("div-{}-{}.json", repro.seed, repro.case_index));
    let json = serde_json::to_string_pretty(repro)
        .map_err(|e| std::io::Error::other(format!("serialize repro: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Loads a reproducer written by [`save`].
pub fn load(path: &Path) -> Result<Repro, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CheckPolicy;

    #[test]
    fn round_trip() {
        let r = Repro {
            seed: 42,
            case_index: 7,
            config: CaseConfig {
                sets: 16,
                ways: 3,
                banks: 2,
                modules: 2,
                leader_stride: None,
                policy: CheckPolicy::PolyphaseDirty,
                retention: 120,
                phases: 4,
            },
            ops: vec![
                Op::Access {
                    block: 17,
                    write: true,
                    dcycles: 9,
                },
                Op::Reconfig { module: 1, ways: 2 },
                Op::Advance { dcycles: 500 },
            ],
            divergence: Divergence {
                op_index: 2,
                field: "refresh.total".into(),
                expected: "3".into(),
                got: "2".into(),
            },
        };
        let dir = std::env::temp_dir().join(format!("esteem-check-repro-{}", std::process::id()));
        let path = save(&dir, &r).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(&dir).ok();
    }
}
