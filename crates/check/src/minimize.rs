//! Shrinks a divergent case to a short reproducer.
//!
//! Classic ddmin over the op list (chunk removal at halving granularity),
//! followed by per-op simplification (zeroing clock deltas, turning writes
//! into reads) and config shrinking (halving sets/modules, dropping banks
//! to one, removing leader sampling, reducing associativity). A candidate
//! is accepted iff it still diverges — on *any* observable, not
//! necessarily the original one: a shifted first-divergence is still the
//! same underlying bug viewed earlier, and accepting it shrinks harder.

use crate::fuzz::{Case, Op};
use crate::lockstep::run_case;
use crate::oracle::CaseConfig;
use crate::Divergence;

/// Minimizes `case` (which must diverge). Returns the reduced case and
/// the divergence it produces.
pub fn minimize(case: &Case) -> (Case, Divergence) {
    let mut best = case.clone();
    let mut div = run_case(&best).expect("minimize() requires a divergent case");

    loop {
        let before = (best.ops.len(), size_of_config(&best.config));

        ddmin_ops(&mut best, &mut div);
        simplify_ops(&mut best, &mut div);
        shrink_config(&mut best, &mut div);

        if (best.ops.len(), size_of_config(&best.config)) == before {
            break;
        }
    }
    (best, div)
}

fn size_of_config(c: &CaseConfig) -> u64 {
    u64::from(c.sets) * u64::from(c.ways)
        + u64::from(c.modules)
        + u64::from(c.banks)
        + c.leader_stride.map_or(0, |_| 1)
}

/// Chunk-removal pass: try dropping runs of ops, halving the chunk size
/// down to single ops.
fn ddmin_ops(best: &mut Case, div: &mut Divergence) {
    let mut chunk = best.ops.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < best.ops.len() {
            let mut cand = best.clone();
            let hi = (i + chunk).min(cand.ops.len());
            cand.ops.drain(i..hi);
            if let Some(d) = run_case(&cand) {
                *best = cand;
                *div = d;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
}

/// Per-op simplification: zero the clock deltas, turn writes into reads.
fn simplify_ops(best: &mut Case, div: &mut Divergence) {
    for i in 0..best.ops.len() {
        let simpler: Vec<Op> = match best.ops[i] {
            Op::Access {
                block,
                write,
                dcycles,
            } => {
                let mut v = Vec::new();
                if dcycles != 0 {
                    v.push(Op::Access {
                        block,
                        write,
                        dcycles: 0,
                    });
                }
                if write {
                    v.push(Op::Access {
                        block,
                        write: false,
                        dcycles,
                    });
                }
                v
            }
            Op::Advance { dcycles } if dcycles != 0 => vec![Op::Advance { dcycles: 0 }],
            _ => Vec::new(),
        };
        for s in simpler {
            let mut cand = best.clone();
            cand.ops[i] = s;
            if let Some(d) = run_case(&cand) {
                *best = cand;
                *div = d;
            }
        }
    }
}

/// Config-shrinking pass. Each candidate keeps the `CacheGeometry`
/// invariants valid and clamps ops that reference shrunk dimensions.
fn shrink_config(best: &mut Case, div: &mut Divergence) {
    let mut candidates: Vec<CaseConfig> = Vec::new();
    let c = best.config.clone();
    if c.sets > 8 && c.sets / 2 >= u32::from(c.modules) && c.sets / 2 >= u32::from(c.banks) {
        candidates.push(CaseConfig {
            sets: c.sets / 2,
            ..c.clone()
        });
    }
    if c.modules > 1 {
        candidates.push(CaseConfig {
            modules: c.modules / 2,
            ..c.clone()
        });
    }
    if c.banks > 1 {
        candidates.push(CaseConfig {
            banks: 1,
            ..c.clone()
        });
    }
    if c.leader_stride.is_some() {
        candidates.push(CaseConfig {
            leader_stride: None,
            ..c.clone()
        });
    }
    if c.ways > 1 {
        candidates.push(CaseConfig {
            ways: c.ways / 2,
            ..c.clone()
        });
    }

    for cfg in candidates {
        let mut cand = Case {
            ops: best.ops.clone(),
            config: cfg,
        };
        clamp_ops(&mut cand);
        if let Some(d) = run_case(&cand) {
            *best = cand;
            *div = d;
        }
    }
}

/// Clamps op fields that a config shrink may have invalidated.
fn clamp_ops(case: &mut Case) {
    let c = &case.config;
    for op in &mut case.ops {
        if let Op::Reconfig { module, ways } = op {
            *module %= c.modules;
            *ways = (*ways).clamp(1, c.ways);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CheckPolicy;

    /// Minimizing a panic-divergent case drops every irrelevant op and
    /// still reproduces the divergence.
    #[test]
    fn minimize_strips_irrelevant_ops() {
        let mut ops = vec![
            Op::Access {
                block: 1,
                write: false,
                dcycles: 5,
            };
            20
        ];
        // The one op that matters: an out-of-range reconfiguration.
        ops.push(Op::Reconfig { module: 0, ways: 9 });
        let case = Case {
            config: CaseConfig {
                sets: 64,
                ways: 4,
                banks: 2,
                modules: 4,
                leader_stride: Some(8),
                policy: CheckPolicy::PeriodicValid,
                retention: 100,
                phases: 1,
            },
            ops,
        };
        let (min, d) = minimize(&case);
        assert!(
            run_case(&min).is_some(),
            "minimized case must still diverge"
        );
        assert!(
            min.ops.len() <= 1,
            "expected the 20 filler accesses to be dropped, kept {:?}",
            min.ops
        );
        // Note: `d` need not be the seeded panic — the minimizer accepts
        // any divergence, so it may land on a different underlying bug.
        assert!(!d.field.is_empty());
    }
}
