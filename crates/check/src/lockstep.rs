//! Runs a fuzzed case through the optimized stack and the oracle in
//! lockstep, comparing every observable.
//!
//! The harness drives `SetAssocCache` + `RefreshEngine` exactly the way
//! `esteem_core::System` does: demand accesses are reported to the refresh
//! engine via `on_access`, reconfigurations go through
//! `set_module_active_ways` (turned-off lines are *not* unscheduled — the
//! lazy scheduler drops them at drain time, matching the simulator), and
//! the engine is advanced to the current cycle at every `Advance` op. After
//! each advance the *entire* observable state is compared: line states,
//! every lifetime counter, the ATD histograms, the drained per-bank refresh
//! windows, and the eq. 2–8 energy identities evaluated over both sides'
//! counters. A panic out of the optimized stack (e.g. a promoted
//! `strict-invariants` assert) is caught and reported as a divergence at
//! the op that raised it, so it minimizes like any mismatch.
//!
//! Besides the scalar path, every op stream is also replayed through the
//! struct-of-arrays batch kernel — once serially via
//! [`SetAssocCache::access_batch`] and once over three worker threads via
//! [`SetAssocCache::access_batch_threaded`] — on independent cache+engine
//! replicas (`BatchReplica`). Accesses accumulate between comparison
//! points and flush as one block (the way the simulator's front end feeds
//! the kernel), per-access outcomes are compared element-wise against the
//! scalar path's, and at every advance the replicas' counters, occupancy
//! and refresh windows must match too. A batch-kernel bug therefore
//! minimizes to a repro exactly like an oracle mismatch.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use esteem_cache::batch::{Access, BatchOutcome};
use esteem_cache::{AccessOutcome, CacheGeometry, SetAssocCache};
use esteem_edram::{RefreshEngine, RefreshPolicy, RetentionSpec};
use esteem_energy::{EnergyBreakdown, EnergyInputs, EnergyParams};

use crate::fuzz::{Case, Op};
use crate::oracle::{CheckPolicy, OracleModel};
use crate::Divergence;

thread_local! {
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Replaces the process panic hook with one that records the message
/// (with location) for [`run_case`] instead of printing a backtrace. Call
/// once before a fuzzing loop; without it every strict-invariant panic
/// spams stderr while being converted into a [`Divergence`] anyway.
pub fn install_quiet_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        let msg = info.to_string();
        LAST_PANIC.with(|c| *c.borrow_mut() = Some(msg));
    }));
}

/// Translates the fuzzer's policy tag into the optimized stack's enum.
pub fn to_refresh_policy(policy: CheckPolicy, phases: u8) -> RefreshPolicy {
    match policy {
        CheckPolicy::PeriodicAll => RefreshPolicy::PeriodicAll,
        CheckPolicy::PeriodicValid => RefreshPolicy::PeriodicValid,
        CheckPolicy::PolyphaseValid => RefreshPolicy::PolyphaseValid { phases },
        CheckPolicy::PolyphaseDirty => RefreshPolicy::PolyphaseDirty { phases },
    }
}

/// Runs one case to completion; `Some` carries the first divergence (or
/// caught panic), `None` means the optimized stack and the oracle agreed
/// on every compared observable.
pub fn run_case(case: &Case) -> Option<Divergence> {
    LAST_PANIC.with(|c| *c.borrow_mut() = None);
    let op_index = RefCell::new(0usize);
    let result = catch_unwind(AssertUnwindSafe(|| run_case_inner(case, &op_index)));
    match result {
        Ok(d) => d,
        Err(payload) => {
            let msg = LAST_PANIC
                .with(|c| c.borrow_mut().take())
                .or_else(|| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                })
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            Some(Divergence {
                op_index: *op_index.borrow(),
                field: "panic".into(),
                expected: "no panic".into(),
                got: msg,
            })
        }
    }
}

macro_rules! diff {
    ($at:expr, $field:expr, $oracle:expr, $optimized:expr) => {{
        let (o, g) = (&$oracle, &$optimized);
        if o != g {
            return Some(Divergence {
                op_index: $at,
                field: $field.to_string(),
                expected: format!("{o:?}"),
                got: format!("{g:?}"),
            });
        }
    }};
}

struct Harness {
    cache: SetAssocCache,
    engine: RefreshEngine,
    oracle: OracleModel,
    params: EnergyParams,
    now: u64,
    /// Accumulated `N_L` (reconfiguration slot transitions) per side.
    opt_transitions: u64,
    ora_transitions: u64,
    /// Accumulated reconfiguration write-backs per side (part of `A_MM`).
    opt_reconf_wb: u64,
    ora_reconf_wb: u64,
    /// Scalar-path outcomes (already oracle-checked) since the last batch
    /// flush, with the op index each came from — the reference the batch
    /// replicas are compared against, element-wise and in input order.
    pending_expected: Vec<AccessOutcome>,
    pending_at: Vec<usize>,
    /// The batch-kernel replicas: serial, and three worker threads.
    replicas: [BatchReplica; 2],
    /// Scalar engine's drained per-bank window from the latest advance,
    /// stashed by `compare_full` for the replica comparison.
    last_banks: Vec<u64>,
}

/// An independent cache + refresh-engine pair fed exclusively through the
/// batch kernel. Accesses buffer in `pending` and flush as one block at
/// every comparison point, mirroring how the simulator's front end hands
/// whole refill blocks to [`SetAssocCache::access_batch`].
struct BatchReplica {
    /// Divergence field prefix (`batch` / `batch3`).
    tag: &'static str,
    threads: usize,
    cache: SetAssocCache,
    engine: RefreshEngine,
    pending: Vec<Access>,
    out: BatchOutcome,
    feed: Vec<(AccessOutcome, u64)>,
    /// Lifetime stats accumulated from the per-flush `BatchOutcome`
    /// deltas (the kernel defers stats rather than writing
    /// `cache.stats`), compared against the scalar side's lifetime
    /// counters at every advance.
    hits: u64,
    misses: u64,
    writes: u64,
    writebacks: u64,
    pos_hits: Vec<u64>,
}

impl BatchReplica {
    fn new(
        tag: &'static str,
        threads: usize,
        geom: CacheGeometry,
        leader_stride: Option<u32>,
        policy: RefreshPolicy,
        retention: u64,
    ) -> Self {
        let mut cache = SetAssocCache::new(geom, leader_stride);
        cache.set_retention_tracking(policy.is_polyphase());
        let engine = RefreshEngine::new(
            policy,
            RetentionSpec {
                period_cycles: retention,
            },
            &cache,
        );
        Self {
            tag,
            threads,
            cache,
            engine,
            pending: Vec::new(),
            out: BatchOutcome::new(),
            feed: Vec::new(),
            hits: 0,
            misses: 0,
            writes: 0,
            writebacks: 0,
            pos_hits: vec![0; geom.ways as usize],
        }
    }

    /// Runs the buffered accesses through the batch kernel and compares
    /// each outcome against the scalar path's, then forwards the block to
    /// the refresh engine exactly like the simulator's feed drain.
    fn flush(&mut self, expected: &[AccessOutcome], ats: &[usize]) -> Option<Divergence> {
        debug_assert_eq!(self.pending.len(), expected.len());
        if self.pending.is_empty() {
            return None;
        }
        self.out.clear();
        self.cache
            .access_batch_threaded(&self.pending, self.threads, &mut self.out);
        self.feed.clear();
        for (i, (acc, got)) in self
            .pending
            .iter()
            .zip(self.out.outcomes.iter())
            .enumerate()
        {
            diff!(ats[i], format!("{}.outcome", self.tag), expected[i], *got);
            self.feed.push((*got, acc.now));
        }
        self.engine.on_access_batch(&self.feed);
        self.hits += self.out.hits;
        self.misses += self.out.misses;
        self.writes += self.out.writes;
        self.writebacks += self.out.writebacks;
        for (dst, &d) in self.pos_hits.iter_mut().zip(self.out.pos_hits.iter()) {
            *dst += d;
        }
        self.pending.clear();
        None
    }

    /// Applies a reconfiguration and checks it matched the scalar side's.
    fn reconfig(
        &mut self,
        at: usize,
        module: u16,
        ways: u8,
        now: u64,
        expected: esteem_cache::ReconfigOutcome,
    ) -> Option<Divergence> {
        let got = self.cache.set_module_active_ways(module, ways, now);
        diff!(at, format!("{}.reconfig", self.tag), expected, got);
        None
    }

    /// Advances refresh and compares every replica observable against the
    /// scalar side: refresh work done, lifetime counters, occupancy, and
    /// the drained per-bank windows.
    fn advance(
        &mut self,
        at: usize,
        now: u64,
        scalar: &SetAssocCache,
        scalar_engine_banks: &[u64],
        expected_refreshes: u64,
        expected_invalidations: u64,
    ) -> Option<Divergence> {
        let rep = self.engine.advance(&mut self.cache, now);
        diff!(
            at,
            format!("{}.advance.refreshes", self.tag),
            expected_refreshes,
            rep.refreshes
        );
        diff!(
            at,
            format!("{}.advance.invalidations", self.tag),
            expected_invalidations,
            rep.invalidations
        );
        diff!(
            at,
            format!("{}.hits", self.tag),
            scalar.stats.hits,
            self.hits
        );
        diff!(
            at,
            format!("{}.misses", self.tag),
            scalar.stats.misses,
            self.misses
        );
        diff!(
            at,
            format!("{}.writes", self.tag),
            scalar.stats.writes,
            self.writes
        );
        diff!(
            at,
            format!("{}.writebacks", self.tag),
            scalar.stats.writebacks,
            self.writebacks
        );
        diff!(
            at,
            format!("{}.pos_hits", self.tag),
            scalar.stats.pos_hits,
            self.pos_hits
        );
        diff!(
            at,
            format!("{}.valid_lines", self.tag),
            scalar.valid_lines(),
            self.cache.valid_lines()
        );
        diff!(
            at,
            format!("{}.valid_per_bank", self.tag),
            scalar.valid_lines_per_bank(),
            self.cache.valid_lines_per_bank()
        );
        diff!(
            at,
            format!("{}.module_ways", self.tag),
            scalar.module_ways(),
            self.cache.module_ways()
        );
        let banks = self.engine.drain_bank_refreshes();
        diff!(
            at,
            format!("{}.bank_window", self.tag),
            scalar_engine_banks,
            banks
        );
        None
    }

    /// Final whole-state sweep against the scalar cache (run once, after
    /// the closing flush): any silent state skew the outcome comparison
    /// missed surfaces here at the latest.
    fn compare_lines(&self, at: usize, scalar: &SetAssocCache, track: bool) -> Option<Divergence> {
        let g = scalar.geometry();
        for set in 0..g.sets {
            for way in 0..g.ways {
                let want = scalar.line(set, way);
                let got = self.cache.line(set, way);
                diff!(
                    at,
                    format!("{}.line[{set}][{way}].valid", self.tag),
                    want.valid,
                    got.valid
                );
                if want.valid {
                    diff!(
                        at,
                        format!("{}.line[{set}][{way}].dirty", self.tag),
                        want.dirty,
                        got.dirty
                    );
                    diff!(
                        at,
                        format!("{}.line[{set}][{way}].tag", self.tag),
                        want.tag,
                        got.tag
                    );
                    if track {
                        diff!(
                            at,
                            format!("{}.line[{set}][{way}].last_update", self.tag),
                            want.last_update,
                            got.last_update
                        );
                    }
                }
            }
        }
        self.cache.assert_invariants();
        None
    }
}

fn run_case_inner(case: &Case, op_index: &RefCell<usize>) -> Option<Divergence> {
    let cfg = &case.config;
    let geom = CacheGeometry {
        sets: cfg.sets,
        ways: cfg.ways,
        line_bytes: 64,
        banks: cfg.banks,
        modules: cfg.modules,
        tag_bits: 40,
    };
    geom.validate();
    let mut cache = SetAssocCache::new(geom, cfg.leader_stride);
    let policy = to_refresh_policy(cfg.policy, cfg.phases);
    // Mirror the simulator: per-access retention clocks are maintained
    // only for policies that read them.
    cache.set_retention_tracking(policy.is_polyphase());
    let engine = RefreshEngine::new(
        policy,
        RetentionSpec {
            period_cycles: cfg.retention,
        },
        &cache,
    );
    let mut h = Harness {
        params: EnergyParams::for_l2_capacity(geom.capacity_bytes()),
        cache,
        engine,
        oracle: OracleModel::new(cfg),
        now: 0,
        opt_transitions: 0,
        ora_transitions: 0,
        opt_reconf_wb: 0,
        ora_reconf_wb: 0,
        pending_expected: Vec::new(),
        pending_at: Vec::new(),
        replicas: [
            BatchReplica::new("batch", 1, geom, cfg.leader_stride, policy, cfg.retention),
            BatchReplica::new("batch3", 3, geom, cfg.leader_stride, policy, cfg.retention),
        ],
        last_banks: Vec::new(),
    };

    for (at, op) in case.ops.iter().enumerate() {
        *op_index.borrow_mut() = at;
        match *op {
            Op::Access {
                block,
                write,
                dcycles,
            } => {
                h.now += dcycles;
                let opt = h.cache.access(block, write, h.now);
                h.engine.on_access(&opt, h.now);
                let ora = h.oracle.access(block, write, h.now);
                diff!(at, "access.hit", ora.hit, opt.hit);
                diff!(at, "access.set", ora.set, opt.set);
                diff!(at, "access.bank", ora.bank, opt.bank);
                diff!(at, "access.module", ora.module, opt.module);
                diff!(at, "access.leader", ora.leader, opt.leader);
                diff!(at, "access.way", ora.way, opt.way);
                if ora.hit {
                    diff!(at, "access.hit_pos", ora.hit_pos, opt.hit_pos);
                } else {
                    diff!(
                        at,
                        "access.evicted_valid",
                        ora.evicted_valid,
                        opt.evicted_valid
                    );
                    diff!(at, "access.writeback", ora.writeback, opt.writeback);
                }
                // Queue for the batch replicas; they flush as one block at
                // the next reconfig/advance, like the simulator's refill.
                for r in &mut h.replicas {
                    r.pending.push(Access {
                        block,
                        write,
                        now: h.now,
                    });
                }
                h.pending_expected.push(opt);
                h.pending_at.push(at);
            }
            Op::Reconfig { module, ways } => {
                if let Some(d) = flush_replicas(&mut h) {
                    return Some(d);
                }
                let opt = h.cache.set_module_active_ways(module, ways, h.now);
                let ora = h.oracle.reconfig(module, ways, h.now);
                h.opt_transitions += opt.slot_transitions;
                h.ora_transitions += ora.slot_transitions;
                h.opt_reconf_wb += opt.writebacks;
                h.ora_reconf_wb += ora.writebacks;
                diff!(at, "reconfig.writebacks", ora.writebacks, opt.writebacks);
                diff!(at, "reconfig.discards", ora.discards, opt.discards);
                diff!(
                    at,
                    "reconfig.slot_transitions",
                    ora.slot_transitions,
                    opt.slot_transitions
                );
                diff!(
                    at,
                    "module_ways",
                    h.oracle.module_ways(),
                    h.cache.module_ways()
                );
                for r in &mut h.replicas {
                    if let Some(d) = r.reconfig(at, module, ways, h.now, opt) {
                        return Some(d);
                    }
                }
            }
            Op::Advance { dcycles } => {
                h.now += dcycles;
                if let Some(d) = advance_and_compare(&mut h, at) {
                    return Some(d);
                }
            }
        }
    }

    // Final flush: push every pending refresh through, then do one last
    // full-state comparison — including the whole-cache sweep of each
    // batch replica against the scalar cache.
    let at = case.ops.len();
    *op_index.borrow_mut() = at;
    h.now += 3 * cfg.retention;
    if let Some(d) = advance_and_compare(&mut h, at) {
        return Some(d);
    }
    let track = cfg.policy.is_polyphase();
    for r in &h.replicas {
        if let Some(d) = r.compare_lines(at, &h.cache, track) {
            return Some(d);
        }
    }
    None
}

/// Flushes both batch replicas against the scalar outcomes accumulated
/// since the previous flush.
fn flush_replicas(h: &mut Harness) -> Option<Divergence> {
    for r in &mut h.replicas {
        if let Some(d) = r.flush(&h.pending_expected, &h.pending_at) {
            return Some(d);
        }
    }
    h.pending_expected.clear();
    h.pending_at.clear();
    None
}

fn advance_and_compare(h: &mut Harness, at: usize) -> Option<Divergence> {
    // Batch replicas flush their buffered block before the refresh engine
    // advances, matching the simulator's drain-feeds-then-advance order.
    if let Some(d) = flush_replicas(h) {
        return Some(d);
    }
    let rep = h.engine.advance(&mut h.cache, h.now);
    let (ora_r, ora_i) = h.oracle.advance_refresh(h.now);
    diff!(at, "advance.refreshes", ora_r, rep.refreshes);
    diff!(at, "advance.invalidations", ora_i, rep.invalidations);
    if let Some(d) = compare_full(h, at) {
        return Some(d);
    }
    // The scalar side checked out against the oracle; now each replica
    // advances and must match the scalar results exactly.
    let banks = std::mem::take(&mut h.last_banks);
    let now = h.now;
    let Harness {
        cache, replicas, ..
    } = h;
    for r in replicas.iter_mut() {
        if let Some(d) = r.advance(at, now, cache, &banks, rep.refreshes, rep.invalidations) {
            return Some(d);
        }
    }
    None
}

/// The post-advance whole-state comparison.
fn compare_full(h: &mut Harness, at: usize) -> Option<Divergence> {
    let cfg = h.oracle.config().clone();
    let cache = &h.cache;
    let oracle = &h.oracle;

    // Lifetime access counters.
    diff!(at, "stats.hits", oracle.hits, cache.stats.hits);
    diff!(at, "stats.misses", oracle.misses, cache.stats.misses);
    diff!(
        at,
        "stats.writebacks",
        oracle.writebacks,
        cache.stats.writebacks
    );
    diff!(at, "stats.writes", oracle.writes, cache.stats.writes);
    diff!(at, "stats.pos_hits", oracle.pos_hits, cache.stats.pos_hits);

    // Occupancy, per-bank distribution, powered slots, way masks.
    diff!(at, "valid_lines", oracle.valid_lines(), cache.valid_lines());
    diff!(
        at,
        "valid_per_bank",
        oracle.valid_per_bank(),
        cache.valid_lines_per_bank().to_vec()
    );
    diff!(
        at,
        "active_slots",
        oracle.active_slots(),
        cache.active_slots()
    );
    diff!(at, "module_ways", oracle.module_ways(), cache.module_ways());

    // ATD leader-set accounting: histogram credit and leader census.
    for m in 0..cfg.modules {
        diff!(
            at,
            format!("atd.module_hits[{m}]"),
            oracle.atd_hits[m as usize],
            cache.atd.module_hits(m).to_vec()
        );
        diff!(
            at,
            format!("atd.leaders_in_module[{m}]"),
            oracle.leaders_in_module(m),
            cache.atd.leaders_in_module(m)
        );
    }

    // Refresh totals and the per-bank contention windows.
    diff!(
        at,
        "refresh.total",
        oracle.total_refreshes,
        h.engine.total_refreshes()
    );
    diff!(
        at,
        "refresh.invalidations",
        oracle.total_invalidations,
        h.engine.total_invalidations()
    );
    let ora_banks = h.oracle.drain_bank_refreshes();
    let opt_banks = h.engine.drain_bank_refreshes();
    diff!(at, "refresh.bank_window", ora_banks, opt_banks);
    // Stash for the batch-replica comparison in `advance_and_compare`.
    h.last_banks = opt_banks;

    // Full line-state sweep.
    let track = cfg.policy.is_polyphase();
    for set in 0..cfg.sets {
        for way in 0..cfg.ways {
            let opt = h.cache.line(set, way);
            let (valid, dirty, tag, last_update) = h.oracle.line(set, way);
            diff!(at, format!("line[{set}][{way}].valid"), valid, opt.valid);
            if valid {
                diff!(at, format!("line[{set}][{way}].dirty"), dirty, opt.dirty);
                diff!(at, format!("line[{set}][{way}].tag"), tag, opt.tag);
                if track {
                    diff!(
                        at,
                        format!("line[{set}][{way}].last_update"),
                        last_update,
                        opt.last_update
                    );
                }
            }
        }
    }

    // Structural self-check of the optimized cache (counter recounts, LRU
    // permutations, mask containment, ATD census). Panics are caught by
    // the run_case catch_unwind and surfaced as divergences.
    h.cache.assert_invariants();

    // Eq. 2–8 energy identities from both sides' counters. The inputs were
    // compared above, so any disagreement here isolates a divergence in
    // the derived quantities (active fraction, A_MM synthesis, N_L).
    let seconds = h.now as f64 / 2.0e9;
    let opt_in = EnergyInputs {
        seconds,
        active_fraction: h.cache.active_fraction(),
        l2_hits: h.cache.stats.hits,
        l2_misses: h.cache.stats.misses,
        refreshes: h.engine.total_refreshes(),
        mem_accesses: h.cache.stats.misses + h.cache.stats.writebacks + h.opt_reconf_wb,
        block_transitions: h.opt_transitions,
    };
    let total_slots = u64::from(cfg.sets) * u64::from(cfg.ways);
    let ora_in = EnergyInputs {
        seconds,
        active_fraction: h.oracle.active_slots() as f64 / total_slots as f64,
        l2_hits: h.oracle.hits,
        l2_misses: h.oracle.misses,
        refreshes: h.oracle.total_refreshes,
        mem_accesses: h.oracle.misses + h.oracle.writebacks + h.ora_reconf_wb,
        block_transitions: h.ora_transitions,
    };
    let opt_e = EnergyBreakdown::compute(&h.params, &opt_in);
    let ora_e = EnergyBreakdown::compute(&h.params, &ora_in);
    diff!(at, "energy.l2_leakage", ora_e.l2_leakage, opt_e.l2_leakage);
    diff!(at, "energy.l2_dynamic", ora_e.l2_dynamic, opt_e.l2_dynamic);
    diff!(at, "energy.l2_refresh", ora_e.l2_refresh, opt_e.l2_refresh);
    diff!(at, "energy.mm_leakage", ora_e.mm_leakage, opt_e.mm_leakage);
    diff!(at, "energy.mm_dynamic", ora_e.mm_dynamic, opt_e.mm_dynamic);
    diff!(at, "energy.algo", ora_e.algo, opt_e.algo);
    diff!(at, "energy.total", ora_e.total(), opt_e.total());

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CaseConfig;

    fn base_config(policy: CheckPolicy) -> CaseConfig {
        CaseConfig {
            sets: 16,
            ways: 4,
            banks: 2,
            modules: 2,
            leader_stride: Some(8),
            policy,
            retention: 400,
            phases: if policy.is_polyphase() { 4 } else { 1 },
        }
    }

    /// A hand-written, straight-line case agrees end to end.
    #[test]
    fn simple_case_agrees() {
        for policy in [
            CheckPolicy::PeriodicAll,
            CheckPolicy::PeriodicValid,
            CheckPolicy::PolyphaseValid,
            CheckPolicy::PolyphaseDirty,
        ] {
            let case = Case {
                config: base_config(policy),
                ops: vec![
                    Op::Access {
                        block: 3,
                        write: true,
                        dcycles: 10,
                    },
                    Op::Access {
                        block: 19,
                        write: false,
                        dcycles: 10,
                    },
                    Op::Access {
                        block: 3,
                        write: false,
                        dcycles: 10,
                    },
                    Op::Advance { dcycles: 500 },
                    Op::Reconfig { module: 0, ways: 1 },
                    Op::Access {
                        block: 35,
                        write: true,
                        dcycles: 5,
                    },
                    Op::Advance { dcycles: 900 },
                    Op::Reconfig { module: 0, ways: 4 },
                    Op::Advance { dcycles: 2000 },
                ],
            };
            assert_eq!(run_case(&case), None, "policy {policy:?} diverged");
        }
    }

    /// A panic out of the optimized stack is converted into a divergence
    /// pinned to the op that raised it (here: an out-of-range
    /// reconfiguration, which `set_module_active_ways` rejects with an
    /// assert before the oracle runs).
    #[test]
    fn panic_becomes_divergence() {
        let case = Case {
            config: base_config(CheckPolicy::PeriodicValid),
            ops: vec![Op::Reconfig { module: 0, ways: 9 }],
        };
        let d = run_case(&case).expect("out-of-range reconfig must diverge");
        assert_eq!(d.field, "panic");
        assert_eq!(d.op_index, 0);
        assert!(d.got.contains("1..=A"), "payload lost: {}", d.got);
    }
}
