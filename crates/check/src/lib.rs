//! Differential oracle checker for the optimized simulator stack.
//!
//! PR 1 rewrote the cache/refresh hot path (packed 4-bit LRU words, u32
//! phase-quotient refresh scheduling, shift/mask line splits). This crate
//! guards that machinery with *differential testing*: a deliberately naive
//! reference model ([`oracle`]) — plain `Vec`s, divisions, per-line
//! deadlines, written for obviousness rather than speed — is run in
//! lockstep with the optimized `esteem-cache`/`esteem-edram` stack over
//! fuzzed configurations and access streams ([`fuzz`]), and every
//! observable is compared after every operation ([`lockstep`]):
//!
//! * per-access: hit/miss, hit LRU position, victim way identity,
//!   evicted-valid flag, write-back block address, bank/module/leader
//!   attribution;
//! * per-reconfiguration: write-back/discard/slot-transition counts;
//! * per-advance: refresh and invalidation counts, drained per-bank
//!   refresh windows, full line-state equality (valid/dirty/tag/retention
//!   clock), way masks, ATD counters, and the eq. 2–8 energy identities
//!   evaluated over both sides' counters.
//!
//! Any mismatch — or a panic out of the optimized stack, which the
//! `strict-invariants` feature makes far more likely by promoting internal
//! `debug_assert!`s to hard asserts — becomes a [`Divergence`]. The
//! [`minimize`] module shrinks the failing case to a short reproducer
//! (config + op list) which the `esteem-check` binary writes to
//! `results/repros/` as JSON; `esteem-check --replay FILE` re-runs one.
//!
//! The checker also differentially tests Algorithm 1 itself
//! ([`oracle_algorithm1`] vs `esteem_core::esteem::algorithm1_explain`)
//! over fuzzed hit histograms, pinning the documented contract that the
//! `A_min` floor always holds.

pub mod fuzz;
pub mod lockstep;
pub mod minimize;
pub mod oracle;
pub mod repro;

use serde::{Deserialize, Serialize};

/// One observed disagreement between the optimized stack and the oracle
/// (or a panic out of the optimized stack).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Index of the op at which the mismatch was detected (`ops.len()`
    /// for the post-run flush comparison).
    pub op_index: usize,
    /// The observable that disagreed (e.g. `"access.way"`, `"refreshes"`).
    pub field: String,
    /// Oracle's value, rendered.
    pub expected: String,
    /// Optimized stack's value, rendered.
    pub got: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op {}: {} diverged: oracle={} optimized={}",
            self.op_index, self.field, self.expected, self.got
        )
    }
}

/// Naive reference transcription of the paper's Algorithm 1, encoding the
/// documented contract directly: count non-monotone inversions above the
/// noise floor, pick the first alpha-coverage position, and clamp to a
/// floor that is `A_min` — raised to `A - 1` for non-LRU modules — so the
/// "minimum ways always kept on" guarantee of `A_min` holds
/// unconditionally.
pub fn oracle_algorithm1(hits: &[u64], alpha: f64, a_min: u8, non_lru_guard: bool) -> u8 {
    let a = hits.len() as u8;
    assert!((1..=64).contains(&a));
    let total: u64 = hits.iter().sum();
    let noise_floor = (total / 128).max(4);
    let mut anomalies = 0usize;
    for i in 0..hits.len() - 1 {
        if hits[i] < hits[i + 1] && hits[i + 1] >= noise_floor {
            anomalies += 1;
        }
    }
    let non_lru = non_lru_guard && anomalies >= hits.len() / 4;
    let floor = if non_lru { a_min.max(a - 1) } else { a_min };

    // First position whose accumulated hits reach alpha * total. Must use
    // the exact same float comparison as the optimized side, so identical
    // inputs take identical branches.
    let threshold = alpha * total as f64;
    let mut accumulated = 0u64;
    let mut chosen = a_min.max(1);
    for (i, &h) in hits.iter().enumerate() {
        accumulated += h;
        if accumulated as f64 >= threshold {
            chosen = (i + 1) as u8;
            break;
        }
    }
    chosen.max(floor).min(a).max(1)
}
