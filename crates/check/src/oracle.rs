//! The naive reference model.
//!
//! Everything here is written for *obviousness*: plain `Vec`s of per-line
//! structs, recency kept as an explicit way list (index 0 = MRU), leader
//! selection and address mapping done with divisions and modulo, refresh
//! deadlines stored per line as absolute cycles and scanned linearly. No
//! bitmasks, no packed words, no calendar queues — nothing shared with
//! the optimized implementation beyond the documented semantics:
//!
//! * a hit promotes the line to MRU; a write marks it dirty;
//! * a miss fills an *enabled* way: the invalid enabled way closest to the
//!   LRU end if any, else the least-recently-used enabled way (evicting a
//!   dirty line reports its block address for write-back);
//! * leader sets (every `R_s`-th set) always keep all `A` ways enabled
//!   and credit their hits to the owning module's ATD histogram;
//! * shrinking a module invalidates ways `new..old` of its follower sets
//!   (dirty lines counted as write-backs, clean as discards); growing
//!   enables empty ways; either way `|delta| * follower_sets` slots
//!   change power state;
//! * polyphase refresh (Refrint): a charge-restoring event at cycle `c`
//!   sets the line's deadline to `phase_floor(c) + retention`; at each
//!   phase boundary every valid line whose deadline equals the boundary
//!   is refreshed (RPV) or refreshed-if-dirty / invalidated-if-clean
//!   (RPD); periodic policies refresh every active slot (periodic-all) or
//!   every valid line (periodic-valid) once per retention period.

use esteem_cache::BlockAddr;
use serde::{Deserialize, Serialize};

/// Refresh policy fuzzed by the checker. Mirrors
/// `esteem_edram::RefreshPolicy` minus the multi-periodic scrub policy
/// (whose retention-variation model is a shared component, so a lockstep
/// comparison would not be independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckPolicy {
    PeriodicAll,
    PeriodicValid,
    PolyphaseValid,
    PolyphaseDirty,
}

impl CheckPolicy {
    pub fn is_polyphase(self) -> bool {
        matches!(
            self,
            CheckPolicy::PolyphaseValid | CheckPolicy::PolyphaseDirty
        )
    }
}

/// One fuzzed cache/refresh configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseConfig {
    pub sets: u32,
    pub ways: u8,
    pub banks: u8,
    pub modules: u16,
    /// The paper's `R_s`; `None` = no leader sampling.
    pub leader_stride: Option<u32>,
    pub policy: CheckPolicy,
    /// Retention period in cycles (a multiple of `phases`).
    pub retention: u64,
    /// Polyphase phase count (1 for the periodic policies).
    pub phases: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct OLine {
    valid: bool,
    dirty: bool,
    tag: u64,
    last_update: u64,
    /// Absolute due cycle of the next polyphase refresh (`None` when the
    /// slot is not scheduled).
    deadline: Option<u64>,
}

struct OSet {
    lines: Vec<OLine>,
    /// `recency[0]` is the MRU way, `recency[A-1]` the LRU way.
    recency: Vec<u8>,
}

/// Mirror of [`esteem_cache::AccessOutcome`] produced by the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleAccess {
    pub hit: bool,
    pub hit_pos: u8,
    pub set: u32,
    pub way: u8,
    pub bank: u8,
    pub module: u16,
    pub leader: bool,
    pub evicted_valid: bool,
    pub writeback: Option<BlockAddr>,
}

/// Mirror of [`esteem_cache::ReconfigOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleReconfig {
    pub writebacks: u64,
    pub discards: u64,
    pub slot_transitions: u64,
}

/// The reference model: cache state, counters, and refresh bookkeeping in
/// one struct (the naive model has no reason to split them).
pub struct OracleModel {
    cfg: CaseConfig,
    sets: Vec<OSet>,
    module_ways: Vec<u8>,
    track_retention: bool,
    // Lifetime counters, mirroring CacheStats + AtdCounters.
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    pub writes: u64,
    pub pos_hits: Vec<u64>,
    /// `atd_hits[module][pos]`.
    pub atd_hits: Vec<Vec<u64>>,
    // Refresh bookkeeping.
    next_period_end: u64,
    /// Next unprocessed polyphase phase boundary.
    next_phase_boundary: u64,
    pub total_refreshes: u64,
    pub total_invalidations: u64,
    /// Per-bank refresh ops since the last drain.
    bank_window: Vec<u64>,
}

impl OracleModel {
    pub fn new(cfg: &CaseConfig) -> Self {
        assert!(cfg.phases >= 1);
        assert!(cfg.retention.is_multiple_of(u64::from(cfg.phases)));
        let sets = (0..cfg.sets)
            .map(|_| OSet {
                lines: vec![OLine::default(); cfg.ways as usize],
                recency: (0..cfg.ways).collect(),
            })
            .collect();
        Self {
            sets,
            module_ways: vec![cfg.ways; cfg.modules as usize],
            track_retention: cfg.policy.is_polyphase(),
            hits: 0,
            misses: 0,
            writebacks: 0,
            writes: 0,
            pos_hits: vec![0; cfg.ways as usize],
            atd_hits: vec![vec![0; cfg.ways as usize]; cfg.modules as usize],
            next_period_end: cfg.retention,
            next_phase_boundary: cfg.retention / u64::from(cfg.phases),
            total_refreshes: 0,
            total_invalidations: 0,
            bank_window: vec![0; cfg.banks as usize],
            cfg: cfg.clone(),
        }
    }

    pub fn config(&self) -> &CaseConfig {
        &self.cfg
    }

    fn phase_len(&self) -> u64 {
        self.cfg.retention / u64::from(self.cfg.phases)
    }

    // ---- naive address mapping -------------------------------------

    pub fn set_of(&self, block: BlockAddr) -> u32 {
        (block % u64::from(self.cfg.sets)) as u32
    }

    pub fn tag_of(&self, block: BlockAddr) -> u64 {
        block / u64::from(self.cfg.sets)
    }

    pub fn block_of(&self, tag: u64, set: u32) -> BlockAddr {
        tag * u64::from(self.cfg.sets) + u64::from(set)
    }

    pub fn bank_of(&self, set: u32) -> u8 {
        (set % u32::from(self.cfg.banks)) as u8
    }

    pub fn module_of(&self, set: u32) -> u16 {
        (set / (self.cfg.sets / u32::from(self.cfg.modules))) as u16
    }

    pub fn is_leader(&self, set: u32) -> bool {
        match self.cfg.leader_stride {
            None => false,
            Some(rs) => set.is_multiple_of(rs),
        }
    }

    /// Number of ways enabled for a set: all of them for leaders, the
    /// module's configured count for followers.
    fn enabled_ways(&self, set: u32) -> u8 {
        if self.is_leader(set) {
            self.cfg.ways
        } else {
            self.module_ways[self.module_of(set) as usize]
        }
    }

    pub fn module_ways(&self) -> &[u8] {
        &self.module_ways
    }

    // ---- cache operations ------------------------------------------

    pub fn access(&mut self, block: BlockAddr, write: bool, now: u64) -> OracleAccess {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let bank = self.bank_of(set);
        let module = self.module_of(set);
        let leader = self.is_leader(set);
        let enabled = self.enabled_ways(set);
        let track = self.track_retention;
        let deadline = self.next_deadline(now);

        if write {
            self.writes += 1;
        }

        // Hit scan over the enabled, valid ways.
        let mut hit_way = None;
        {
            let s = &self.sets[set as usize];
            for way in 0..enabled {
                let l = &s.lines[way as usize];
                if l.valid && l.tag == tag {
                    hit_way = Some(way);
                    break;
                }
            }
        }
        if let Some(way) = hit_way {
            let s = &mut self.sets[set as usize];
            let pos = s.recency.iter().position(|&w| w == way).unwrap() as u8;
            // Promote to MRU.
            s.recency.remove(pos as usize);
            s.recency.insert(0, way);
            let l = &mut s.lines[way as usize];
            if write {
                l.dirty = true;
            }
            if track {
                l.last_update = now;
            }
            l.deadline = deadline;
            self.hits += 1;
            self.pos_hits[pos as usize] += 1;
            if leader {
                self.atd_hits[module as usize][pos as usize] += 1;
            }
            return OracleAccess {
                hit: true,
                hit_pos: pos,
                set,
                way,
                bank,
                module,
                leader,
                evicted_valid: false,
                writeback: None,
            };
        }

        // Miss: prefer the invalid enabled way nearest the LRU end, else
        // the LRU enabled way.
        self.misses += 1;
        let victim = {
            let s = &self.sets[set as usize];
            let mut choice = None;
            for &w in s.recency.iter().rev() {
                if w < enabled && !s.lines[w as usize].valid {
                    choice = Some(w);
                    break;
                }
            }
            if choice.is_none() {
                for &w in s.recency.iter().rev() {
                    if w < enabled {
                        choice = Some(w);
                        break;
                    }
                }
            }
            choice.expect("at least one way is always enabled")
        };
        let old_tag = self.sets[set as usize].lines[victim as usize].tag;
        let evicted_valid = self.sets[set as usize].lines[victim as usize].valid;
        let evicted_dirty = self.sets[set as usize].lines[victim as usize].dirty;
        let writeback = if evicted_valid && evicted_dirty {
            self.writebacks += 1;
            Some(self.block_of(old_tag, set))
        } else {
            None
        };
        {
            let s = &mut self.sets[set as usize];
            let l = &mut s.lines[victim as usize];
            l.valid = true;
            l.dirty = write;
            l.tag = tag;
            if track {
                l.last_update = now;
            }
            l.deadline = deadline;
            let pos = s.recency.iter().position(|&w| w == victim).unwrap();
            s.recency.remove(pos);
            s.recency.insert(0, victim);
        }
        OracleAccess {
            hit: false,
            hit_pos: 0,
            set,
            way: victim,
            bank,
            module,
            leader,
            evicted_valid,
            writeback,
        }
    }

    /// Deadline assigned by a charge-restoring event at `now` (polyphase
    /// policies only): the start of this phase plus one retention period.
    fn next_deadline(&self, now: u64) -> Option<u64> {
        if !self.cfg.policy.is_polyphase() {
            return None;
        }
        let pl = self.phase_len();
        Some((now / pl) * pl + self.cfg.retention)
    }

    pub fn reconfig(&mut self, module: u16, new_ways: u8, _now: u64) -> OracleReconfig {
        assert!((1..=self.cfg.ways).contains(&new_ways));
        let old = self.module_ways[module as usize];
        if old == new_ways {
            return OracleReconfig::default();
        }
        let spm = self.cfg.sets / u32::from(self.cfg.modules);
        let first = u32::from(module) * spm;
        let mut out = OracleReconfig::default();
        let mut followers = 0u64;
        for set in first..first + spm {
            if self.is_leader(set) {
                continue;
            }
            followers += 1;
            if new_ways < old {
                for way in new_ways..old {
                    let l = &mut self.sets[set as usize].lines[way as usize];
                    if l.valid {
                        if l.dirty {
                            out.writebacks += 1;
                        } else {
                            out.discards += 1;
                        }
                        l.valid = false;
                        l.dirty = false;
                        l.deadline = None;
                    }
                }
            }
        }
        out.slot_transitions = u64::from(old.abs_diff(new_ways)) * followers;
        self.module_ways[module as usize] = new_ways;
        out
    }

    // ---- naive state queries (recomputed, never cached) -------------

    pub fn valid_lines(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter())
            .filter(|l| l.valid)
            .count() as u64
    }

    pub fn valid_per_bank(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.cfg.banks as usize];
        for set in 0..self.cfg.sets {
            let n = self.sets[set as usize]
                .lines
                .iter()
                .filter(|l| l.valid)
                .count() as u64;
            out[self.bank_of(set) as usize] += n;
        }
        out
    }

    pub fn active_slots(&self) -> u64 {
        (0..self.cfg.sets)
            .map(|set| u64::from(self.enabled_ways(set)))
            .sum()
    }

    pub fn leaders_in_module(&self, module: u16) -> u32 {
        let spm = self.cfg.sets / u32::from(self.cfg.modules);
        let first = u32::from(module) * spm;
        (first..first + spm).filter(|&s| self.is_leader(s)).count() as u32
    }

    /// Line-state snapshot: `(valid, dirty, tag, last_update)`.
    pub fn line(&self, set: u32, way: u8) -> (bool, bool, u64, u64) {
        let l = &self.sets[set as usize].lines[way as usize];
        (l.valid, l.dirty, l.tag, l.last_update)
    }

    /// Recency position of `way` in `set` (0 = MRU).
    pub fn position_of(&self, set: u32, way: u8) -> u8 {
        self.sets[set as usize]
            .recency
            .iter()
            .position(|&w| w == way)
            .unwrap() as u8
    }

    // ---- refresh ---------------------------------------------------

    /// Advances refresh processing to `to` (inclusive), mirroring
    /// `RefreshEngine::advance`. Returns `(refreshes, invalidations)`.
    pub fn advance_refresh(&mut self, to: u64) -> (u64, u64) {
        let mut refreshes = 0u64;
        let mut invalidations = 0u64;
        match self.cfg.policy {
            CheckPolicy::PeriodicAll => {
                while self.next_period_end <= to {
                    let slots = self.active_slots();
                    // Uniform striping over banks: total/B each, remainder
                    // to the lowest-numbered banks.
                    let b = self.cfg.banks as u64;
                    for (i, w) in self.bank_window.iter_mut().enumerate() {
                        *w += slots / b + u64::from((i as u64) < slots % b);
                    }
                    refreshes += slots;
                    self.next_period_end += self.cfg.retention;
                }
            }
            CheckPolicy::PeriodicValid => {
                while self.next_period_end <= to {
                    for set in 0..self.cfg.sets {
                        let bank = self.bank_of(set) as usize;
                        let n = self.sets[set as usize]
                            .lines
                            .iter()
                            .filter(|l| l.valid)
                            .count() as u64;
                        self.bank_window[bank] += n;
                        refreshes += n;
                    }
                    self.next_period_end += self.cfg.retention;
                }
            }
            CheckPolicy::PolyphaseValid | CheckPolicy::PolyphaseDirty => {
                let dirty_only = self.cfg.policy == CheckPolicy::PolyphaseDirty;
                let pl = self.phase_len();
                while self.next_phase_boundary <= to {
                    let boundary = self.next_phase_boundary;
                    for set in 0..self.cfg.sets {
                        let bank = self.bank_of(set) as usize;
                        for way in 0..self.cfg.ways {
                            let l = &mut self.sets[set as usize].lines[way as usize];
                            if l.deadline != Some(boundary) {
                                continue;
                            }
                            if !l.valid {
                                l.deadline = None;
                            } else if dirty_only && !l.dirty {
                                // RPD: clean and idle for a full period —
                                // invalidate instead of refreshing.
                                l.valid = false;
                                l.deadline = None;
                                invalidations += 1;
                            } else {
                                l.last_update = boundary;
                                l.deadline = Some(boundary + self.cfg.retention);
                                self.bank_window[bank] += 1;
                                refreshes += 1;
                            }
                        }
                    }
                    self.next_phase_boundary += pl;
                }
            }
        }
        self.total_refreshes += refreshes;
        self.total_invalidations += invalidations;
        (refreshes, invalidations)
    }

    /// Per-bank refresh ops since the previous drain; resets the window.
    pub fn drain_bank_refreshes(&mut self) -> Vec<u64> {
        std::mem::replace(&mut self.bank_window, vec![0; self.cfg.banks as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CaseConfig {
        CaseConfig {
            sets: 16,
            ways: 4,
            banks: 2,
            modules: 2,
            leader_stride: Some(8),
            policy: CheckPolicy::PolyphaseValid,
            retention: 100,
            phases: 4,
        }
    }

    #[test]
    fn fill_hit_and_evict() {
        let mut o = OracleModel::new(&cfg());
        let b = o.block_of(7, 3);
        let r = o.access(b, false, 10);
        assert!(!r.hit);
        let r = o.access(b, true, 20);
        assert!(r.hit);
        assert_eq!(r.hit_pos, 0);
        assert_eq!(o.valid_lines(), 1);
        // Fill the set and push the first line out with a 5th block.
        for t in 1..=4u64 {
            o.access(o.block_of(7 + t, 3), false, 30);
        }
        assert_eq!(o.valid_lines(), 4);
        // The dirty original was the LRU victim: write-back reported.
        assert_eq!(o.writebacks, 1);
    }

    #[test]
    fn polyphase_deadline_and_refresh() {
        let mut o = OracleModel::new(&cfg());
        let b = o.block_of(1, 2);
        o.access(b, false, 60); // phase 2 (50..75) -> deadline 150
        let (r, i) = o.advance_refresh(149);
        assert_eq!((r, i), (0, 0));
        let (r, i) = o.advance_refresh(150);
        assert_eq!((r, i), (1, 0));
        let (r, _) = o.advance_refresh(250);
        assert_eq!(r, 1, "rescheduled one retention period later");
    }

    #[test]
    fn shrink_counts_and_grow_is_empty() {
        let mut o = OracleModel::new(&cfg());
        // Fill all ways of module 0's sets (0..8; set 0 is a leader).
        for set in 0..8u32 {
            for t in 0..4u64 {
                o.access(o.block_of(t + 1, set), t == 0, 0);
            }
        }
        let out = o.reconfig(0, 2, 100);
        // 7 follower sets lose 2 ways each.
        assert_eq!(out.writebacks + out.discards, 14);
        assert_eq!(out.slot_transitions, 14);
        let out = o.reconfig(0, 4, 200);
        assert_eq!(out.writebacks + out.discards, 0);
        assert_eq!(out.slot_transitions, 14);
        assert_eq!(o.active_slots(), 16 * 4);
    }
}
