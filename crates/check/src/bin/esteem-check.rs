//! Differential fuzzing driver.
//!
//! ```text
//! esteem-check [--seed N] [--cases N] [--out DIR] [--max-divergences N]
//!              [--replay FILE] [--quiet]
//! ```
//!
//! Fuzz mode (default): generates `--cases` random configurations and
//! operation streams from `--seed`, runs each through the optimized stack
//! and the oracle in lockstep, and for every divergence writes a minimized
//! reproducer JSON into `--out` (default `results/repros/`). Each case
//! also fuzzes Algorithm 1 against its reference transcription. Exit code
//! is nonzero iff any divergence was found.
//!
//! Replay mode: `--replay FILE` re-runs one saved reproducer and reports
//! whether it still diverges (exit 1) or has been fixed (exit 0).

use std::path::PathBuf;
use std::process::ExitCode;

use esteem_check::fuzz::{case_rng, gen_algo1_case, gen_case};
use esteem_check::lockstep::{install_quiet_panic_hook, run_case};
use esteem_check::minimize::minimize;
use esteem_check::{oracle_algorithm1, repro};
use esteem_core::esteem::algorithm1;

struct Args {
    seed: u64,
    cases: u64,
    out: PathBuf,
    max_divergences: usize,
    replay: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0,
        cases: 1000,
        out: PathBuf::from("results/repros"),
        max_divergences: 10,
        replay: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--cases" => {
                args.cases = val("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--max-divergences" => {
                args.max_divergences = val("--max-divergences")?
                    .parse()
                    .map_err(|e| format!("--max-divergences: {e}"))?
            }
            "--replay" => args.replay = Some(PathBuf::from(val("--replay")?)),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: esteem-check [--seed N] [--cases N] [--out DIR] \
                     [--max-divergences N] [--replay FILE] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("esteem-check: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.replay {
        return replay(path);
    }

    install_quiet_panic_hook();
    let mut divergences = 0usize;
    for i in 0..args.cases {
        let case = gen_case(&mut case_rng(args.seed, i));
        if let Some(raw) = run_case(&case) {
            divergences += 1;
            eprintln!("case {i} (seed {}): {raw}", args.seed);
            let (min, div) = minimize(&case);
            let r = repro::Repro {
                seed: args.seed,
                case_index: i,
                config: min.config.clone(),
                ops: min.ops.clone(),
                divergence: div.clone(),
            };
            match repro::save(&args.out, &r) {
                Ok(path) => eprintln!(
                    "  minimized to {} ops: {div}\n  reproducer: {}",
                    min.ops.len(),
                    path.display()
                ),
                Err(e) => eprintln!(
                    "  minimized to {} ops: {div}\n  (save failed: {e})",
                    min.ops.len()
                ),
            }
            if divergences >= args.max_divergences {
                eprintln!("stopping after {divergences} divergences");
                break;
            }
        }

        // Algorithm 1 differential: reference transcription vs optimized.
        let ac = gen_algo1_case(&mut case_rng(args.seed ^ 0xa160_0001, i));
        let want = oracle_algorithm1(&ac.hits, ac.alpha, ac.a_min, ac.non_lru_guard);
        let got = algorithm1(&ac.hits, ac.alpha, ac.a_min, ac.non_lru_guard);
        if want != got {
            divergences += 1;
            eprintln!(
                "case {i}: algorithm1 diverged: oracle={want} optimized={got} \
                 (hits={:?} alpha={} a_min={} guard={})",
                ac.hits, ac.alpha, ac.a_min, ac.non_lru_guard
            );
            if divergences >= args.max_divergences {
                eprintln!("stopping after {divergences} divergences");
                break;
            }
        }

        if !args.quiet && (i + 1) % 1000 == 0 {
            eprintln!(
                "… {}/{} cases, {divergences} divergences",
                i + 1,
                args.cases
            );
        }
    }

    if divergences == 0 {
        println!(
            "esteem-check: {} cases (seed {}), zero divergences",
            args.cases, args.seed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "esteem-check: {divergences} divergence(s) over {} cases (seed {}); reproducers in {}",
            args.cases,
            args.seed,
            args.out.display()
        );
        ExitCode::FAILURE
    }
}

fn replay(path: &std::path::Path) -> ExitCode {
    let r = match repro::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("esteem-check: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} ({} ops, recorded divergence: {})",
        path.display(),
        r.ops.len(),
        r.divergence
    );
    match run_case(&r.case()) {
        Some(d) => {
            println!("still diverges: {d}");
            ExitCode::FAILURE
        }
        None => {
            println!("no divergence — this reproducer is fixed");
            ExitCode::SUCCESS
        }
    }
}
