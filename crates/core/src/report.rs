//! Simulation result types.

use esteem_energy::{EnergyBreakdown, EnergyInputs};
use serde::{Deserialize, Serialize};

/// One interval's ESTEEM decision (Figure 2 material).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Cycle at which the reconfiguration was applied.
    pub cycle: u64,
    /// Active ways chosen per module.
    pub ways: Vec<u8>,
    /// L2 active fraction right after applying the decision.
    pub active_fraction: f64,
}

/// Per-core outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Instructions at the IPC measurement point (the configured target).
    pub instructions: u64,
    /// Cycles the core took to reach the target.
    pub cycles: f64,
    /// Measured IPC at the target.
    pub ipc: f64,
    /// L1D statistics.
    pub l1_hits: u64,
    pub l1_misses: u64,
}

/// Complete result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Workload label, e.g. `"h264ref"` or `"GkNe"`.
    pub workload: String,
    /// Technique label.
    pub technique: String,
    /// Total simulated cycles (quantum-aligned run end).
    pub cycles: u64,
    pub per_core: Vec<CoreReport>,
    /// Raw activity fed to the energy model.
    pub inputs: EnergyInputs,
    /// Energy by source (equations 2–8).
    pub energy: EnergyBreakdown,
    /// L2 lifetime counters.
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub l2_writebacks: u64,
    /// Refresh work.
    pub refreshes: u64,
    /// RPD eager invalidations (zero for other techniques).
    pub refresh_invalidations: u64,
    /// Main-memory accesses (`A_MM`).
    pub mem_accesses: u64,
    /// Time-averaged active fraction (1.0 unless ESTEEM).
    pub active_ratio: f64,
    /// ESTEEM per-interval decisions (empty otherwise).
    pub intervals: Vec<IntervalRecord>,
    /// Mean modelled L2 bank wait over the final window (diagnostics).
    pub final_bank_wait: f64,
}

impl SimReport {
    /// Total instructions over all cores at their measurement points.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// Refreshes per kilo-instruction.
    pub fn rpki(&self) -> f64 {
        esteem_energy::metrics::per_kilo_instruction(self.refreshes, self.total_instructions())
    }

    /// L2 misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        esteem_energy::metrics::per_kilo_instruction(self.l2_misses, self.total_instructions())
    }

    pub fn ipcs(&self) -> Vec<f64> {
        self.per_core.iter().map(|c| c.ipc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            workload: "x".into(),
            technique: "baseline".into(),
            cycles: 1000,
            per_core: vec![
                CoreReport {
                    instructions: 1_000_000,
                    cycles: 900_000.0,
                    ipc: 1.11,
                    l1_hits: 10,
                    l1_misses: 5,
                },
                CoreReport {
                    instructions: 1_000_000,
                    cycles: 800_000.0,
                    ipc: 1.25,
                    l1_hits: 20,
                    l1_misses: 2,
                },
            ],
            inputs: EnergyInputs::default(),
            energy: EnergyBreakdown::default(),
            l2_hits: 100,
            l2_misses: 4000,
            l2_writebacks: 10,
            refreshes: 1_000_000,
            refresh_invalidations: 0,
            mem_accesses: 4010,
            active_ratio: 1.0,
            intervals: vec![],
            final_bank_wait: 0.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.total_instructions(), 2_000_000);
        assert!((r.rpki() - 500.0).abs() < 1e-9);
        assert!((r.mpki() - 2.0).abs() < 1e-9);
        assert_eq!(r.ipcs(), vec![1.11, 1.25]);
    }

    #[test]
    fn serializes() {
        let r = report();
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("\"refreshes\":1000000"));
    }
}
