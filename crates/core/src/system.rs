//! The multicore system simulator.

use esteem_cache::SetAssocCache;
use esteem_edram::{BankContention, RefreshEngine};
use esteem_energy::{EnergyBreakdown, EnergyInputs, EnergyParams};
use esteem_mem::MainMemory;
use esteem_workloads::BenchmarkProfile;

use crate::config::SystemConfig;
use crate::core_model::{CoreState, CYCLE_FP_SHIFT};
use crate::esteem::EsteemController;
use crate::report::{CoreReport, SimReport};

/// Deterministic trace-driven multicore simulator.
///
/// Cores advance in fixed-size time quanta (relaxed barrier
/// synchronisation, the approach Sniper itself uses for scalability): each
/// quantum, every core executes until its local clock passes the quantum
/// boundary; then the refresh engine, contention windows, and — for
/// ESTEEM — the interval engine run. The loop ends when every core has
/// reached its instruction target; early finishers keep running so the
/// shared L2 keeps seeing their traffic (paper §6.4 methodology).
///
/// **Warm-up.** The first `warmup_cycles` stand in for the paper's
/// 10 B-instruction fast-forward: caches fill and ESTEEM converges. At the
/// first quantum boundary past the warm-up the simulator snapshots every
/// system counter (and each core's instruction/cycle position); the final
/// report contains only post-snapshot deltas.
pub struct Simulator {
    cfg: SystemConfig,
    workload_label: String,
    cores: Vec<CoreState>,
    l2: SetAssocCache,
    refresh: RefreshEngine,
    contention: BankContention,
    mem: MainMemory,
    controller: Option<EsteemController>,
    clock: u64,
    next_window: u64,
    /// Integral of active slots over time (for the time-averaged `F_A`).
    active_slot_cycles: f64,
    n_l: u64,
    reconfig_writebacks: u64,
    reconfig_discards: u64,
    /// Reusable buffer for per-bank refresh drains (avoids a Vec
    /// allocation every contention window).
    bank_refresh_scratch: Vec<u64>,
    /// System-counter snapshot at the end of warm-up (see type docs).
    snap: Option<Snapshot>,
}

/// System counters at the measurement start (end of global warm-up).
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    clock: u64,
    active_slot_cycles: f64,
    l2_hits: u64,
    l2_misses: u64,
    l2_writebacks: u64,
    refreshes: u64,
    invalidations: u64,
    mem_reads: u64,
    mem_writes: u64,
    n_l: u64,
    intervals_logged: usize,
}

impl Simulator {
    /// Builds a simulator for `profiles[i]` on core `i`. The label names
    /// the workload in reports (a benchmark name or a mix acronym).
    pub fn new(cfg: SystemConfig, profiles: &[BenchmarkProfile], label: &str) -> Self {
        cfg.validate();
        assert_eq!(
            profiles.len(),
            cfg.cores as usize,
            "one benchmark profile per core"
        );
        let mut l2 = SetAssocCache::new(cfg.l2_geometry(), cfg.leader_stride());
        // Only the polyphase refresh family consults per-line retention
        // clocks on demand accesses; skip the bookkeeping otherwise.
        l2.set_retention_tracking(cfg.technique.refresh_policy().is_polyphase());
        let refresh = RefreshEngine::new(cfg.technique.refresh_policy(), cfg.retention, &l2);
        let contention = BankContention::new(cfg.l2_banks, cfg.retention.period_cycles)
            .with_params(2.0, cfg.bank_burst_lines);
        let mem = MainMemory::new(cfg.mem, cfg.retention.period_cycles);
        let controller = cfg
            .technique
            .algo_params()
            .map(|p| EsteemController::new(*p));
        let cores = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // The SRAM L1s have no retention clock to maintain.
                let mut l1 = SetAssocCache::new(cfg.l1_geometry(), None);
                l1.set_retention_tracking(false);
                CoreState::new(i as u32, p, l1, cfg.sim_instructions, cfg.seed)
            })
            .collect();
        let next_window = cfg.retention.period_cycles;
        Self {
            cfg,
            workload_label: label.to_owned(),
            cores,
            l2,
            refresh,
            contention,
            mem,
            controller,
            clock: 0,
            next_window,
            active_slot_cycles: 0.0,
            n_l: 0,
            reconfig_writebacks: 0,
            reconfig_discards: 0,
            bank_refresh_scratch: Vec::new(),
            snap: None,
        }
    }

    fn take_snapshot(&mut self) {
        for c in &mut self.cores {
            c.mark_warmup();
        }
        self.snap = Some(Snapshot {
            clock: self.clock,
            active_slot_cycles: self.active_slot_cycles,
            l2_hits: self.l2.stats.hits,
            l2_misses: self.l2.stats.misses,
            l2_writebacks: self.l2.stats.writebacks,
            refreshes: self.refresh.total_refreshes(),
            invalidations: self.refresh.total_invalidations(),
            mem_reads: self.mem.stats.reads,
            mem_writes: self.mem.stats.writes,
            n_l: self.n_l,
            intervals_logged: self.controller.as_ref().map(|c| c.log.len()).unwrap_or(0),
        });
    }

    /// Convenience: single-core simulator.
    pub fn single(cfg: SystemConfig, profile: &BenchmarkProfile) -> Self {
        let label = profile.name.to_owned();
        Self::new(cfg, std::slice::from_ref(profile), &label)
    }

    /// One shared-L2 access. `now` is the issuing core's local cycle.
    /// Returns the access's total latency (bank wait + L2 latency +, on a
    /// miss, the memory round trip). `full_line_write` marks an L1
    /// write-back: it carries the whole line, so an L2 miss allocates
    /// *without* fetching from memory (write-validate); demand accesses
    /// fetch on miss.
    fn l2_access(&mut self, block: u64, write: bool, full_line_write: bool, now: u64) -> f64 {
        let out = self.l2.access(block, write, now);
        self.refresh.on_access(&out, now);
        let wait = self.contention.access(out.bank);
        let mut lat = f64::from(self.cfg.l2_latency) + wait;
        if !out.hit {
            if !full_line_write {
                lat += self.mem.read();
            }
            if out.writeback.is_some() {
                self.mem.write();
            }
        }
        lat
    }

    /// Executes one instruction bundle on core `i`.
    fn step_core(&mut self, i: usize) {
        // Borrow the core once: the (dominant) L1-hit path never touches
        // the rest of the system, so it stays free of repeated indexing.
        let core = &mut self.cores[i];
        let bundle = core.fetch_bundle();
        let now = core.cycle();
        let l1 = core.l1d.access(bundle.mem.block, bundle.mem.write, now);
        if l1.hit {
            core.note_progress();
            return;
        }
        // Demand fill: the L2 copy stays clean (write-back L1 owns the
        // dirtiness until eviction).
        let lat = self.l2_access(bundle.mem.block, false, false, now);
        let overlap = self.cfg.overlap_cycles;
        self.cores[i].stall(lat, overlap);
        // Evicted dirty L1 line: posted full-line write to the L2.
        if let Some(wb) = l1.writeback {
            let _ = self.l2_access(wb, true, true, now);
        }
        self.cores[i].note_progress();
    }

    /// End-of-quantum housekeeping at time `qend`.
    fn quantum_end(&mut self, qend: u64) {
        self.refresh.advance(&mut self.l2, qend);
        if qend >= self.next_window {
            let mut refr = std::mem::take(&mut self.bank_refresh_scratch);
            self.refresh.drain_bank_refreshes_into(&mut refr);
            self.contention.roll_window(qend, &refr);
            self.bank_refresh_scratch = refr;
            self.mem.roll_window(qend);
            while self.next_window <= qend {
                self.next_window += self.cfg.retention.period_cycles;
            }
        }
        if let Some(ctl) = &mut self.controller {
            if ctl.due(qend) {
                let out = ctl.run_interval(&mut self.l2, qend);
                self.n_l += out.slot_transitions;
                self.reconfig_writebacks += out.writebacks;
                self.reconfig_discards += out.discards;
                // Flushed dirty lines travel to memory.
                for _ in 0..out.writebacks {
                    self.mem.write();
                }
            }
        }
        self.active_slot_cycles += self.l2.active_slots() as f64 * self.cfg.quantum_cycles as f64;
        self.clock = qend;
    }

    /// Runs to completion and produces the report.
    pub fn run(mut self) -> SimReport {
        // In a single-core system the run ends exactly at the instruction
        // target (so technique-independent counters like miss counts are
        // computed over identical instruction streams); in multicore runs
        // early finishers keep executing, per the paper's methodology.
        let single = self.cores.len() == 1;
        while self.cores.iter().any(|c| !c.reached_target()) {
            let qend = self.clock + self.cfg.quantum_cycles;
            // Quantum boundary in fixed-point units: the inner loop is a
            // pure integer compare per instruction bundle.
            let qend_fp = qend << CYCLE_FP_SHIFT;
            for i in 0..self.cores.len() {
                while self.cores[i].cycles_fp < qend_fp {
                    if single && self.cores[i].reached_target() {
                        break;
                    }
                    self.step_core(i);
                }
            }
            self.quantum_end(qend);
            if self.snap.is_none() && qend >= self.cfg.warmup_cycles {
                self.take_snapshot();
            }
        }
        self.finish()
    }

    fn finish(self) -> SimReport {
        // Measured region = everything after the warm-up snapshot.
        let snap = self.snap.unwrap_or_default();
        let cycles = self.clock - snap.clock;
        let seconds = cycles as f64 / self.cfg.clock_hz;
        let total_slots = self.l2.geometry().total_slots() as f64;
        let active_fraction = if cycles > 0 {
            ((self.active_slot_cycles - snap.active_slot_cycles) / (total_slots * cycles as f64))
                .min(1.0)
        } else {
            1.0
        };
        let inputs = EnergyInputs {
            seconds,
            active_fraction,
            l2_hits: self.l2.stats.hits - snap.l2_hits,
            l2_misses: self.l2.stats.misses - snap.l2_misses,
            refreshes: self.refresh.total_refreshes() - snap.refreshes,
            mem_accesses: self.mem.stats.reads - snap.mem_reads + self.mem.stats.writes
                - snap.mem_writes,
            block_transitions: self.n_l - snap.n_l,
        };
        let params = EnergyParams::for_l2_capacity(self.cfg.l2_capacity);
        let energy = EnergyBreakdown::compute(&params, &inputs);
        let per_core = self
            .cores
            .iter()
            .map(|c| CoreReport {
                instructions: c.target_instructions,
                cycles: (c.cycles_at_target.expect("run() completed")
                    - c.cycles_at_warmup.expect("target implies warmed"))
                    as f64
                    / crate::core_model::CYCLE_FP_ONE as f64,
                ipc: c.ipc(),
                l1_hits: c.l1d.stats.hits,
                l1_misses: c.l1d.stats.misses,
            })
            .collect();
        SimReport {
            workload: self.workload_label,
            technique: self.cfg.technique.name().to_owned(),
            cycles,
            per_core,
            inputs,
            energy,
            l2_hits: self.l2.stats.hits - snap.l2_hits,
            l2_misses: self.l2.stats.misses - snap.l2_misses,
            l2_writebacks: self.l2.stats.writebacks - snap.l2_writebacks,
            refreshes: self.refresh.total_refreshes() - snap.refreshes,
            refresh_invalidations: self.refresh.total_invalidations() - snap.invalidations,
            mem_accesses: self.mem.stats.reads - snap.mem_reads + self.mem.stats.writes
                - snap.mem_writes,
            active_ratio: active_fraction,
            intervals: self
                .controller
                .map(|c| c.log[snap.intervals_logged..].to_vec())
                .unwrap_or_default(),
            final_bank_wait: self.contention.mean_wait(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlgoParams, Technique};
    use esteem_workloads::benchmark_by_name;

    /// Small, fast config for tests.
    fn quick(technique: Technique, instrs: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper_single_core(technique);
        cfg.sim_instructions = instrs;
        cfg.warmup_cycles = 200_000;
        cfg
    }

    fn quick_algo() -> AlgoParams {
        // Shorter interval so tiny test runs still reconfigure.
        AlgoParams {
            interval_cycles: 500_000,
            ..AlgoParams::paper_single_core()
        }
    }

    #[test]
    fn baseline_runs_and_reports() {
        let p = benchmark_by_name("gamess").unwrap();
        let r = Simulator::single(quick(Technique::Baseline, 500_000), &p).run();
        assert_eq!(r.per_core.len(), 1);
        assert!(r.per_core[0].ipc > 0.1 && r.per_core[0].ipc < 4.0);
        assert_eq!(r.active_ratio, 1.0, "baseline never reconfigures");
        assert!(r.refreshes > 0, "baseline must refresh");
        assert!(r.energy.total() > 0.0);
        assert!(r.intervals.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let p = benchmark_by_name("gcc").unwrap();
        let a = Simulator::single(quick(Technique::Baseline, 300_000), &p).run();
        let b = Simulator::single(quick(Technique::Baseline, 300_000), &p).run();
        assert_eq!(a, b, "simulation must be bit-deterministic");
    }

    #[test]
    fn esteem_reduces_active_ratio_and_refreshes() {
        let p = benchmark_by_name("gamess").unwrap();
        // Warm-up must cover the shrink-confirmation streak (3 intervals of
        // 500k cycles) so the measured region sees the converged cache.
        let mut base_cfg = quick(Technique::Baseline, 3_000_000);
        base_cfg.warmup_cycles = 2_000_000;
        let mut est_cfg = quick(Technique::Esteem(quick_algo()), 3_000_000);
        est_cfg.warmup_cycles = 2_000_000;
        let base = Simulator::single(base_cfg, &p).run();
        let est = Simulator::single(est_cfg, &p).run();
        assert!(
            est.active_ratio < 0.6,
            "gamess is tiny; ESTEEM should turn most ways off (got {})",
            est.active_ratio
        );
        assert!(
            est.refreshes < base.refreshes / 2,
            "refreshes: esteem {} vs base {}",
            est.refreshes,
            base.refreshes
        );
        assert!(!est.intervals.is_empty());
    }

    #[test]
    fn rpv_refreshes_less_than_baseline() {
        let p = benchmark_by_name("gamess").unwrap();
        let base = Simulator::single(quick(Technique::Baseline, 1_000_000), &p).run();
        let rpv = Simulator::single(quick(Technique::Rpv, 1_000_000), &p).run();
        assert!(rpv.refreshes < base.refreshes);
        assert_eq!(rpv.active_ratio, 1.0, "RPV never turns the cache off");
    }

    #[test]
    fn dual_core_runs_both_to_target() {
        let a = benchmark_by_name("gobmk").unwrap();
        let b = benchmark_by_name("nekbone").unwrap();
        let mut cfg = SystemConfig::paper_dual_core(Technique::Baseline);
        cfg.sim_instructions = 300_000;
        cfg.warmup_cycles = 200_000;
        let r = Simulator::new(cfg, &[a, b], "GkNe").run();
        assert_eq!(r.per_core.len(), 2);
        for c in &r.per_core {
            assert_eq!(c.instructions, 300_000);
            assert!(c.ipc > 0.05);
        }
    }

    #[test]
    fn ecc_refresh_technique_end_to_end() {
        let p = benchmark_by_name("hmmer").unwrap();
        let base = Simulator::single(quick(Technique::Baseline, 600_000), &p).run();
        let ecc = Simulator::single(
            quick(
                Technique::EccRefresh {
                    periods: 4,
                    ecc_bits: 1,
                },
                600_000,
            ),
            &p,
        )
        .run();
        // Refreshing every 4th period cuts refresh volume by roughly 4x
        // (valid-only and scrubs move it a bit further).
        assert!(
            ecc.refreshes < base.refreshes / 2,
            "ecc {} vs base {}",
            ecc.refreshes,
            base.refreshes
        );
        assert_eq!(ecc.active_ratio, 1.0, "ECC refresh never powers off");
    }

    #[test]
    fn energy_inputs_consistent_with_counters() {
        let p = benchmark_by_name("milc").unwrap();
        let r = Simulator::single(quick(Technique::Baseline, 500_000), &p).run();
        assert_eq!(r.inputs.l2_hits, r.l2_hits);
        assert_eq!(r.inputs.l2_misses, r.l2_misses);
        assert_eq!(r.inputs.refreshes, r.refreshes);
        assert_eq!(r.inputs.mem_accesses, r.mem_accesses);
        // Streaming: plenty of misses and memory traffic.
        assert!(r.l2_misses > 1000);
        assert!(r.mem_accesses >= r.l2_misses);
    }
}
