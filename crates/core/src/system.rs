//! The multicore system simulator.

use std::sync::{Arc, Mutex};

use esteem_cache::{AccessOutcome, L1Rec, SetAssocCache};
use esteem_edram::{BankContention, RefreshEngine};
use esteem_energy::{EnergyBreakdown, EnergyInputs, EnergyParams};
use esteem_mem::MainMemory;
use esteem_par::WorkerPool;
use esteem_stats::{
    Counter, IntervalObserver, IntervalSample, StatsReading, StatsRegistry, StatsSource,
    TimeWeighted,
};
use esteem_trace::{prof_span, EventKind, TraceEvent, Tracer};
use esteem_workloads::{BenchmarkProfile, Bundle};

use crate::config::SystemConfig;
use crate::controller::{self, CacheController, IntervalCtx};
use crate::core_model::{CoreState, FrontEnd, CYCLE_FP_SHIFT};
use crate::metrics::SimMetrics;
use crate::report::{CoreReport, SimReport};

/// Deterministic trace-driven multicore simulator.
///
/// Cores advance in fixed-size time quanta (relaxed barrier
/// synchronisation, the approach Sniper itself uses for scalability): each
/// quantum, every core executes until its local clock passes the quantum
/// boundary; then the refresh engine, contention windows, and the cache
/// controller run. The loop ends when every core has reached its
/// instruction target; early finishers keep running so the shared L2 keeps
/// seeing their traffic (paper §6.4 methodology).
///
/// **Controller.** The reconfiguration policy is a boxed
/// [`CacheController`] selected from the technique: ESTEEM's interval
/// engine, the passive [`controller::NullController`] for the
/// baseline/Refrint family, or the static-ways ablation. The quantum loop
/// only knows the trait.
///
/// **Warm-up.** The first `warmup_cycles` stand in for the paper's
/// 10 B-instruction fast-forward: caches fill and the controller
/// converges. At the first quantum boundary past the warm-up the simulator
/// takes one [`StatsReading`] of every component (and marks each core's
/// instruction/cycle position); the final report contains only
/// post-reading deltas, computed by the [`StatsRegistry`].
///
/// **Observation.** An optional [`IntervalObserver`] (attached with
/// [`Simulator::with_observer`]) receives one [`IntervalSample`] per
/// observation interval — the controller's reconfiguration interval when
/// it has one, otherwise one retention period — plus a final partial
/// sample at the end of the run. Observers are read-only taps; attaching
/// one cannot change simulation results.
pub struct Simulator {
    cfg: SystemConfig,
    workload_label: String,
    cores: Vec<CoreState>,
    l2: SetAssocCache,
    refresh: RefreshEngine,
    contention: BankContention,
    mem: MainMemory,
    controller: Box<dyn CacheController>,
    clock: u64,
    next_window: u64,
    /// Exact integral of active slots over time (for the time-averaged
    /// `F_A`): integer cycle-slot accounting, associative by construction.
    active_slot_integral: TimeWeighted,
    /// The paper's `N_L`: line slots that changed power state.
    n_l: Counter,
    reconfig_writebacks: Counter,
    reconfig_discards: Counter,
    /// Reusable buffer for per-bank refresh drains (avoids a Vec
    /// allocation every contention window).
    bank_refresh_scratch: Vec<u64>,
    /// Deferred refresh-scheduler access feed: `(outcome, cycle)` per L2
    /// access this quantum, drained in one batch at the quantum boundary
    /// (only populated when the active policy consults access times —
    /// see [`RefreshEngine::needs_access_feed`]).
    refresh_feed: Vec<(AccessOutcome, u64)>,
    feed_refresh: bool,
    /// Deferred per-bank L2 access counts for this quantum, folded into
    /// the contention tracker in one batch at the quantum boundary. The
    /// modelled wait is constant within a contention window, so deferring
    /// the counting is byte-identical to per-access recording.
    bank_counts: Vec<u64>,
    /// Worker pool for the threaded front-end refill (`--threads N`);
    /// `None` runs refills inline on the simulation thread.
    pool: Option<WorkerPool>,
    /// One hand-off slot per core for refilled front ends.
    front_slots: Vec<Arc<Mutex<Option<FrontEnd>>>>,
    /// Warm-up reading and measured-region delta handling.
    registry: StatsRegistry,
    /// Trace tap (disabled by default; see [`Simulator::with_tracer`]).
    tracer: Tracer,
    /// Wall-clock front-end instrumentation (absent by default; see
    /// [`Simulator::with_metrics`]). Strictly an observation tap.
    metrics: Option<Arc<SimMetrics>>,
    observer: Option<Box<dyn IntervalObserver>>,
    /// Observation cadence in cycles (see type docs).
    obs_period: u64,
    next_obs: u64,
    /// Reading at the previous observation (samples carry deltas).
    last_obs: StatsReading,
    last_obs_cycle: u64,
}

impl Simulator {
    /// Builds a simulator for `profiles[i]` on core `i`. The label names
    /// the workload in reports (a benchmark name or a mix acronym).
    pub fn new(cfg: SystemConfig, profiles: &[BenchmarkProfile], label: &str) -> Self {
        cfg.validate();
        assert_eq!(
            profiles.len(),
            cfg.cores as usize,
            "one benchmark profile per core"
        );
        let mut l2 = SetAssocCache::new(cfg.l2_geometry(), cfg.leader_stride());
        // Only the polyphase refresh family consults per-line retention
        // clocks on demand accesses; skip the bookkeeping otherwise.
        l2.set_retention_tracking(cfg.technique.refresh_policy().is_polyphase());
        let refresh = RefreshEngine::new(cfg.technique.refresh_policy(), cfg.retention, &l2);
        let contention = BankContention::new(cfg.l2_banks, cfg.retention.period_cycles)
            .with_params(2.0, cfg.bank_burst_lines);
        let mem = MainMemory::new(cfg.mem, cfg.retention.period_cycles);
        let controller = controller::for_technique(&cfg.technique);
        let cores: Vec<CoreState> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // The SRAM L1s have no retention clock to maintain.
                let mut l1 = SetAssocCache::new(cfg.l1_geometry(), None);
                l1.set_retention_tracking(false);
                let mut c = CoreState::new(i as u32, p, l1, cfg.sim_instructions, cfg.seed);
                // One front-end refill per quantum covers the whole
                // quantum's bundle consumption.
                c.configure_block(cfg.quantum_cycles);
                c
            })
            .collect();
        let feed_refresh = refresh.needs_access_feed();
        let bank_counts = vec![0u64; cfg.l2_banks as usize];
        let next_window = cfg.retention.period_cycles;
        let obs_period = controller
            .interval_cycles()
            .unwrap_or(cfg.retention.period_cycles);
        Self {
            cfg,
            workload_label: label.to_owned(),
            cores,
            l2,
            refresh,
            contention,
            mem,
            controller,
            clock: 0,
            next_window,
            active_slot_integral: TimeWeighted::new(),
            n_l: Counter::new(),
            reconfig_writebacks: Counter::new(),
            reconfig_discards: Counter::new(),
            bank_refresh_scratch: Vec::new(),
            refresh_feed: Vec::new(),
            feed_refresh,
            bank_counts,
            pool: None,
            front_slots: Vec::new(),
            registry: StatsRegistry::new(),
            tracer: Tracer::off(),
            metrics: None,
            observer: None,
            obs_period,
            next_obs: obs_period,
            last_obs: StatsReading::new(),
            last_obs_cycle: 0,
        }
    }

    /// Convenience: single-core simulator.
    pub fn single(cfg: SystemConfig, profile: &BenchmarkProfile) -> Self {
        let label = profile.name.to_owned();
        Self::new(cfg, std::slice::from_ref(profile), &label)
    }

    /// Spreads the per-quantum front-end refills (workload generation +
    /// L1 batch kernel) over `threads` worker threads (builder style).
    /// Each front end is self-contained core-local state and the merge
    /// happens at a barrier before any core executes, so reports are
    /// byte-identical at any thread count (pinned by a harness test).
    /// `threads <= 1` keeps everything on the simulation thread.
    pub fn with_threads(mut self, threads: usize) -> Self {
        if threads > 1 && self.cores.len() > 1 {
            self.pool = Some(WorkerPool::new(
                threads.min(self.cores.len()),
                self.cores.len(),
            ));
            self.front_slots = self
                .cores
                .iter()
                .map(|_| Arc::new(Mutex::new(None)))
                .collect();
        } else {
            self.pool = None;
            self.front_slots = Vec::new();
        }
        self
    }

    /// Attaches a per-interval observer (builder style). At most one;
    /// later calls replace earlier ones.
    pub fn with_observer(mut self, observer: Box<dyn IntervalObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a trace tap (builder style). The tracer is a cheap clone
    /// of a shared handle; the caller keeps its own to drain/export after
    /// the run. Strictly read-only: attaching a tracer must never change
    /// simulation results (pinned by the golden-report tests).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches wall-clock front-end instrumentation (builder style):
    /// per-core refill time, barrier stall, refill batch sizes and
    /// cross-core imbalance. The caller keeps its own `Arc` to read
    /// distributions during or after the run. Like tracers and
    /// observers this is a strictly read-only tap — wall-clock
    /// measurements never feed back into simulated state, so reports
    /// are byte-identical with or without it. Without metrics the
    /// refill path takes no timestamps at all.
    pub fn with_metrics(mut self, metrics: Arc<SimMetrics>) -> Self {
        assert_eq!(
            metrics.cores(),
            self.cores.len(),
            "SimMetrics must be sized for this simulator's core count"
        );
        self.metrics = Some(metrics);
        self
    }

    /// The controller driving this run (diagnostics).
    pub fn controller_name(&self) -> &'static str {
        self.controller.name()
    }

    /// One full hierarchical reading of every component's statistics.
    /// Pull-based and read-only: nothing on the access hot path, called
    /// only at warm-up/observation/finish boundaries.
    fn sample_stats(&self) -> StatsReading {
        let mut r = StatsReading::new();
        r.scope("sim", |s| s.counter("clock", self.clock));
        r.scope("l2", |s| {
            self.l2.collect(s);
            s.weighted("active_slot_cycles", self.active_slot_integral.integral());
        });
        r.register("refresh", &self.refresh);
        r.register("bank", &self.contention);
        r.register("mem", &self.mem);
        r.scope("reconfig", |s| {
            s.counter("slot_transitions", self.n_l.get());
            s.counter("writebacks", self.reconfig_writebacks.get());
            s.counter("discards", self.reconfig_discards.get());
        });
        r.scope("controller", |s| {
            s.counter("intervals", self.controller.log().len() as u64)
        });
        r.scope("cores", |s| {
            for (i, c) in self.cores.iter().enumerate() {
                s.register(&i.to_string(), c);
            }
        });
        // Wall-clock front-end instrumentation, when attached. Host-time
        // distributions live beside simulated counters in readings but
        // never reach reports (reports extract named simulated paths).
        if let Some(m) = &self.metrics {
            r.register("block", &**m);
        }
        r
    }

    fn take_warmup_reading(&mut self) {
        for c in &mut self.cores {
            c.mark_warmup();
        }
        let reading = self.sample_stats();
        self.registry.mark_warmup(reading);
    }

    /// One shared-L2 access. `now` is the issuing core's local cycle.
    /// Returns the access's total latency (bank wait + L2 latency +, on a
    /// miss, the memory round trip). `full_line_write` marks an L1
    /// write-back: it carries the whole line, so an L2 miss allocates
    /// *without* fetching from memory (write-validate); demand accesses
    /// fetch on miss.
    fn l2_access(&mut self, block: u64, write: bool, full_line_write: bool, now: u64) -> f64 {
        let out = self.l2.access(block, write, now);
        // Refresh-scheduler touches and bank access counts are deferred to
        // a single batch drain at the quantum boundary: nothing reads
        // either before then, and the modelled bank wait is constant
        // within a contention window, so `peek_wait` here returns exactly
        // what the recording `access` call would have.
        if self.feed_refresh {
            self.refresh_feed.push((out, now));
        }
        let wait = self.contention.peek_wait(out.bank);
        self.bank_counts[out.bank as usize] += 1;
        let mut lat = f64::from(self.cfg.l2_latency) + wait;
        if !out.hit {
            if !full_line_write {
                lat += self.mem.read();
            }
            if out.writeback.is_some() {
                self.mem.write();
            }
        }
        lat
    }

    /// Services one L1 miss on core `i` (the core has already charged the
    /// bundle's execution cycles via [`CoreState::run_hits`]).
    fn miss_path(&mut self, i: usize, bundle: &Bundle, l1: L1Rec) {
        let now = self.cores[i].cycle();
        // Demand fill: the L2 copy stays clean (write-back L1 owns the
        // dirtiness until eviction).
        let lat = self.l2_access(bundle.mem.block, false, false, now);
        let overlap = self.cfg.overlap_cycles;
        self.cores[i].stall(lat, overlap);
        // Evicted dirty L1 line: posted full-line write to the L2.
        if l1.has_writeback() {
            let wb = self.cores[i].pop_writeback();
            let _ = self.l2_access(wb, true, true, now);
        }
        self.cores[i].note_progress();
    }

    /// Tops up every core's front end at a quantum start — inline, or
    /// spread over the worker pool with a barrier before any core
    /// executes. Each front end is pure core-local state, so the merge is
    /// deterministic regardless of worker scheduling.
    fn refill_fronts(&mut self) {
        prof_span!(self.tracer, "block.refill");
        let Some(pool) = &self.pool else {
            match &self.metrics {
                None => {
                    for core in &mut self.cores {
                        core.top_up_front();
                    }
                }
                Some(m) => {
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        let t0 = std::time::Instant::now();
                        let bundles = core.top_up_front();
                        if bundles > 0 {
                            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                            m.record_refill(i, us, bundles);
                        }
                    }
                    m.finish_quantum();
                }
            }
            return;
        };
        let mut outstanding = false;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if core.front_needs_top_up() {
                let mut fe = core.take_front();
                let slot = Arc::clone(&self.front_slots[i]);
                let metrics = self.metrics.clone();
                pool.submit(Box::new(move || {
                    match metrics {
                        None => {
                            fe.top_up();
                        }
                        Some(m) => {
                            let t0 = std::time::Instant::now();
                            let bundles = fe.top_up();
                            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                            m.record_refill(i, us, bundles);
                        }
                    }
                    *slot.lock().expect("front slot poisoned") = Some(fe);
                }))
                .expect("refill pool rejected a job");
                outstanding = true;
            }
        }
        if outstanding {
            prof_span!(self.tracer, "block.barrier");
            let stall_t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
            pool.wait_idle();
            if let (Some(m), Some(t0)) = (&self.metrics, stall_t0) {
                m.record_barrier_stall(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                m.finish_quantum();
            }
            assert_eq!(pool.panics(), 0, "front-end refill worker panicked");
            for (i, core) in self.cores.iter_mut().enumerate() {
                if let Some(fe) = self.front_slots[i]
                    .lock()
                    .expect("front slot poisoned")
                    .take()
                {
                    core.put_front(fe);
                }
            }
        }
    }

    /// Whether interval samples need to be computed — for an attached
    /// observer, a tracer recording interval events, or both.
    fn observing(&self) -> bool {
        self.observer.is_some() || self.tracer.enabled(EventKind::Interval)
    }

    /// Flushes the quantum's deferred access feeds into the refresh
    /// scheduler and contention tracker — must run before anything reads
    /// either (refresh advance, window roll, controller).
    fn drain_access_feeds(&mut self) {
        if !self.refresh_feed.is_empty() {
            prof_span!(self.tracer, "refresh.batch_drain");
            self.refresh.on_access_batch(&self.refresh_feed);
            self.refresh_feed.clear();
        }
        self.contention.record_accesses(&self.bank_counts);
        self.bank_counts.fill(0);
    }

    /// End-of-quantum housekeeping at time `qend`.
    fn quantum_end(&mut self, qend: u64) {
        self.drain_access_feeds();
        let refreshed = self.refresh.advance(&mut self.l2, qend);
        if refreshed.refreshes > 0 || refreshed.invalidations > 0 {
            self.tracer
                .emit(EventKind::Refresh, || TraceEvent::RefreshBatch {
                    cycle: qend,
                    refreshes: refreshed.refreshes,
                    invalidations: refreshed.invalidations,
                    pending: self.refresh.queued_lines(),
                });
        }
        if qend >= self.next_window {
            prof_span!(self.tracer, "refresh.window");
            let mut refr = std::mem::take(&mut self.bank_refresh_scratch);
            self.refresh.drain_bank_refreshes_into(&mut refr);
            self.contention.roll_window(qend, &refr);
            self.tracer
                .emit(EventKind::Bank, || TraceEvent::BankWindow {
                    cycle: qend,
                    refreshes: refr.iter().sum(),
                    mean_wait: self.contention.mean_wait(),
                    utilization: self.contention.mean_utilization(),
                });
            self.bank_refresh_scratch = refr;
            self.mem.roll_window(qend);
            while self.next_window <= qend {
                self.next_window += self.cfg.retention.period_cycles;
            }
        }
        if self.controller.due(qend) {
            prof_span!(self.tracer, "controller.interval");
            let act = self.controller.on_interval(IntervalCtx {
                l2: &mut self.l2,
                now: qend,
                tracer: &self.tracer,
            });
            self.n_l.add(act.slot_transitions);
            self.reconfig_writebacks.add(act.writebacks);
            self.reconfig_discards.add(act.discards);
            // Flushed dirty lines travel to memory.
            for _ in 0..act.writebacks {
                self.mem.write();
            }
        }
        #[cfg(feature = "strict-invariants")]
        let integral_before = self.active_slot_integral.integral();
        self.active_slot_integral
            .accumulate(self.l2.active_slots(), self.cfg.quantum_cycles);
        #[cfg(feature = "strict-invariants")]
        {
            assert!(
                self.l2.active_slots() <= self.l2.geometry().total_slots(),
                "active slots exceed the cache's slot count"
            );
            // Cycle-slot integral monotonicity: the integral grows by
            // exactly `active_slots * quantum` every quantum — no drift,
            // no overflow wrap.
            assert_eq!(
                self.active_slot_integral.integral(),
                integral_before
                    + u128::from(self.l2.active_slots()) * u128::from(self.cfg.quantum_cycles),
                "cycle-slot integral drift"
            );
        }
        self.clock = qend;
        if self.observing() && qend >= self.next_obs {
            self.emit_observation(qend);
            while self.next_obs <= qend {
                self.next_obs += self.obs_period;
            }
        }
    }

    /// Emits one [`IntervalSample`] covering `(last_obs_cycle, now]` to
    /// the observer (if any) and the trace tap (if recording intervals).
    fn emit_observation(&mut self, now: u64) {
        let current = self.sample_stats();
        let d = current.delta_since(&self.last_obs);
        let instructions = (0..self.cores.len())
            .map(|i| d.counter(&format!("cores/{i}/instructions")))
            .sum();
        let sample = IntervalSample {
            cycle: now,
            span_cycles: now - self.last_obs_cycle,
            ways: self.l2.module_ways().to_vec(),
            active_fraction: self.l2.active_fraction(),
            l2_hits: d.counter("l2/hits"),
            l2_misses: d.counter("l2/misses"),
            l2_writebacks: d.counter("l2/writebacks"),
            refreshes: d.counter("refresh/refreshes"),
            invalidations: d.counter("refresh/invalidations"),
            mem_reads: d.counter("mem/reads"),
            mem_writes: d.counter("mem/writes"),
            slot_transitions: d.counter("reconfig/slot_transitions"),
            instructions,
        };
        self.tracer
            .emit(EventKind::Interval, || TraceEvent::Interval {
                cycle: sample.cycle,
                span_cycles: sample.span_cycles,
                active_fraction: sample.active_fraction,
                l2_hits: sample.l2_hits,
                l2_misses: sample.l2_misses,
                refreshes: sample.refreshes,
                invalidations: sample.invalidations,
                mem_reads: sample.mem_reads,
                mem_writes: sample.mem_writes,
                slot_transitions: sample.slot_transitions,
                instructions: sample.instructions,
            });
        if let Some(obs) = self.observer.as_mut() {
            obs.on_interval(&sample);
        }
        self.last_obs = current;
        self.last_obs_cycle = now;
    }

    /// Runs to completion and produces the report.
    pub fn run(mut self) -> SimReport {
        prof_span!(self.tracer, "sim.run");
        // In a single-core system the run ends exactly at the instruction
        // target (so technique-independent counters like miss counts are
        // computed over identical instruction streams); in multicore runs
        // early finishers keep executing, per the paper's methodology.
        let single = self.cores.len() == 1;
        while self.cores.iter().any(|c| !c.reached_target()) {
            // Refill every front end up front: the reserve bounds one
            // quantum's consumption, so cores never refill mid-quantum —
            // which is what lets the refills run on worker threads with a
            // single barrier and still merge deterministically.
            self.refill_fronts();
            let qend = self.clock + self.cfg.quantum_cycles;
            // Quantum boundary in fixed-point units: the inner loop is a
            // pure integer compare per instruction bundle.
            let qend_fp = qend << CYCLE_FP_SHIFT;
            for i in 0..self.cores.len() {
                while let Some((bundle, l1)) = self.cores[i].run_hits(qend_fp, single) {
                    self.miss_path(i, &bundle, l1);
                }
            }
            self.quantum_end(qend);
            if !self.registry.warmed() && qend >= self.cfg.warmup_cycles {
                self.take_warmup_reading();
            }
        }
        self.finish()
    }

    fn finish(mut self) -> SimReport {
        if self.observing() {
            // Close the tail: a final partial sample unless the run ended
            // exactly on an observation boundary.
            if self.clock > self.last_obs_cycle {
                self.emit_observation(self.clock);
            }
            if let Some(obs) = self.observer.as_mut() {
                obs.flush().expect("interval-log write failed");
            }
        }
        // Measured region = everything after the warm-up reading.
        let warm = self.registry.warmup_reading();
        let m = self.sample_stats().delta_since(&warm);
        let cycles = m.counter("sim/clock");
        let seconds = cycles as f64 / self.cfg.clock_hz;
        let total_slots = self.l2.geometry().total_slots() as f64;
        let active_fraction = if cycles > 0 {
            // The integral delta is an exact integer below 2^53 for any
            // realistic run, so this divides the same quantity the old
            // f64 accumulator carried — bit-identical results.
            (m.weighted("l2/active_slot_cycles") as f64 / (total_slots * cycles as f64)).min(1.0)
        } else {
            1.0
        };
        let inputs = EnergyInputs {
            seconds,
            active_fraction,
            l2_hits: m.counter("l2/hits"),
            l2_misses: m.counter("l2/misses"),
            refreshes: m.counter("refresh/refreshes"),
            mem_accesses: m.counter("mem/reads") + m.counter("mem/writes"),
            block_transitions: m.counter("reconfig/slot_transitions"),
        };
        let params = EnergyParams::for_l2_capacity(self.cfg.l2_capacity);
        let energy = EnergyBreakdown::compute(&params, &inputs);
        let per_core = self
            .cores
            .iter()
            .map(|c| CoreReport {
                instructions: c.target_instructions,
                cycles: (c.cycles_at_target.expect("run() completed")
                    - c.cycles_at_warmup.expect("target implies warmed"))
                    as f64
                    / crate::core_model::CYCLE_FP_ONE as f64,
                ipc: c.ipc(),
                l1_hits: c.l1d().stats.hits,
                l1_misses: c.l1d().stats.misses,
            })
            .collect();
        let intervals_logged = warm.counter("controller/intervals") as usize;
        SimReport {
            workload: self.workload_label,
            technique: self.cfg.technique.name().to_owned(),
            cycles,
            per_core,
            inputs,
            energy,
            l2_hits: m.counter("l2/hits"),
            l2_misses: m.counter("l2/misses"),
            l2_writebacks: m.counter("l2/writebacks"),
            refreshes: m.counter("refresh/refreshes"),
            refresh_invalidations: m.counter("refresh/invalidations"),
            mem_accesses: m.counter("mem/reads") + m.counter("mem/writes"),
            active_ratio: active_fraction,
            intervals: self.controller.log()[intervals_logged..].to_vec(),
            final_bank_wait: self.contention.mean_wait(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AlgoParams, Technique};
    use esteem_stats::observer::VecSink;
    use esteem_workloads::benchmark_by_name;

    /// Small, fast config for tests.
    fn quick(technique: Technique, instrs: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper_single_core(technique);
        cfg.sim_instructions = instrs;
        cfg.warmup_cycles = 200_000;
        cfg
    }

    fn quick_algo() -> AlgoParams {
        // Shorter interval so tiny test runs still reconfigure.
        AlgoParams {
            interval_cycles: 500_000,
            ..AlgoParams::paper_single_core()
        }
    }

    #[test]
    fn baseline_runs_and_reports() {
        let p = benchmark_by_name("gamess").unwrap();
        let r = Simulator::single(quick(Technique::Baseline, 500_000), &p).run();
        assert_eq!(r.per_core.len(), 1);
        assert!(r.per_core[0].ipc > 0.1 && r.per_core[0].ipc < 4.0);
        assert_eq!(r.active_ratio, 1.0, "baseline never reconfigures");
        assert!(r.refreshes > 0, "baseline must refresh");
        assert!(r.energy.total() > 0.0);
        assert!(r.intervals.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let p = benchmark_by_name("gcc").unwrap();
        let a = Simulator::single(quick(Technique::Baseline, 300_000), &p).run();
        let b = Simulator::single(quick(Technique::Baseline, 300_000), &p).run();
        assert_eq!(a, b, "simulation must be bit-deterministic");
    }

    #[test]
    fn esteem_reduces_active_ratio_and_refreshes() {
        let p = benchmark_by_name("gamess").unwrap();
        // Warm-up must cover the shrink-confirmation streak (3 intervals of
        // 500k cycles) so the measured region sees the converged cache.
        let mut base_cfg = quick(Technique::Baseline, 3_000_000);
        base_cfg.warmup_cycles = 2_000_000;
        let mut est_cfg = quick(Technique::Esteem(quick_algo()), 3_000_000);
        est_cfg.warmup_cycles = 2_000_000;
        let base = Simulator::single(base_cfg, &p).run();
        let est = Simulator::single(est_cfg, &p).run();
        assert!(
            est.active_ratio < 0.6,
            "gamess is tiny; ESTEEM should turn most ways off (got {})",
            est.active_ratio
        );
        assert!(
            est.refreshes < base.refreshes / 2,
            "refreshes: esteem {} vs base {}",
            est.refreshes,
            base.refreshes
        );
        assert!(!est.intervals.is_empty());
    }

    #[test]
    fn rpv_refreshes_less_than_baseline() {
        let p = benchmark_by_name("gamess").unwrap();
        let base = Simulator::single(quick(Technique::Baseline, 1_000_000), &p).run();
        let rpv = Simulator::single(quick(Technique::Rpv, 1_000_000), &p).run();
        assert!(rpv.refreshes < base.refreshes);
        assert_eq!(rpv.active_ratio, 1.0, "RPV never turns the cache off");
    }

    #[test]
    fn dual_core_runs_both_to_target() {
        let a = benchmark_by_name("gobmk").unwrap();
        let b = benchmark_by_name("nekbone").unwrap();
        let mut cfg = SystemConfig::paper_dual_core(Technique::Baseline);
        cfg.sim_instructions = 300_000;
        cfg.warmup_cycles = 200_000;
        let r = Simulator::new(cfg, &[a, b], "GkNe").run();
        assert_eq!(r.per_core.len(), 2);
        for c in &r.per_core {
            assert_eq!(c.instructions, 300_000);
            assert!(c.ipc > 0.05);
        }
    }

    #[test]
    fn ecc_refresh_technique_end_to_end() {
        let p = benchmark_by_name("hmmer").unwrap();
        let base = Simulator::single(quick(Technique::Baseline, 600_000), &p).run();
        let ecc = Simulator::single(
            quick(
                Technique::EccRefresh {
                    periods: 4,
                    ecc_bits: 1,
                },
                600_000,
            ),
            &p,
        )
        .run();
        // Refreshing every 4th period cuts refresh volume by roughly 4x
        // (valid-only and scrubs move it a bit further).
        assert!(
            ecc.refreshes < base.refreshes / 2,
            "ecc {} vs base {}",
            ecc.refreshes,
            base.refreshes
        );
        assert_eq!(ecc.active_ratio, 1.0, "ECC refresh never powers off");
    }

    #[test]
    fn energy_inputs_consistent_with_counters() {
        let p = benchmark_by_name("milc").unwrap();
        let r = Simulator::single(quick(Technique::Baseline, 500_000), &p).run();
        assert_eq!(r.inputs.l2_hits, r.l2_hits);
        assert_eq!(r.inputs.l2_misses, r.l2_misses);
        assert_eq!(r.inputs.refreshes, r.refreshes);
        assert_eq!(r.inputs.mem_accesses, r.mem_accesses);
        // Streaming: plenty of misses and memory traffic.
        assert!(r.l2_misses > 1000);
        assert!(r.mem_accesses >= r.l2_misses);
    }

    #[test]
    fn static_ways_technique_end_to_end() {
        let p = benchmark_by_name("gamess").unwrap();
        let base = Simulator::single(quick(Technique::Baseline, 600_000), &p).run();
        let stat = Simulator::single(quick(Technique::StaticWays { ways: 4 }, 600_000), &p).run();
        // 4 of 16 ways powered: F_A converges to 0.25 (warm-up covers the
        // single reconfiguration, so the measured region is all post-shrink).
        assert!(
            (stat.active_ratio - 0.25).abs() < 1e-9,
            "active ratio {}",
            stat.active_ratio
        );
        assert!(stat.refreshes < base.refreshes / 2);
        assert!(
            stat.intervals.is_empty(),
            "the one-shot shrink happens during warm-up"
        );
        assert_eq!(stat.technique, "static-ways");
    }

    #[test]
    fn metrics_tap_records_and_does_not_perturb() {
        use crate::metrics::SimMetrics;
        let p1 = benchmark_by_name("gamess").unwrap();
        let p2 = benchmark_by_name("milc").unwrap();
        let mut cfg = SystemConfig::paper_dual_core(Technique::Baseline);
        cfg.sim_instructions = 400_000;
        cfg.warmup_cycles = 200_000;
        let profiles = [p1, p2];
        let plain = Simulator::new(cfg.clone(), &profiles, "mix").run();

        // Inline (single-threaded) refill with metrics attached.
        let m = std::sync::Arc::new(SimMetrics::new(2));
        let inst = Simulator::new(cfg.clone(), &profiles, "mix")
            .with_metrics(std::sync::Arc::clone(&m))
            .run();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&inst).unwrap(),
            "metrics must be a read-only tap"
        );
        assert!(m.refill_us(0).count() > 0, "core 0 refills timed");
        assert!(m.refill_us(1).count() > 0, "core 1 refills timed");
        assert!(m.refill_bundles().count() > 0);
        assert!(
            m.refill_bundles().quantile(0.5) > 0,
            "refills generate bundles"
        );
        assert_eq!(m.barrier_stall_us().count(), 0, "no barrier inline");

        // Threaded refill: barrier stalls recorded, report unchanged.
        let mt = std::sync::Arc::new(SimMetrics::new(2));
        let threaded = Simulator::new(cfg, &profiles, "mix")
            .with_threads(2)
            .with_metrics(std::sync::Arc::clone(&mt))
            .run();
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&threaded).unwrap(),
            "threaded metrics must be a read-only tap"
        );
        assert!(mt.barrier_stall_us().count() > 0, "barrier stalls timed");
        assert!(mt.refill_us(0).count() > 0);
    }

    /// A sink wrapper sharing collected samples with the test through an
    /// `Arc<Mutex<..>>` (the simulator consumes the box it is given).
    struct SharedSink(std::sync::Arc<std::sync::Mutex<VecSink>>);

    impl IntervalObserver for SharedSink {
        fn on_interval(&mut self, sample: &IntervalSample) {
            self.0.lock().unwrap().on_interval(sample);
        }
    }

    #[test]
    fn observer_streams_interval_samples() {
        let p = benchmark_by_name("gamess").unwrap();
        let shared = std::sync::Arc::new(std::sync::Mutex::new(VecSink::new()));
        let cfg = quick(Technique::Esteem(quick_algo()), 1_500_000);
        let r = Simulator::single(cfg, &p)
            .with_observer(Box::new(SharedSink(shared.clone())))
            .run();
        let samples = std::mem::take(&mut shared.lock().unwrap().samples);
        assert!(samples.len() >= 3, "got {} samples", samples.len());
        // Cadence: ESTEEM's interval (500k), plus a final partial sample.
        for s in &samples[..samples.len() - 1] {
            assert_eq!(s.span_cycles, 500_000);
            assert_eq!(s.cycle % 500_000, 0);
            assert_eq!(s.ways.len(), 8, "one way count per module");
        }
        assert!(samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
        // Deltas must add up to lifetime totals: compare the summed
        // refresh deltas with the engine's lifetime counter via the
        // measured report plus its warm-up share.
        let total_refreshes: u64 = samples.iter().map(|s| s.refreshes).sum();
        assert!(total_refreshes >= r.refreshes);
        let total_instrs: u64 = samples.iter().map(|s| s.instructions).sum();
        assert!(total_instrs >= 1_500_000);
    }

    #[test]
    fn observer_does_not_perturb_results() {
        let p = benchmark_by_name("gcc").unwrap();
        let plain = Simulator::single(quick(Technique::Esteem(quick_algo()), 400_000), &p).run();
        let shared = std::sync::Arc::new(std::sync::Mutex::new(VecSink::new()));
        let observed = Simulator::single(quick(Technique::Esteem(quick_algo()), 400_000), &p)
            .with_observer(Box::new(SharedSink(shared)))
            .run();
        assert_eq!(plain, observed, "observer must be a read-only tap");
    }

    #[test]
    fn tracer_is_read_only_tap_and_captures_events() {
        use esteem_trace::{EventKind, TraceFilter, Tracer};
        let p = benchmark_by_name("gamess").unwrap();
        let plain = Simulator::single(quick(Technique::Esteem(quick_algo()), 1_500_000), &p).run();
        let tracer = Tracer::ring(1 << 16, TraceFilter::all());
        let traced = Simulator::single(quick(Technique::Esteem(quick_algo()), 1_500_000), &p)
            .with_tracer(tracer.clone())
            .run();
        assert_eq!(plain, traced, "tracer must be a read-only tap");
        let evs = tracer.drain();
        let count = |k: EventKind| evs.iter().filter(|e| e.kind() == k).count();
        // >= 2 ESTEEM intervals of 500k cycles in 1.5M+ cycles, each
        // producing 8 module decisions + 1 apply.
        assert!(count(EventKind::Reconfig) >= 18, "{evs:?}");
        assert!(count(EventKind::Refresh) > 0);
        assert!(count(EventKind::Bank) > 0);
        assert!(count(EventKind::Interval) >= 3);
        // Cycle stamps are monotone within each kind.
        for k in [EventKind::Refresh, EventKind::Bank, EventKind::Interval] {
            let cycles: Vec<u64> = evs
                .iter()
                .filter(|e| e.kind() == k)
                .filter_map(|e| e.cycle())
                .collect();
            assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "{k:?} not sorted");
        }
    }

    #[test]
    fn trace_filter_limits_recorded_kinds() {
        use esteem_trace::{EventKind, TraceFilter, Tracer};
        let p = benchmark_by_name("gamess").unwrap();
        let tracer = Tracer::ring(1 << 16, TraceFilter::none().with(EventKind::Reconfig));
        Simulator::single(quick(Technique::Esteem(quick_algo()), 1_000_000), &p)
            .with_tracer(tracer.clone())
            .run();
        let evs = tracer.drain();
        assert!(!evs.is_empty());
        assert!(evs.iter().all(|e| e.kind() == EventKind::Reconfig));
    }

    #[test]
    fn observer_cadence_falls_back_to_retention_period() {
        let p = benchmark_by_name("gamess").unwrap();
        let shared = std::sync::Arc::new(std::sync::Mutex::new(VecSink::new()));
        Simulator::single(quick(Technique::Baseline, 400_000), &p)
            .with_observer(Box::new(SharedSink(shared.clone())))
            .run();
        let samples = std::mem::take(&mut shared.lock().unwrap().samples);
        assert!(!samples.is_empty());
        // Retention period is 100k cycles (50us at 2 GHz).
        assert_eq!(samples[0].cycle, 100_000);
        assert_eq!(samples[0].ways, vec![16], "baseline: one full module");
        assert!((samples[0].active_fraction - 1.0).abs() < 1e-12);
    }
}
