//! ESTEEM — the paper's contribution — and the system simulator that
//! evaluates it.
//!
//! This crate ties the substrates together into the evaluated system
//! (paper §6.1): per-core private L1s, a shared banked eDRAM L2 with a
//! refresh engine and a bank-contention timing model, a bandwidth-limited
//! main memory, and synthetic workload streams. On top of that it
//! implements:
//!
//! * [`esteem::algorithm1`] — the paper's Algorithm 1 (per-module
//!   alpha-coverage way selection with the non-LRU anomaly guard);
//! * [`controller::CacheController`] — the pluggable reconfiguration-policy
//!   trait the quantum loop drives: ESTEEM's interval engine, the passive
//!   [`controller::NullController`] behind the baseline/Refrint
//!   comparators, and the [`controller::StaticWaysController`] ablation;
//! * [`esteem::EsteemController`] — the interval engine: every
//!   `interval_cycles` it reads the ATD counters, runs Algorithm 1, applies
//!   the per-module way masks (flushing turned-off ways), and logs the
//!   decision (the data behind Figure 2);
//! * [`system::Simulator`] — the deterministic quantum-interleaved
//!   multicore simulation loop, with component statistics pulled into an
//!   `esteem-stats` registry at warm-up/interval/finish boundaries and an
//!   optional per-interval JSONL observer;
//! * [`runner`] — paired baseline-vs-technique runs producing the paper's
//!   §6.4 metrics (energy saving %, weighted/fair speedup, RPKI decrease,
//!   MPKI increase, active ratio).
//!
//! Timing model (DESIGN.md §3, substitution 2): cores retire instruction
//! *bundles* at `cpi_base`; an L1 miss stalls the core for the visible part
//! of the L2 (and, on an L2 miss, main-memory) latency, divided by the
//! benchmark's memory-level parallelism. Refresh interference reaches the
//! core through the L2 bank-contention wait. L1 hits are folded into
//! `cpi_base` (the 2-cycle L1 is pipelined), and the instruction stream is
//! modelled as always hitting the L1I.

pub mod config;
pub mod controller;
pub mod core_model;
pub mod esteem;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod system;

pub use config::{AlgoParams, SystemConfig, Technique};
pub use controller::{
    CacheController, ControllerAction, IntervalCtx, NullController, StaticWaysController,
};
pub use esteem::EsteemController;
pub use metrics::SimMetrics;
pub use report::{CoreReport, IntervalRecord, SimReport};
pub use runner::{run_comparison, Comparison};
pub use system::Simulator;
