//! Per-core execution state and cycle accounting.

use esteem_cache::{L1Rec, SetAssocCache};
use esteem_workloads::{AccessStream, BenchmarkProfile, Bundle, MemRef};

/// Fixed-point shift for per-core cycle accounting: cycles are tracked
/// as `u64` in units of 2^-20 cycles (~1e-6 cycle resolution, headroom
/// to 2^44 cycles ≈ 4.8 hours at 1 GHz). Integer accounting keeps the
/// per-instruction inner loop free of f64 compares and makes cycle
/// arithmetic exactly associative (bit-deterministic regardless of
/// accumulation order).
pub const CYCLE_FP_SHIFT: u32 = 20;

/// One cycle in fixed-point units.
pub const CYCLE_FP_ONE: u64 = 1 << CYCLE_FP_SHIFT;

/// One core: its workload stream, private L1D, and local clock.
///
/// The timing model (DESIGN.md §3 substitution 2): a bundle of `n`
/// instructions costs `n * cpi_base` cycles of execution; if its memory
/// reference misses the L1, the core additionally stalls for the *visible*
/// part of the L2/memory round trip:
/// `max(0, latency - overlap) / mlp`, where `overlap` models the OOO
/// window hiding short latencies and `mlp` the benchmark's memory-level
/// parallelism. L1 hits are free (the 2-cycle pipelined L1 is part of
/// `cpi_base`).
#[derive(Debug, Clone)]
pub struct CoreState {
    pub id: u32,
    /// Workload stream + private L1D + prefetched access block. Wrapped in
    /// an `Option` only so the simulator can move it onto a worker thread
    /// for the refill barrier; it is `Some` at every observation point.
    front: Option<FrontEnd>,
    /// Local clock in fixed-point units of 2^-20 cycles
    /// (see [`CYCLE_FP_SHIFT`]).
    pub cycles_fp: u64,
    /// Instructions retired (including warm-up).
    pub instructions: u64,
    /// Instruction count when warm-up ended (set by the simulator).
    pub instrs_at_warmup: Option<u64>,
    /// Fixed-point cycle count when warm-up ended (set by the simulator).
    pub cycles_at_warmup: Option<u64>,
    /// *Measured* instructions after warm-up at which IPC is recorded.
    pub target_instructions: u64,
    /// Fixed-point cycle count when the target was reached (`None` until
    /// then).
    pub cycles_at_target: Option<u64>,
    /// `cpi_base` in fixed-point cycle units per instruction.
    cpi_fp: u64,
    /// Fixed-point units per visible stall cycle: `2^20 / mlp`.
    fp_per_stall_cycle: f64,
}

/// The core's front end: workload stream, private L1D, and a block of
/// *prefetched* bundles already run through the L1 batch kernel.
///
/// The simulator consumes `(bundle, l1_rec)` pairs one at a time via
/// [`CoreState::next_access`]; when the buffer runs low,
/// [`FrontEnd::top_up`] generates the next block of bundles and pushes
/// their memory references through
/// [`SetAssocCache::access_batch_l1`] — the compact single-module
/// specialisation of [`SetAssocCache::access_batch`] — in one call.
/// Because the L1 has no retention clock and its lifetime stats are
/// applied at *consume* time ([`SetAssocCache::apply_rec_stats`]),
/// running the L1 ahead of the core's clock is unobservable — every
/// externally visible number is identical to the one-access-at-a-time
/// path (pinned by the golden-report and determinism tests).
///
/// The front end is self-contained (stream RNG + L1 state + buffers), so
/// the simulator can `take` it onto a worker thread for the refill and
/// merge it back at the barrier with bit-identical results at any thread
/// count.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    stream: AccessStream,
    l1d: SetAssocCache,
    /// Prefetched bundles in struct-of-arrays form, 13 bytes per bundle:
    /// the packed `(block, write)` encoding the kernel consumes, the
    /// instruction count, and the byte-sized L1 outcome. Keeping the
    /// buffers this small is what keeps a refill pass CPU-cache-resident
    /// next to the simulator's L2 model.
    enc: Vec<u64>,
    instrs: Vec<u32>,
    recs: Vec<L1Rec>,
    /// Dirty-eviction block addresses, in access order (rare, so they ride
    /// in a side vector instead of widening every record).
    wbs: Vec<u64>,
    wb_cursor: usize,
    /// Next unconsumed index.
    cursor: usize,
    /// Buffered-bundle level that triggers a refill at a quantum start
    /// (sized to cover a typical quantum; an atypical one falls back to an
    /// inline [`FrontEnd::top_up`] with identical content).
    reserve: usize,
    /// Buffer size to generate up to when topping up.
    target: usize,
}

impl FrontEnd {
    fn new(stream: AccessStream, l1d: SetAssocCache) -> Self {
        assert!(
            l1d.supports_l1_batch(),
            "core L1s must qualify for the compact batch kernel"
        );
        Self {
            stream,
            l1d,
            enc: Vec::new(),
            instrs: Vec::new(),
            recs: Vec::new(),
            wbs: Vec::new(),
            wb_cursor: 0,
            cursor: 0,
            reserve: 1,
            target: 256,
        }
    }

    #[inline]
    fn buffered(&self) -> usize {
        self.enc.len() - self.cursor
    }

    /// Refills the prefetch buffer to `target` bundles if fewer than
    /// `reserve` remain: drains the consumed prefix, generates fresh
    /// bundles, and runs their memory references through the L1 batch
    /// kernel in one call. Returns the number of fresh bundles
    /// generated (0 when the buffer still held its reserve) — the
    /// refill batch size the instrumentation layer reports.
    pub fn top_up(&mut self) -> usize {
        if self.buffered() >= self.reserve {
            return 0;
        }
        if self.cursor > 0 {
            self.enc.drain(..self.cursor);
            self.instrs.drain(..self.cursor);
            self.recs.drain(..self.cursor);
            self.wbs.drain(..self.wb_cursor);
            self.cursor = 0;
            self.wb_cursor = 0;
        }
        let fresh = self.enc.len();
        self.stream
            .fill_encoded(&mut self.enc, &mut self.instrs, self.target);
        self.l1d
            .access_batch_l1(&self.enc[fresh..], &mut self.recs, &mut self.wbs);
        debug_assert_eq!(self.enc.len(), self.recs.len());
        self.enc.len() - fresh
    }
}

impl CoreState {
    pub fn new(
        id: u32,
        profile: &BenchmarkProfile,
        l1d: SetAssocCache,
        target_instructions: u64,
        seed: u64,
    ) -> Self {
        Self {
            id,
            front: Some(FrontEnd::new(AccessStream::new(profile, id, seed), l1d)),
            cycles_fp: 0,
            instructions: 0,
            instrs_at_warmup: None,
            cycles_at_warmup: None,
            target_instructions,
            cycles_at_target: None,
            cpi_fp: (profile.cpi_base * CYCLE_FP_ONE as f64).round() as u64,
            fp_per_stall_cycle: CYCLE_FP_ONE as f64 / profile.mlp,
        }
    }

    /// Local clock in whole cycles (what the cache/refresh models see).
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycles_fp >> CYCLE_FP_SHIFT
    }

    /// Local clock in (fractional) cycles, for reporting.
    #[inline]
    pub fn cycles_f64(&self) -> f64 {
        self.cycles_fp as f64 / CYCLE_FP_ONE as f64
    }

    /// Marks the end of this core's warm-up (called once by the simulator
    /// when the global warm-up cycle count passes).
    pub fn mark_warmup(&mut self) {
        debug_assert!(self.cycles_at_warmup.is_none());
        self.instrs_at_warmup = Some(self.instructions);
        self.cycles_at_warmup = Some(self.cycles_fp);
    }

    /// Whether this core has finished its warm-up region.
    pub fn warmed(&self) -> bool {
        self.cycles_at_warmup.is_some()
    }

    /// Whether this core has reached its measurement target. (It keeps
    /// running afterwards in multicore runs, to keep exerting realistic
    /// pressure on the shared L2 — the paper's methodology, §6.4.)
    pub fn reached_target(&self) -> bool {
        self.cycles_at_target.is_some()
    }

    /// Pulls the next bundle *directly from the stream* (bypassing the
    /// prefetch buffer) and charges its execution cycles; the memory
    /// reference is returned for the caller to route through the
    /// hierarchy. Call [`Self::stall`] with the resulting visible latency.
    ///
    /// Unit-test path: do not mix with [`Self::next_access`] — the
    /// simulator drives cores exclusively through the batched front end.
    #[inline]
    pub fn fetch_bundle(&mut self) -> Bundle {
        let b = self
            .front
            .as_mut()
            .expect("front-end present")
            .stream
            .next_bundle();
        self.cycles_fp += u64::from(b.instrs) * self.cpi_fp;
        self.instructions += u64::from(b.instrs);
        b
    }

    /// Pops the next prefetched `(bundle, L1 rec)` pair, charging the
    /// bundle's execution cycles and folding the rec into the L1's
    /// lifetime stats (stats are deferred to consume time so prefetching
    /// ahead of the core's clock never shows up in any counter).
    #[inline]
    pub fn next_access(&mut self) -> (Bundle, L1Rec) {
        let fe = self.front.as_mut().expect("front-end present");
        if fe.cursor >= fe.enc.len() {
            // The quantum outran the buffered reserve (or the caller
            // skipped [`Self::configure_block`]): refill inline. The batch
            // is pure core-local state, so the content is identical no
            // matter where the refill happens.
            fe.top_up();
        }
        let enc = fe.enc[fe.cursor];
        let instrs = fe.instrs[fe.cursor];
        let r = fe.recs[fe.cursor];
        fe.cursor += 1;
        let write = enc & 1 != 0;
        fe.l1d.apply_rec_stats(r, write);
        self.cycles_fp += u64::from(instrs) * self.cpi_fp;
        self.instructions += u64::from(instrs);
        (
            Bundle {
                instrs,
                mem: MemRef {
                    block: enc >> 1,
                    write,
                },
            },
            r,
        )
    }

    /// Consumes prefetched bundles until the quantum boundary `qend_fp`,
    /// a measurement-target break (single-core runs), or an L1 miss.
    ///
    /// L1 hits — the overwhelmingly common case — are folded entirely
    /// inside this loop: stats, cycle/instruction accounting, and the
    /// target check never leave the core's own state, so the simulator
    /// pays the cross-struct dispatch (`self.cores[i]`, L2 borrow) only
    /// on misses. A returned miss has had its execution cycles charged
    /// and stats applied, but *not* its [`Self::note_progress`] — the
    /// caller performs the stall first, exactly like the one-at-a-time
    /// path did.
    #[inline]
    pub fn run_hits(&mut self, qend_fp: u64, single: bool) -> Option<(Bundle, L1Rec)> {
        let fe = self.front.as_mut().expect("front-end present");
        loop {
            if self.cycles_fp >= qend_fp || (single && self.cycles_at_target.is_some()) {
                return None;
            }
            if fe.cursor >= fe.enc.len() {
                // Quantum outran the reserve: refill inline (same content
                // regardless of where the refill happens).
                fe.top_up();
            }
            let enc = fe.enc[fe.cursor];
            let instrs = fe.instrs[fe.cursor];
            let r = fe.recs[fe.cursor];
            fe.cursor += 1;
            let write = enc & 1 != 0;
            fe.l1d.apply_rec_stats(r, write);
            self.cycles_fp += u64::from(instrs) * self.cpi_fp;
            self.instructions += u64::from(instrs);
            if !r.hit() {
                return Some((
                    Bundle {
                        instrs,
                        mem: MemRef {
                            block: enc >> 1,
                            write,
                        },
                    },
                    r,
                ));
            }
            // `note_progress`, inlined so the front-end borrow can stay
            // live across iterations.
            if self.cycles_at_target.is_none() {
                if let Some(w) = self.instrs_at_warmup {
                    if self.instructions >= w + self.target_instructions {
                        self.cycles_at_target = Some(self.cycles_fp);
                    }
                }
            }
        }
    }

    /// Pops the next dirty-eviction block address. Must be called exactly
    /// once, in order, for each consumed rec with
    /// [`L1Rec::has_writeback`] set (the simulator's miss path).
    #[inline]
    pub fn pop_writeback(&mut self) -> u64 {
        let fe = self.front.as_mut().expect("front-end present");
        let wb = fe.wbs[fe.wb_cursor];
        fe.wb_cursor += 1;
        wb
    }

    /// Sizes the prefetch block: the refill trigger covers a typical
    /// quantum's bundle consumption (capped so the buffers stay
    /// CPU-cache-resident — an atypical quantum falls back to an inline
    /// refill with identical content), and each top-up generates a few
    /// thousand bundles to amortise the batch-kernel entry.
    pub fn configure_block(&mut self, quantum_cycles: u64) {
        let fe = self.front.as_mut().expect("front-end present");
        // Upper bound on one quantum's bundle consumption (a bundle
        // carries >= 1 instruction and stalls only lengthen a quantum).
        let per_quantum = (quantum_cycles << CYCLE_FP_SHIFT) / self.cpi_fp + 2;
        fe.reserve = (per_quantum as usize).min(1024);
        fe.target = fe.reserve + 4096;
    }

    /// Whether the prefetch buffer has dropped below its quantum reserve.
    #[inline]
    pub fn front_needs_top_up(&self) -> bool {
        let fe = self.front.as_ref().expect("front-end present");
        fe.buffered() < fe.reserve
    }

    /// Refills the prefetch buffer in place (no-op while it still holds
    /// the quantum reserve). Returns the number of bundles generated.
    pub fn top_up_front(&mut self) -> usize {
        self.front.as_mut().expect("front-end present").top_up()
    }

    /// Detaches the front end (for a worker-thread refill). The core must
    /// not execute or be sampled until [`Self::put_front`] restores it.
    pub fn take_front(&mut self) -> FrontEnd {
        self.front.take().expect("front-end present")
    }

    pub fn put_front(&mut self, fe: FrontEnd) {
        debug_assert!(self.front.is_none(), "front-end already present");
        self.front = Some(fe);
    }

    /// The core's private L1D.
    #[inline]
    pub fn l1d(&self) -> &SetAssocCache {
        &self.front.as_ref().expect("front-end present").l1d
    }

    #[inline]
    pub fn l1d_mut(&mut self) -> &mut SetAssocCache {
        &mut self.front.as_mut().expect("front-end present").l1d
    }

    /// Charges a memory stall of `latency` raw cycles, applying the
    /// overlap window and the benchmark's MLP.
    #[inline]
    pub fn stall(&mut self, latency: f64, overlap: f64) {
        let visible = latency - overlap;
        if visible > 0.0 {
            self.cycles_fp += (visible * self.fp_per_stall_cycle) as u64;
        }
    }

    /// Records the IPC measurement point if just crossed.
    #[inline]
    pub fn note_progress(&mut self) {
        if self.cycles_at_target.is_none() {
            if let Some(w) = self.instrs_at_warmup {
                if self.instructions >= w + self.target_instructions {
                    self.cycles_at_target = Some(self.cycles_fp);
                }
            }
        }
    }

    /// IPC over the measured region (panics before the target is reached).
    pub fn ipc(&self) -> f64 {
        let c = self
            .cycles_at_target
            .expect("IPC requested before the core reached its target");
        let w = self.cycles_at_warmup.expect("target implies warmed");
        self.target_instructions as f64 / ((c - w) as f64 / CYCLE_FP_ONE as f64)
    }

    pub fn profile(&self) -> &BenchmarkProfile {
        self.front
            .as_ref()
            .expect("front-end present")
            .stream
            .profile()
    }
}

impl esteem_stats::StatsSource for CoreState {
    /// Registers retirement progress and L1D traffic; the private L1
    /// nests as a sub-scope (`cores/<i>/l1/hits`).
    fn collect(&self, out: &mut esteem_stats::Scope<'_>) {
        out.counter("instructions", self.instructions);
        out.counter("cycles_fp", self.cycles_fp);
        out.register("l1", self.l1d());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esteem_cache::CacheGeometry;
    use esteem_workloads::benchmark_by_name;

    fn l1() -> SetAssocCache {
        let mut c = SetAssocCache::new(CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1), None);
        // Mirror the simulator's L1 construction: no retention clocks, so
        // the front end qualifies for the compact batch kernel.
        c.set_retention_tracking(false);
        c
    }

    #[test]
    fn cycle_accounting() {
        let p = benchmark_by_name("gamess").unwrap();
        let mut c = CoreState::new(0, &p, l1(), 1000, 7);
        c.mark_warmup();
        let b = c.fetch_bundle();
        // Fixed-point quantises cpi_base to 2^-20 cycle units: exact to
        // ~1e-6 per instruction.
        let tol = f64::from(b.instrs) / CYCLE_FP_ONE as f64;
        assert!((c.cycles_f64() - f64::from(b.instrs) * p.cpi_base).abs() <= tol);
        c.stall(100.0, 8.0);
        let expect = f64::from(b.instrs) * p.cpi_base + 92.0 / p.mlp;
        assert!((c.cycles_f64() - expect).abs() <= tol + 1.0 / CYCLE_FP_ONE as f64);
        // Overlap swallows short latencies entirely.
        let before = c.cycles_fp;
        c.stall(5.0, 8.0);
        assert_eq!(c.cycles_fp, before);
    }

    #[test]
    fn fixed_point_accumulation_is_exact_integer_math() {
        let p = benchmark_by_name("gamess").unwrap();
        let mut a = CoreState::new(0, &p, l1(), 1000, 7);
        let mut b = CoreState::new(0, &p, l1(), 1000, 7);
        // Same bundles in the same order must give bit-identical clocks.
        for _ in 0..1000 {
            a.fetch_bundle();
            b.fetch_bundle();
        }
        assert_eq!(a.cycles_fp, b.cycles_fp);
        // Whole-cycle view is the floor of the fractional clock.
        assert_eq!(a.cycle(), (a.cycles_f64().floor()) as u64);
    }

    #[test]
    fn target_recording() {
        let p = benchmark_by_name("povray").unwrap();
        let mut c = CoreState::new(0, &p, l1(), 100, 7);
        // Simulate a warm-up region of ~50 instructions.
        while c.instructions < 50 {
            c.fetch_bundle();
        }
        c.mark_warmup();
        assert!(c.warmed());
        while !c.reached_target() {
            c.fetch_bundle();
            c.note_progress();
        }
        assert!(c.instructions >= 150);
        let ipc = c.ipc();
        assert!(ipc > 0.0 && ipc < 10.0, "ipc {ipc} out of sane range");
        // Running past the target must not change the recorded point.
        let at = c.cycles_at_target;
        c.fetch_bundle();
        c.note_progress();
        assert_eq!(c.cycles_at_target, at);
    }
}
