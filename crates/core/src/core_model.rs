//! Per-core execution state and cycle accounting.

use esteem_cache::SetAssocCache;
use esteem_workloads::{AccessStream, BenchmarkProfile, Bundle};

/// Fixed-point shift for per-core cycle accounting: cycles are tracked
/// as `u64` in units of 2^-20 cycles (~1e-6 cycle resolution, headroom
/// to 2^44 cycles ≈ 4.8 hours at 1 GHz). Integer accounting keeps the
/// per-instruction inner loop free of f64 compares and makes cycle
/// arithmetic exactly associative (bit-deterministic regardless of
/// accumulation order).
pub const CYCLE_FP_SHIFT: u32 = 20;

/// One cycle in fixed-point units.
pub const CYCLE_FP_ONE: u64 = 1 << CYCLE_FP_SHIFT;

/// One core: its workload stream, private L1D, and local clock.
///
/// The timing model (DESIGN.md §3 substitution 2): a bundle of `n`
/// instructions costs `n * cpi_base` cycles of execution; if its memory
/// reference misses the L1, the core additionally stalls for the *visible*
/// part of the L2/memory round trip:
/// `max(0, latency - overlap) / mlp`, where `overlap` models the OOO
/// window hiding short latencies and `mlp` the benchmark's memory-level
/// parallelism. L1 hits are free (the 2-cycle pipelined L1 is part of
/// `cpi_base`).
#[derive(Debug, Clone)]
pub struct CoreState {
    pub id: u32,
    stream: AccessStream,
    pub l1d: SetAssocCache,
    /// Local clock in fixed-point units of 2^-20 cycles
    /// (see [`CYCLE_FP_SHIFT`]).
    pub cycles_fp: u64,
    /// Instructions retired (including warm-up).
    pub instructions: u64,
    /// Instruction count when warm-up ended (set by the simulator).
    pub instrs_at_warmup: Option<u64>,
    /// Fixed-point cycle count when warm-up ended (set by the simulator).
    pub cycles_at_warmup: Option<u64>,
    /// *Measured* instructions after warm-up at which IPC is recorded.
    pub target_instructions: u64,
    /// Fixed-point cycle count when the target was reached (`None` until
    /// then).
    pub cycles_at_target: Option<u64>,
    /// `cpi_base` in fixed-point cycle units per instruction.
    cpi_fp: u64,
    /// Fixed-point units per visible stall cycle: `2^20 / mlp`.
    fp_per_stall_cycle: f64,
}

impl CoreState {
    pub fn new(
        id: u32,
        profile: &BenchmarkProfile,
        l1d: SetAssocCache,
        target_instructions: u64,
        seed: u64,
    ) -> Self {
        Self {
            id,
            stream: AccessStream::new(profile, id, seed),
            l1d,
            cycles_fp: 0,
            instructions: 0,
            instrs_at_warmup: None,
            cycles_at_warmup: None,
            target_instructions,
            cycles_at_target: None,
            cpi_fp: (profile.cpi_base * CYCLE_FP_ONE as f64).round() as u64,
            fp_per_stall_cycle: CYCLE_FP_ONE as f64 / profile.mlp,
        }
    }

    /// Local clock in whole cycles (what the cache/refresh models see).
    #[inline]
    pub fn cycle(&self) -> u64 {
        self.cycles_fp >> CYCLE_FP_SHIFT
    }

    /// Local clock in (fractional) cycles, for reporting.
    #[inline]
    pub fn cycles_f64(&self) -> f64 {
        self.cycles_fp as f64 / CYCLE_FP_ONE as f64
    }

    /// Marks the end of this core's warm-up (called once by the simulator
    /// when the global warm-up cycle count passes).
    pub fn mark_warmup(&mut self) {
        debug_assert!(self.cycles_at_warmup.is_none());
        self.instrs_at_warmup = Some(self.instructions);
        self.cycles_at_warmup = Some(self.cycles_fp);
    }

    /// Whether this core has finished its warm-up region.
    pub fn warmed(&self) -> bool {
        self.cycles_at_warmup.is_some()
    }

    /// Whether this core has reached its measurement target. (It keeps
    /// running afterwards in multicore runs, to keep exerting realistic
    /// pressure on the shared L2 — the paper's methodology, §6.4.)
    pub fn reached_target(&self) -> bool {
        self.cycles_at_target.is_some()
    }

    /// Pulls the next bundle and charges its execution cycles; the memory
    /// reference is returned for the system to route through the
    /// hierarchy. Call [`Self::stall`] with the resulting visible latency.
    #[inline]
    pub fn fetch_bundle(&mut self) -> Bundle {
        let b = self.stream.next_bundle();
        self.cycles_fp += u64::from(b.instrs) * self.cpi_fp;
        self.instructions += u64::from(b.instrs);
        b
    }

    /// Charges a memory stall of `latency` raw cycles, applying the
    /// overlap window and the benchmark's MLP.
    #[inline]
    pub fn stall(&mut self, latency: f64, overlap: f64) {
        let visible = latency - overlap;
        if visible > 0.0 {
            self.cycles_fp += (visible * self.fp_per_stall_cycle) as u64;
        }
    }

    /// Records the IPC measurement point if just crossed.
    #[inline]
    pub fn note_progress(&mut self) {
        if self.cycles_at_target.is_none() {
            if let Some(w) = self.instrs_at_warmup {
                if self.instructions >= w + self.target_instructions {
                    self.cycles_at_target = Some(self.cycles_fp);
                }
            }
        }
    }

    /// IPC over the measured region (panics before the target is reached).
    pub fn ipc(&self) -> f64 {
        let c = self
            .cycles_at_target
            .expect("IPC requested before the core reached its target");
        let w = self.cycles_at_warmup.expect("target implies warmed");
        self.target_instructions as f64 / ((c - w) as f64 / CYCLE_FP_ONE as f64)
    }

    pub fn profile(&self) -> &BenchmarkProfile {
        self.stream.profile()
    }
}

impl esteem_stats::StatsSource for CoreState {
    /// Registers retirement progress and L1D traffic; the private L1
    /// nests as a sub-scope (`cores/<i>/l1/hits`).
    fn collect(&self, out: &mut esteem_stats::Scope<'_>) {
        out.counter("instructions", self.instructions);
        out.counter("cycles_fp", self.cycles_fp);
        out.register("l1", &self.l1d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esteem_cache::CacheGeometry;
    use esteem_workloads::benchmark_by_name;

    fn l1() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1), None)
    }

    #[test]
    fn cycle_accounting() {
        let p = benchmark_by_name("gamess").unwrap();
        let mut c = CoreState::new(0, &p, l1(), 1000, 7);
        c.mark_warmup();
        let b = c.fetch_bundle();
        // Fixed-point quantises cpi_base to 2^-20 cycle units: exact to
        // ~1e-6 per instruction.
        let tol = f64::from(b.instrs) / CYCLE_FP_ONE as f64;
        assert!((c.cycles_f64() - f64::from(b.instrs) * p.cpi_base).abs() <= tol);
        c.stall(100.0, 8.0);
        let expect = f64::from(b.instrs) * p.cpi_base + 92.0 / p.mlp;
        assert!((c.cycles_f64() - expect).abs() <= tol + 1.0 / CYCLE_FP_ONE as f64);
        // Overlap swallows short latencies entirely.
        let before = c.cycles_fp;
        c.stall(5.0, 8.0);
        assert_eq!(c.cycles_fp, before);
    }

    #[test]
    fn fixed_point_accumulation_is_exact_integer_math() {
        let p = benchmark_by_name("gamess").unwrap();
        let mut a = CoreState::new(0, &p, l1(), 1000, 7);
        let mut b = CoreState::new(0, &p, l1(), 1000, 7);
        // Same bundles in the same order must give bit-identical clocks.
        for _ in 0..1000 {
            a.fetch_bundle();
            b.fetch_bundle();
        }
        assert_eq!(a.cycles_fp, b.cycles_fp);
        // Whole-cycle view is the floor of the fractional clock.
        assert_eq!(a.cycle(), (a.cycles_f64().floor()) as u64);
    }

    #[test]
    fn target_recording() {
        let p = benchmark_by_name("povray").unwrap();
        let mut c = CoreState::new(0, &p, l1(), 100, 7);
        // Simulate a warm-up region of ~50 instructions.
        while c.instructions < 50 {
            c.fetch_bundle();
        }
        c.mark_warmup();
        assert!(c.warmed());
        while !c.reached_target() {
            c.fetch_bundle();
            c.note_progress();
        }
        assert!(c.instructions >= 150);
        let ipc = c.ipc();
        assert!(ipc > 0.0 && ipc < 10.0, "ipc {ipc} out of sane range");
        // Running past the target must not change the recorded point.
        let at = c.cycles_at_target;
        c.fetch_bundle();
        c.note_progress();
        assert_eq!(c.cycles_at_target, at);
    }
}
