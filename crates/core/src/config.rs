//! System configuration (paper §6.1 and §7 defaults).

use esteem_cache::CacheGeometry;
use esteem_edram::{RefreshPolicy, RetentionSpec};
use esteem_mem::MemConfig;
use serde::{Deserialize, Serialize};

/// Parameters of ESTEEM's energy-saving algorithm (paper §7 defaults:
/// alpha 0.97, A_min 3, R_s 64, 10 M-cycle intervals, 8 modules for the
/// single-core system and 16 for the dual-core one).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlgoParams {
    /// Hit-coverage threshold `alpha` (< 1).
    pub alpha: f64,
    /// Minimum ways always kept on, `A_min` (the paper never uses 1: a
    /// direct-mapped LLC loses too much performance).
    pub a_min: u8,
    /// Number of modules `M` the L2's sets are divided into.
    pub modules: u16,
    /// Interval between algorithm invocations, in cycles.
    pub interval_cycles: u64,
    /// Set-sampling ratio `R_s` (one leader set per `R_s` sets).
    pub rs: u32,
    /// Extension (paper §7.2 "future work"): bound on how many ways a
    /// module's allocation may change per interval. `None` = unbounded,
    /// as evaluated in the paper.
    pub max_step: Option<u8>,
    /// The non-LRU anomaly guard of Algorithm 1 lines 4–13; disabling it
    /// is an ablation, not a paper configuration.
    pub non_lru_guard: bool,
    /// Shrink confirmation: a module only gives up ways when two
    /// consecutive intervals request it (growth is immediate). This
    /// realises the paper's §7.2 remark that reconfiguration overhead is
    /// minimized by "detecting and avoiding frequent reconfigurations";
    /// without it, ATD sampling noise makes decisions oscillate by a way
    /// or two each interval, and every oscillation flushes and refills
    /// cache lines.
    pub shrink_confirm: bool,
}

impl AlgoParams {
    pub fn paper_single_core() -> Self {
        Self {
            alpha: 0.97,
            a_min: 3,
            modules: 8,
            interval_cycles: 10_000_000,
            rs: 64,
            max_step: None,
            non_lru_guard: true,
            shrink_confirm: true,
        }
    }

    pub fn paper_dual_core() -> Self {
        Self {
            modules: 16,
            ..Self::paper_single_core()
        }
    }

    pub fn validate(&self, ways: u8) {
        if let Err(e) = self.check(ways) {
            panic!("{e}");
        }
    }

    /// Non-panicking form of [`Self::validate`].
    pub fn check(&self, ways: u8) -> Result<(), String> {
        if self.alpha.is_nan() || self.alpha <= 0.0 || self.alpha >= 1.0 {
            return Err("alpha in (0,1)".into());
        }
        if !(1..=ways).contains(&self.a_min) {
            return Err(format!("A_min must be in 1..=A (got {})", self.a_min));
        }
        if self.interval_cycles == 0 {
            return Err("interval_cycles must be positive".into());
        }
        if self.rs < 1 {
            return Err("R_s must be >= 1".into());
        }
        if let Some(s) = self.max_step {
            if s < 1 {
                return Err("max_step must allow some movement".into());
            }
        }
        Ok(())
    }
}

/// The cache power-management technique under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Technique {
    /// eDRAM L2 that periodically refreshes *all* lines (the paper's
    /// baseline; §6.4).
    Baseline,
    /// Refrint polyphase-valid with 4 phases (the paper's comparator).
    Rpv,
    /// Refrint polyphase-dirty (described but not evaluated in the paper;
    /// provided as an extension).
    Rpd,
    /// Periodic refresh of valid lines only (Refrint's periodic-valid;
    /// extension).
    PeriodicValid,
    /// ESTEEM: dynamic per-module way reconfiguration + valid-only refresh
    /// in the active portion.
    Esteem(AlgoParams),
    /// ECC-assisted refresh-period extension (extension; the related-work
    /// family the paper cites as [39, 45]): refresh every `periods`
    /// retention periods with `ecc_bits` of per-line correction.
    EccRefresh { periods: u8, ecc_bits: u8 },
    /// Statically shrunken cache (ablation): every module is pinned to a
    /// fixed way count at the start of the run and never reconfigured
    /// again — the paper's "selective ways"-style comparison point that
    /// isolates ESTEEM's *dynamic* adaptation from the raw benefit of
    /// running a smaller cache. Refreshes valid lines in the active
    /// portion only, like ESTEEM.
    StaticWays { ways: u8 },
}

impl Technique {
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Baseline => "baseline",
            Technique::Rpv => "RPV",
            Technique::Rpd => "RPD",
            Technique::PeriodicValid => "periodic-valid",
            Technique::Esteem(_) => "ESTEEM",
            Technique::EccRefresh { .. } => "ECC-refresh",
            Technique::StaticWays { .. } => "static-ways",
        }
    }

    /// Refresh policy the technique runs the L2 with.
    pub fn refresh_policy(&self) -> RefreshPolicy {
        match self {
            Technique::Baseline => RefreshPolicy::PeriodicAll,
            Technique::Rpv => RefreshPolicy::RPV,
            Technique::Rpd => RefreshPolicy::RPD,
            Technique::PeriodicValid => RefreshPolicy::PeriodicValid,
            // "in the active portion of the cache, only the valid blocks
            // are refreshed" (paper §3.1).
            Technique::Esteem(_) => RefreshPolicy::PeriodicValid,
            Technique::EccRefresh { periods, ecc_bits } => RefreshPolicy::MultiPeriodic {
                periods: *periods,
                ecc_bits: *ecc_bits,
            },
            // Only the active portion holds data; refresh its valid lines.
            Technique::StaticWays { .. } => RefreshPolicy::PeriodicValid,
        }
    }

    pub fn algo_params(&self) -> Option<&AlgoParams> {
        match self {
            Technique::Esteem(p) => Some(p),
            _ => None,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    pub cores: u32,
    /// Core clock (paper: 2 GHz).
    pub clock_hz: f64,
    /// Private L1D capacity/ways/latency (paper: 32 KB, 4-way, 2 cycles;
    /// the latency is pipelined and folded into the core CPI).
    pub l1_capacity: u64,
    pub l1_ways: u8,
    /// Shared L2 capacity (paper: 4 MB single-core / 8 MB dual-core).
    pub l2_capacity: u64,
    pub l2_ways: u8,
    pub l2_latency: u32,
    pub l2_banks: u8,
    /// eDRAM retention period.
    pub retention: RetentionSpec,
    pub mem: MemConfig,
    pub technique: Technique,
    /// Instructions each core must retire before its IPC is recorded
    /// (paper: 400 M; experiments scale this down, DESIGN.md §3).
    pub sim_instructions: u64,
    /// Warm-up cycles, excluded from every reported metric. Stands in for
    /// the paper's 10 B-instruction fast-forward: caches fill and ESTEEM's
    /// configuration converges (cover at least two reconfiguration
    /// intervals) before measurement starts.
    pub warmup_cycles: u64,
    /// Lines refreshed back-to-back per refresh burst in the bank
    /// contention model (see `esteem-edram::contention`).
    pub bank_burst_lines: f64,
    /// Multicore interleave quantum in cycles.
    pub quantum_cycles: u64,
    /// Out-of-order overlap window: cycles of miss latency the core hides.
    pub overlap_cycles: f64,
    /// Workload seed (streams are deterministic given it).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's single-core system: 4 MB 16-way L2, 10 GB/s memory.
    pub fn paper_single_core(technique: Technique) -> Self {
        Self {
            cores: 1,
            clock_hz: 2.0e9,
            l1_capacity: 32 << 10,
            l1_ways: 4,
            l2_capacity: 4 << 20,
            l2_ways: 16,
            l2_latency: 12,
            l2_banks: 4,
            retention: RetentionSpec::from_micros(50.0, 2.0),
            mem: MemConfig::paper_single_core(),
            technique,
            sim_instructions: 40_000_000,
            warmup_cycles: 35_000_000,
            bank_burst_lines: 128.0,
            quantum_cycles: 1_000,
            overlap_cycles: 8.0,
            seed: 1,
        }
    }

    /// The paper's dual-core system: 8 MB shared L2, 15 GB/s memory.
    pub fn paper_dual_core(technique: Technique) -> Self {
        Self {
            cores: 2,
            l2_capacity: 8 << 20,
            mem: MemConfig::paper_dual_core(),
            ..Self::paper_single_core(technique)
        }
    }

    /// L2 geometry implied by this configuration: module count and leader
    /// stride come from the technique (non-reconfiguring techniques use a
    /// single module and no sampling).
    pub fn l2_geometry(&self) -> CacheGeometry {
        let modules = self.technique.algo_params().map(|p| p.modules).unwrap_or(1);
        CacheGeometry::from_capacity(self.l2_capacity, self.l2_ways, 64, self.l2_banks, modules)
    }

    pub fn l1_geometry(&self) -> CacheGeometry {
        CacheGeometry::from_capacity(self.l1_capacity, self.l1_ways, 64, 1, 1)
    }

    pub fn leader_stride(&self) -> Option<u32> {
        self.technique.algo_params().map(|p| p.rs)
    }

    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Non-panicking form of [`Self::validate`]: returns a one-line
    /// description of the first violated invariant instead of panicking,
    /// so front ends (CLI flag parsing, the `esteem-serve` job API) can
    /// reject a bad configuration without a backtrace.
    pub fn check(&self) -> Result<(), String> {
        if self.cores < 1 {
            return Err("cores must be >= 1".into());
        }
        if self.sim_instructions == 0 {
            return Err("sim_instructions must be positive".into());
        }
        if self.bank_burst_lines.is_nan() || self.bank_burst_lines < 1.0 {
            return Err("bank_burst_lines must be >= 1".into());
        }
        if self.quantum_cycles == 0 {
            return Err("quantum_cycles must be positive".into());
        }
        if self.overlap_cycles.is_nan() || self.overlap_cycles < 0.0 {
            return Err("overlap_cycles must be >= 0".into());
        }
        // Geometries are rebuilt through the fallible constructor: the
        // convenience accessors panic on impossible shapes (e.g. a module
        // count that does not divide the sets) before `check` could report.
        let modules = self.technique.algo_params().map(|p| p.modules).unwrap_or(1);
        let g = CacheGeometry::try_from_capacity(
            self.l2_capacity,
            self.l2_ways,
            64,
            self.l2_banks,
            modules,
        )
        .map_err(|e| format!("L2: {e}"))?;
        CacheGeometry::try_from_capacity(self.l1_capacity, self.l1_ways, 64, 1, 1)
            .map_err(|e| format!("L1: {e}"))?;
        if let Some(p) = self.technique.algo_params() {
            p.check(self.l2_ways)?;
            if u32::from(p.modules) > g.sets {
                return Err("more modules than sets".into());
            }
        }
        if let Technique::StaticWays { ways } = self.technique {
            if !(1..=self.l2_ways).contains(&ways) {
                return Err(format!("static way count must be in 1..=A (got {ways})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        SystemConfig::paper_single_core(Technique::Baseline).validate();
        SystemConfig::paper_single_core(Technique::Rpv).validate();
        SystemConfig::paper_single_core(Technique::Esteem(AlgoParams::paper_single_core()))
            .validate();
        SystemConfig::paper_dual_core(Technique::Esteem(AlgoParams::paper_dual_core())).validate();
    }

    #[test]
    fn geometry_reflects_technique() {
        let base = SystemConfig::paper_single_core(Technique::Baseline);
        assert_eq!(base.l2_geometry().modules, 1);
        assert_eq!(base.leader_stride(), None);
        let est =
            SystemConfig::paper_single_core(Technique::Esteem(AlgoParams::paper_single_core()));
        assert_eq!(est.l2_geometry().modules, 8);
        assert_eq!(est.leader_stride(), Some(64));
        assert_eq!(est.l2_geometry().sets, 4096);
    }

    #[test]
    fn refresh_policies_per_technique() {
        assert_eq!(
            Technique::Baseline.refresh_policy(),
            RefreshPolicy::PeriodicAll
        );
        assert_eq!(Technique::Rpv.refresh_policy(), RefreshPolicy::RPV);
        assert_eq!(
            Technique::Esteem(AlgoParams::paper_single_core()).refresh_policy(),
            RefreshPolicy::PeriodicValid
        );
    }

    #[test]
    fn retention_cycles() {
        let c = SystemConfig::paper_single_core(Technique::Baseline);
        assert_eq!(c.retention.period_cycles, 100_000);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let mut p = AlgoParams::paper_single_core();
        p.alpha = 1.5;
        p.validate(16);
    }
}
