//! Paired baseline-vs-technique runs and the paper's comparison metrics.

use esteem_energy::metrics;
use esteem_workloads::BenchmarkProfile;
use serde::{Deserialize, Serialize};

use crate::config::{SystemConfig, Technique};
use crate::report::SimReport;
use crate::system::Simulator;

/// All §6.4 metrics of one technique against the baseline, for one
/// workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    pub workload: String,
    pub technique: String,
    /// Percentage memory-subsystem energy saved vs. baseline.
    pub energy_saving_pct: f64,
    /// Weighted speedup (relative performance), eq. 9.
    pub weighted_speedup: f64,
    /// Fair speedup (harmonic); the paper computes it but omits the plots.
    pub fair_speedup: f64,
    /// Absolute RPKI decrease vs. baseline.
    pub rpki_decrease: f64,
    /// Absolute MPKI increase vs. baseline (0 for RPV by construction).
    pub mpki_increase: f64,
    /// Time-averaged active ratio (1.0 unless ESTEEM).
    pub active_ratio: f64,
    pub base: SimReport,
    pub tech: SimReport,
}

impl Comparison {
    pub fn from_reports(base: SimReport, tech: SimReport) -> Self {
        assert_eq!(base.workload, tech.workload, "mismatched runs");
        let ws = metrics::weighted_speedup(&tech.ipcs(), &base.ipcs());
        let fs = metrics::fair_speedup(&tech.ipcs(), &base.ipcs());
        let saving =
            esteem_energy::model::energy_saving_percent(base.energy.total(), tech.energy.total());
        Self {
            workload: base.workload.clone(),
            technique: tech.technique.clone(),
            energy_saving_pct: saving,
            weighted_speedup: ws,
            fair_speedup: fs,
            rpki_decrease: base.rpki() - tech.rpki(),
            mpki_increase: tech.mpki() - base.mpki(),
            active_ratio: tech.active_ratio,
            base,
            tech,
        }
    }
}

/// Runs `technique` and the baseline on the same workload/seed and
/// compares them. `make_cfg` builds the config for a given technique so
/// both runs share every other parameter.
pub fn run_comparison(
    make_cfg: impl Fn(Technique) -> SystemConfig,
    technique: Technique,
    profiles: &[BenchmarkProfile],
    label: &str,
) -> Comparison {
    let base = Simulator::new(make_cfg(Technique::Baseline), profiles, label).run();
    let tech = Simulator::new(make_cfg(technique), profiles, label).run();
    Comparison::from_reports(base, tech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoParams;
    use esteem_workloads::benchmark_by_name;

    fn cfg_builder(instrs: u64) -> impl Fn(Technique) -> SystemConfig {
        move |t| {
            let mut c = SystemConfig::paper_single_core(t);
            c.sim_instructions = instrs;
            c
        }
    }

    #[test]
    fn esteem_saves_energy_on_cache_resident_workload() {
        let p = benchmark_by_name("gamess").unwrap();
        let algo = AlgoParams {
            interval_cycles: 500_000,
            ..AlgoParams::paper_single_core()
        };
        let cmp = run_comparison(
            cfg_builder(3_000_000),
            Technique::Esteem(algo),
            std::slice::from_ref(&p),
            "gamess",
        );
        assert!(
            cmp.energy_saving_pct > 20.0,
            "expected large saving for gamess, got {:.1}%",
            cmp.energy_saving_pct
        );
        assert!(cmp.rpki_decrease > 0.0);
        assert!(cmp.weighted_speedup > 0.95);
        assert!(cmp.active_ratio < 0.6);
    }

    #[test]
    fn rpv_mpki_increase_is_zero() {
        let p = benchmark_by_name("hmmer").unwrap();
        let cmp = run_comparison(
            cfg_builder(1_000_000),
            Technique::Rpv,
            std::slice::from_ref(&p),
            "hmmer",
        );
        // RPV never changes miss behaviour; the residual is only window
        // misalignment (measurement starts at a fixed warm-up *cycle*, so
        // the two runs measure minutely different instruction spans).
        assert!(
            cmp.mpki_increase.abs() < 0.05,
            "RPV must not change miss behaviour (got {})",
            cmp.mpki_increase
        );
        assert_eq!(cmp.active_ratio, 1.0);
        assert!(cmp.energy_saving_pct > 0.0, "RPV should save something");
    }
}
