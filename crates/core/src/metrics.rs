//! Wall-clock instrumentation of the threaded batch front end.
//!
//! [`SimMetrics`] is an optional, shareable (`Arc`) bundle of
//! [`Histogram`]s the simulator fills at quantum boundaries when
//! attached via `Simulator::with_metrics`:
//!
//! * **per-core refill time** — wall microseconds each core's
//!   front-end top-up took this quantum (on a worker thread or inline),
//! * **barrier stall** — how long the simulation thread waited at the
//!   refill barrier (`pool.wait_idle()`), the direct cost of the
//!   slowest core,
//! * **refill batch sizes and imbalance** — bundles generated per
//!   refill, and per quantum the max-over-mean imbalance (in percent)
//!   across the cores that refilled: the work-skew input to ROADMAP
//!   item 3's headroom hunt.
//!
//! Everything here is wall-clock observation of *host* execution; none
//! of it feeds back into simulated state, so attaching metrics can
//! never change a report (the observer/tracer byte-identity tests
//! cover the same contract). When no metrics are attached the
//! simulator takes no timestamps at all — zero cost.

use std::sync::atomic::{AtomicU64, Ordering};

use esteem_stats::{Histogram, HistogramSnapshot, Scope, StatsSource};

/// Shared instrumentation for one simulator run. All recording methods
/// take `&self` and are lock-free, so refill workers record directly.
#[derive(Debug)]
pub struct SimMetrics {
    /// Wall microseconds per front-end refill, one histogram per core.
    refill_us: Vec<Histogram>,
    /// Wall microseconds the simulation thread spent at the refill
    /// barrier per quantum (threaded mode only).
    barrier_stall_us: Histogram,
    /// Bundles generated per refill (all cores pooled).
    refill_bundles: Histogram,
    /// Per-quantum refill-size imbalance across cores, in percent:
    /// `100 * max(bundles) / mean(bundles)` (100 = perfectly balanced).
    imbalance_pct: Histogram,
    /// Scratch: last refill size per core, for the imbalance
    /// computation after the barrier.
    last_bundles: Vec<AtomicU64>,
}

impl SimMetrics {
    pub fn new(cores: usize) -> Self {
        Self {
            refill_us: (0..cores).map(|_| Histogram::new()).collect(),
            barrier_stall_us: Histogram::new(),
            refill_bundles: Histogram::new(),
            imbalance_pct: Histogram::new(),
            last_bundles: (0..cores).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn cores(&self) -> usize {
        self.refill_us.len()
    }

    /// Records one core's refill: wall time and batch size.
    pub fn record_refill(&self, core: usize, us: u64, bundles: usize) {
        self.refill_us[core].record(us);
        self.refill_bundles.record(bundles as u64);
        self.last_bundles[core].store(bundles as u64, Ordering::Relaxed);
    }

    pub fn record_barrier_stall(&self, us: u64) {
        self.barrier_stall_us.record(us);
    }

    /// Folds the quantum's per-core refill sizes (stored by
    /// [`Self::record_refill`]) into the imbalance histogram and clears
    /// the scratch. Call once per quantum, after the barrier.
    pub fn finish_quantum(&self) {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut n = 0u64;
        for b in &self.last_bundles {
            let v = b.swap(0, Ordering::Relaxed);
            if v > 0 {
                max = max.max(v);
                sum += v;
                n += 1;
            }
        }
        if n > 1 && sum > 0 {
            self.imbalance_pct.record(max * 100 * n / sum);
        }
    }

    pub fn refill_us(&self, core: usize) -> HistogramSnapshot {
        self.refill_us[core].snapshot()
    }

    pub fn barrier_stall_us(&self) -> HistogramSnapshot {
        self.barrier_stall_us.snapshot()
    }

    pub fn refill_bundles(&self) -> HistogramSnapshot {
        self.refill_bundles.snapshot()
    }

    pub fn imbalance_pct(&self) -> HistogramSnapshot {
        self.imbalance_pct.snapshot()
    }
}

impl StatsSource for SimMetrics {
    fn collect(&self, out: &mut Scope<'_>) {
        out.histogram("barrier_stall_us", self.barrier_stall_us.snapshot());
        out.histogram("refill_bundles", self.refill_bundles.snapshot());
        out.histogram("imbalance_pct", self.imbalance_pct.snapshot());
        out.scope("cores", |s| {
            for (i, h) in self.refill_us.iter().enumerate() {
                s.histogram(&format!("{i}/refill_us"), h.snapshot());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_is_max_over_mean_percent() {
        let m = SimMetrics::new(4);
        m.record_refill(0, 10, 100);
        m.record_refill(1, 12, 100);
        m.record_refill(2, 9, 100);
        m.record_refill(3, 40, 300);
        m.finish_quantum();
        let imb = m.imbalance_pct();
        assert_eq!(imb.count(), 1);
        // max=300, mean=150 -> 200%.
        assert_eq!(imb.quantile(0.5), 200);
        // Scratch cleared: a quantum with one refilling core records
        // nothing (imbalance needs >= 2 participants).
        m.record_refill(0, 5, 50);
        m.finish_quantum();
        assert_eq!(m.imbalance_pct().count(), 1);
        assert_eq!(m.refill_bundles().count(), 5);
    }

    #[test]
    fn collects_as_stats_source() {
        let m = SimMetrics::new(2);
        m.record_refill(0, 7, 64);
        m.record_barrier_stall(3);
        let mut r = esteem_stats::StatsReading::new();
        r.register("block", &m);
        assert_eq!(r.histogram("block/cores/0/refill_us").unwrap().count(), 1);
        assert_eq!(r.histogram("block/barrier_stall_us").unwrap().count(), 1);
        assert_eq!(r.histogram("block/cores/1/refill_us").unwrap().count(), 0);
    }
}
