//! The pluggable cache-controller layer.
//!
//! The paper evaluates one reconfiguration policy (ESTEEM's Algorithm 1)
//! against passive comparators, but the broader DCR literature (Mittal's
//! dynamic-cache-reconfiguration dissertation line, HALLS, Refrint) all
//! share the same skeleton: a policy engine that wakes at interval
//! boundaries, inspects profiling state, and reshapes the cache. This
//! module makes that skeleton a first-class trait so the system
//! simulator's quantum loop is policy-agnostic: adding a policy is one
//! new [`CacheController`] implementation, not a `system.rs` surgery.
//!
//! Three implementations ship today:
//!
//! * [`EsteemController`] — the paper's interval engine (Algorithm 1);
//! * [`NullController`] — the passive policies (baseline, Refrint
//!   RPV/RPD, periodic-valid, ECC-refresh): never wakes, never acts;
//! * [`StaticWaysController`] — pins every module to a fixed way count
//!   at the first quantum boundary and then stays silent; the
//!   "selective ways" ablation that separates *having* a smaller cache
//!   from ESTEEM's dynamic adaptation.

use esteem_cache::SetAssocCache;
use esteem_trace::{EventKind, TraceEvent, Tracer};

use crate::config::Technique;
use crate::esteem::EsteemController;
use crate::report::IntervalRecord;

/// Everything a controller may touch when its interval fires. Borrowed
/// views into the simulator, so a controller can never reach state the
/// quantum loop does not explicitly lend it.
pub struct IntervalCtx<'a> {
    /// The shared L2 (profiling counters included — `l2.atd`).
    pub l2: &'a mut SetAssocCache,
    /// Current cycle (the quantum boundary that triggered the interval).
    pub now: u64,
    /// Trace tap for decision events (a disabled tracer when tracing is
    /// off; emitting through it is then a single branch).
    pub tracer: &'a Tracer,
}

/// Work a controller performed during one interval, which the simulator
/// must charge to traffic and energy (`N_L`, write-backs to memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerAction {
    /// Line slots that changed power state (the paper's `N_L`).
    pub slot_transitions: u64,
    /// Dirty lines flushed to memory by way turn-off.
    pub writebacks: u64,
    /// Clean lines discarded by way turn-off.
    pub discards: u64,
}

/// A reconfiguration policy plugged into the simulator's quantum loop.
///
/// The loop asks [`due`](Self::due) at every quantum boundary and calls
/// [`on_interval`](Self::on_interval) when it answers yes; everything
/// else about the policy (profiling source, damping, decision rule) is
/// private to the implementation.
pub trait CacheController: Send {
    /// Short label for logs and reports.
    fn name(&self) -> &'static str;

    /// The policy's natural cadence in cycles, if it is periodic. The
    /// interval observer uses this as its sampling period; aperiodic
    /// (or passive) controllers return `None` and observation falls
    /// back to the retention period.
    fn interval_cycles(&self) -> Option<u64> {
        None
    }

    /// Whether an interval boundary is due at `now`.
    fn due(&self, now: u64) -> bool;

    /// Runs one interval: inspect profiling state, reshape the cache,
    /// report the work done. Only called when [`due`](Self::due).
    fn on_interval(&mut self, ctx: IntervalCtx<'_>) -> ControllerAction;

    /// Per-interval decision log (drives Figure 2; empty for passive
    /// controllers).
    fn log(&self) -> &[IntervalRecord];
}

/// Builds the controller a technique calls for. The match lives here —
/// in one cold constructor — instead of being smeared over the quantum
/// loop as it was before the controller layer existed.
pub fn for_technique(technique: &Technique) -> Box<dyn CacheController> {
    match technique {
        Technique::Esteem(p) => Box::new(EsteemController::new(*p)),
        Technique::StaticWays { ways } => Box::new(StaticWaysController::new(*ways)),
        Technique::Baseline
        | Technique::Rpv
        | Technique::Rpd
        | Technique::PeriodicValid
        | Technique::EccRefresh { .. } => Box::new(NullController),
    }
}

/// The do-nothing controller behind every passive technique. `due` is
/// never true, so the quantum loop pays one predictable branch per
/// quantum and nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl CacheController for NullController {
    fn name(&self) -> &'static str {
        "null"
    }

    fn due(&self, _now: u64) -> bool {
        false
    }

    fn on_interval(&mut self, _ctx: IntervalCtx<'_>) -> ControllerAction {
        ControllerAction::default()
    }

    fn log(&self) -> &[IntervalRecord] {
        &[]
    }
}

/// Fixed way-count ablation: one reconfiguration at the first quantum
/// boundary (shrinking every module to `ways`, flushing the turned-off
/// ways exactly as a dynamic shrink would), then silence.
#[derive(Debug, Clone)]
pub struct StaticWaysController {
    ways: u8,
    applied: bool,
    log: Vec<IntervalRecord>,
}

impl StaticWaysController {
    pub fn new(ways: u8) -> Self {
        assert!(ways >= 1, "at least one way must stay active");
        Self {
            ways,
            applied: false,
            log: Vec::new(),
        }
    }
}

impl CacheController for StaticWaysController {
    fn name(&self) -> &'static str {
        "static-ways"
    }

    fn due(&self, _now: u64) -> bool {
        !self.applied
    }

    fn on_interval(&mut self, ctx: IntervalCtx<'_>) -> ControllerAction {
        let want = self.ways.min(ctx.l2.geometry().ways);
        let modules = ctx.l2.geometry().modules;
        let mut act = ControllerAction::default();
        for m in 0..modules {
            let prev = ctx.l2.module_active_ways(m);
            ctx.tracer.emit(EventKind::Reconfig, || {
                TraceEvent::ReconfigDecision {
                    cycle: ctx.now,
                    module: m,
                    prev_ways: prev,
                    want_ways: want,
                    applied_ways: want,
                    // The static ablation consults no profile: there are
                    // no Algorithm 1 inputs to report.
                    total_hits: 0,
                    anomalies: 0,
                    non_lru: false,
                    deferred: false,
                    valid_lines: ctx.l2.module_valid_lines(m),
                }
            });
            let out = ctx.l2.set_module_active_ways(m, want, ctx.now);
            act.slot_transitions += out.slot_transitions;
            act.writebacks += out.writebacks;
            act.discards += out.discards;
        }
        ctx.tracer
            .emit(EventKind::Reconfig, || TraceEvent::ReconfigApply {
                cycle: ctx.now,
                slot_transitions: act.slot_transitions,
                writebacks: act.writebacks,
                discards: act.discards,
            });
        self.applied = true;
        self.log.push(IntervalRecord {
            cycle: ctx.now,
            ways: vec![want; modules as usize],
            active_fraction: ctx.l2.active_fraction(),
        });
        act
    }

    fn log(&self) -> &[IntervalRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgoParams;
    use esteem_cache::CacheGeometry;

    fn l2() -> SetAssocCache {
        // 4096 sets x 16 ways (4MB), 8 modules, no leader sampling.
        let g = CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 8);
        SetAssocCache::new(g, None)
    }

    #[test]
    fn technique_selects_controller() {
        assert_eq!(for_technique(&Technique::Baseline).name(), "null");
        assert_eq!(for_technique(&Technique::Rpv).name(), "null");
        assert_eq!(
            for_technique(&Technique::Esteem(AlgoParams::paper_single_core())).name(),
            "esteem"
        );
        assert_eq!(
            for_technique(&Technique::StaticWays { ways: 4 }).name(),
            "static-ways"
        );
    }

    #[test]
    fn null_controller_is_never_due() {
        let ctl = NullController;
        assert!(!ctl.due(0));
        assert!(!ctl.due(u64::MAX));
        assert!(ctl.log().is_empty());
        assert_eq!(ctl.interval_cycles(), None);
    }

    #[test]
    fn static_ways_applies_once_and_flushes() {
        let mut cache = l2();
        // Dirty-fill all 16 ways of set 0.
        for t in 0..16u64 {
            cache.access(cache.geometry().block_of(t + 1, 0), true, 0);
        }
        let mut ctl = StaticWaysController::new(4);
        assert!(ctl.due(1000));
        let tracer = Tracer::ring(64, esteem_trace::TraceFilter::all());
        let act = ctl.on_interval(IntervalCtx {
            l2: &mut cache,
            now: 1000,
            tracer: &tracer,
        });
        // 12 ways turned off across 4096 sets (no leaders).
        assert_eq!(act.slot_transitions, 12 * 4096);
        assert_eq!(act.writebacks, 12, "12 dirty lines in set 0 flushed");
        for m in 0..8 {
            assert_eq!(cache.module_active_ways(m), 4);
        }
        assert_eq!(ctl.log().len(), 1);
        assert_eq!(ctl.log()[0].ways, vec![4; 8]);
        assert!((ctl.log()[0].active_fraction - 0.25).abs() < 1e-12);
        // One-shot: never due again.
        assert!(!ctl.due(u64::MAX));
        // One decision per module plus the aggregate apply event.
        let evs = tracer.drain();
        assert_eq!(evs.len(), 9);
        match &evs[0] {
            esteem_trace::TraceEvent::ReconfigDecision {
                prev_ways,
                applied_ways,
                ..
            } => {
                assert_eq!(*prev_ways, 16);
                assert_eq!(*applied_ways, 4);
            }
            other => panic!("unexpected first event {other:?}"),
        }
        match evs.last().unwrap() {
            esteem_trace::TraceEvent::ReconfigApply { writebacks, .. } => {
                assert_eq!(*writebacks, 12)
            }
            other => panic!("unexpected last event {other:?}"),
        }
    }

    #[test]
    fn static_ways_clamps_to_geometry() {
        let mut cache = l2();
        let mut ctl = StaticWaysController::new(200);
        let act = ctl.on_interval(IntervalCtx {
            l2: &mut cache,
            now: 0,
            tracer: &Tracer::off(),
        });
        // 200 > 16 ways: clamped to the full cache, a no-op reconfig.
        assert_eq!(act, ControllerAction::default());
        assert_eq!(cache.module_active_ways(0), 16);
    }

    #[test]
    fn esteem_controller_implements_trait() {
        let p = AlgoParams {
            shrink_confirm: false,
            ..AlgoParams::paper_single_core()
        };
        let mut ctl: Box<dyn CacheController> = Box::new(EsteemController::new(p));
        assert_eq!(ctl.name(), "esteem");
        assert_eq!(ctl.interval_cycles(), Some(p.interval_cycles));
        assert!(!ctl.due(p.interval_cycles - 1));
        assert!(ctl.due(p.interval_cycles));
        let g = CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 8);
        let mut cache = SetAssocCache::new(g, Some(64));
        let act = ctl.on_interval(IntervalCtx {
            l2: &mut cache,
            now: p.interval_cycles,
            tracer: &Tracer::off(),
        });
        // No hits recorded: every module shrinks to A_min.
        assert!(act.slot_transitions > 0);
        assert_eq!(ctl.log().len(), 1);
    }
}
