//! ESTEEM's energy-saving algorithm (Algorithm 1) and interval engine.

use esteem_cache::{ReconfigOutcome, SetAssocCache};
use esteem_trace::{EventKind, TraceEvent, Tracer};

use crate::config::AlgoParams;
use crate::controller::{CacheController, ControllerAction, IntervalCtx};
use crate::report::IntervalRecord;

/// One module's Algorithm 1 outcome together with the inputs that
/// justified it — what a trace consumer needs to audit the decision
/// without replaying the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Algo1Decision {
    /// The chosen way count.
    pub ways: u8,
    /// Total ATD hits the decision was computed over.
    pub total_hits: u64,
    /// Non-monotone LRU-position inversions above the noise floor.
    pub anomalies: u64,
    /// Whether the non-LRU guard limited turn-off.
    pub non_lru: bool,
}

/// Decision of Algorithm 1 for one module given its per-LRU-position hit
/// histogram from the last interval.
///
/// Faithful transcription of the paper's Algorithm 1:
/// 1. Count "anomalies" — positions where hits *increase* with decreasing
///    recency (`nL2Hit[i] < nL2Hit[i+1]`). The module is non-LRU when the
///    count reaches `A/4`.
/// 2. Accumulate hits; the first position whose accumulated hits reach
///    `alpha * total` sets the way count `max(A_min, i+1)` — or
///    `max(A-1, i+1)` for non-LRU modules (at most one way off).
pub fn algorithm1(hits: &[u64], alpha: f64, a_min: u8, non_lru_guard: bool) -> u8 {
    algorithm1_explain(hits, alpha, a_min, non_lru_guard).ways
}

/// [`algorithm1`] with its working: the same decision plus the inputs
/// behind it (for [`TraceEvent::ReconfigDecision`] records).
pub fn algorithm1_explain(
    hits: &[u64],
    alpha: f64,
    a_min: u8,
    non_lru_guard: bool,
) -> Algo1Decision {
    let a = hits.len();
    assert!((1..=64).contains(&a));
    debug_assert!(alpha > 0.0 && alpha < 1.0);

    // Lines 4–13: non-LRU detection. Implementation note: the paper
    // detects "when the number of hits do not decrease monotonically"; a
    // literal `<` comparison also fires on sampling noise in near-zero
    // tail positions (the ATD only sees 1/R_s of the sets), so an
    // inversion only counts as an anomaly when the larger deep-position
    // count is itself non-negligible (>= ~0.8% of the module's hits, and
    // at least 4 sampled hits).
    let total: u64 = hits.iter().sum();
    let noise_floor = (total / 128).max(4);
    let mut anomalies = 0usize;
    for i in 0..a - 1 {
        if hits[i] < hits[i + 1] && hits[i + 1] >= noise_floor {
            anomalies += 1;
        }
    }
    let non_lru = non_lru_guard && anomalies >= a / 4;
    let decision = |ways: u8| Algo1Decision {
        ways,
        total_hits: total,
        anomalies: anomalies as u64,
        non_lru,
    };

    // Lines 14–26: alpha-coverage way selection.
    let threshold = alpha * total as f64;
    let mut accumulated = 0u64;
    for (i, &h) in hits.iter().enumerate() {
        accumulated += h;
        if accumulated as f64 >= threshold {
            let chosen = (i + 1) as u8;
            return if non_lru {
                // The guard *raises* the floor to A-1; it must never lower
                // it below A_min (a_min == A used to lose one way here —
                // found by the differential checker's Algorithm 1 fuzz).
                decision(chosen.max(a_min).max(a as u8 - 1))
            } else {
                decision(chosen.max(a_min))
            };
        }
    }
    // Unreachable for alpha < 1 (the full accumulation equals the total),
    // but stay safe for totals of zero with pathological float rounding.
    decision(a_min.max(1))
}

/// The interval engine: runs Algorithm 1 over every module once per
/// interval and applies the decisions.
/// Consecutive intervals that must agree before a module gives up ways
/// (see `AlgoParams::shrink_confirm`). Three intervals suppress the churn
/// of a noisily-detected non-LRU module flapping its guard on and off.
const SHRINK_CONFIRM_INTERVALS: u8 = 3;

#[derive(Debug, Clone)]
pub struct EsteemController {
    params: AlgoParams,
    next_interval: u64,
    /// Consecutive shrink requests seen per module.
    shrink_streak: Vec<u8>,
    /// Least aggressive (largest) way count requested during the streak.
    shrink_floor: Vec<u8>,
    /// Per-interval decision log (drives Figure 2).
    pub log: Vec<IntervalRecord>,
}

impl EsteemController {
    pub fn new(params: AlgoParams) -> Self {
        Self {
            params,
            next_interval: params.interval_cycles,
            shrink_streak: Vec::new(),
            shrink_floor: Vec::new(),
            log: Vec::new(),
        }
    }

    pub fn params(&self) -> &AlgoParams {
        &self.params
    }

    /// Runs one interval step: Algorithm 1 per module on the ATD counters,
    /// optional `max_step` clamping (extension), mask application, counter
    /// reset, and decision logging.
    pub fn run_interval(&mut self, l2: &mut SetAssocCache, now: u64) -> ControllerAction {
        self.run_interval_traced(l2, now, &Tracer::off())
    }

    /// [`Self::run_interval`] with a trace tap: emits one
    /// [`TraceEvent::ReconfigDecision`] per module (Algorithm 1 inputs
    /// included) and a closing [`TraceEvent::ReconfigApply`].
    pub fn run_interval_traced(
        &mut self,
        l2: &mut SetAssocCache,
        now: u64,
        tracer: &Tracer,
    ) -> ControllerAction {
        debug_assert!(self.due(now));
        self.next_interval += self.params.interval_cycles;

        let modules = l2.geometry().modules;
        if self.shrink_streak.is_empty() {
            self.shrink_streak = vec![0; modules as usize];
            self.shrink_floor = vec![0; modules as usize];
        }
        let global = l2.atd.global_hits();
        let mut decisions = Vec::with_capacity(modules as usize);
        for m in 0..modules {
            // Modules without leader sets fall back to the global profile
            // (degenerate configs only; paper configs always have leaders).
            let hits: &[u64] = if l2.atd.module_has_leaders(m) {
                l2.atd.module_hits(m)
            } else {
                &global
            };
            let raw = algorithm1_explain(
                hits,
                self.params.alpha,
                self.params.a_min,
                self.params.non_lru_guard,
            );
            let want = raw.ways.min(l2.geometry().ways);
            let cur = l2.module_active_ways(m);
            let mi = m as usize;
            let mut apply = want;
            let mut deferred = false;
            if self.params.shrink_confirm && want < cur {
                // Only shrink after SHRINK_CONFIRM_INTERVALS consecutive
                // requests, and then only to the least aggressive of them.
                self.shrink_streak[mi] += 1;
                self.shrink_floor[mi] = self.shrink_floor[mi].max(want);
                if self.shrink_streak[mi] >= SHRINK_CONFIRM_INTERVALS {
                    apply = self.shrink_floor[mi];
                    self.shrink_streak[mi] = 0;
                    self.shrink_floor[mi] = 0;
                } else {
                    apply = cur;
                    deferred = true;
                }
            } else {
                // Growth (or steady state) resets the streak immediately.
                self.shrink_streak[mi] = 0;
                self.shrink_floor[mi] = 0;
            }
            if let Some(step) = self.params.max_step {
                apply = apply.clamp(cur.saturating_sub(step).max(1), cur.saturating_add(step));
            }
            tracer.emit(EventKind::Reconfig, || TraceEvent::ReconfigDecision {
                cycle: now,
                module: m,
                prev_ways: cur,
                want_ways: want,
                applied_ways: apply,
                total_hits: raw.total_hits,
                anomalies: raw.anomalies,
                non_lru: raw.non_lru,
                deferred,
                valid_lines: l2.module_valid_lines(m),
            });
            decisions.push(apply);
        }

        let mut merged = ReconfigOutcome::default();
        for (m, &want) in decisions.iter().enumerate() {
            merged.merge(l2.set_module_active_ways(m as u16, want, now));
        }
        #[cfg(feature = "strict-invariants")]
        for (m, &want) in decisions.iter().enumerate() {
            assert!(
                (1..=l2.geometry().ways).contains(&want),
                "module {m}: decision {want} outside 1..=A"
            );
            assert_eq!(
                l2.module_active_ways(m as u16),
                want,
                "module {m}: applied ways disagree with the decision"
            );
        }
        l2.atd.reset();
        tracer.emit(EventKind::Reconfig, || TraceEvent::ReconfigApply {
            cycle: now,
            slot_transitions: merged.slot_transitions,
            writebacks: merged.writebacks,
            discards: merged.discards,
        });

        self.log.push(IntervalRecord {
            cycle: now,
            ways: decisions,
            active_fraction: l2.active_fraction(),
        });

        ControllerAction {
            slot_transitions: merged.slot_transitions,
            writebacks: merged.writebacks,
            discards: merged.discards,
        }
    }
}

impl CacheController for EsteemController {
    fn name(&self) -> &'static str {
        "esteem"
    }

    fn interval_cycles(&self) -> Option<u64> {
        Some(self.params.interval_cycles)
    }

    fn due(&self, now: u64) -> bool {
        now >= self.next_interval
    }

    fn on_interval(&mut self, ctx: IntervalCtx<'_>) -> ControllerAction {
        self.run_interval_traced(ctx.l2, ctx.now, ctx.tracer)
    }

    fn log(&self) -> &[IntervalRecord] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esteem_cache::CacheGeometry;

    #[test]
    fn paper_worked_example() {
        // Paper §3.1: hits {10816,4645,2140,501,217,113,63,11}, H=18506.
        let hits = [10816u64, 4645, 2140, 501, 217, 113, 63, 11];
        // alpha = 0.97 -> X = 4; alpha = 0.95 -> X = 3 (A_min=1 to expose
        // the raw coverage decision).
        assert_eq!(algorithm1(&hits, 0.97, 1, true), 4);
        assert_eq!(algorithm1(&hits, 0.95, 1, true), 3);
    }

    #[test]
    fn a_min_floor_applies() {
        let hits = [1000u64, 1, 0, 0, 0, 0, 0, 0];
        assert_eq!(algorithm1(&hits, 0.97, 3, true), 3);
        assert_eq!(algorithm1(&hits, 0.97, 5, true), 5);
    }

    /// Regression (differential checker, Algorithm 1 fuzz): a non-LRU
    /// module with `A_min == A` used to get `max(chosen, A-1)` — one way
    /// below the configured floor. The guard may only *raise* the floor.
    #[test]
    fn a_min_floor_holds_under_non_lru_guard() {
        // Anti-recency ramp, A = 4: anomalies trip the guard; a_min = 4
        // must still win over the A-1 clamp.
        assert_eq!(algorithm1(&[195, 120, 36, 220], 0.5, 4, true), 4);
        // A = 2: guard always on (A/4 = 0); a_min = 2 keeps both ways.
        assert_eq!(algorithm1(&[1316, 637], 0.5, 2, true), 2);
        // a_min below A-1 leaves the clamp behavior unchanged.
        assert_eq!(algorithm1(&[195, 120, 36, 220], 0.5, 1, true), 3);
    }

    #[test]
    fn zero_hits_keeps_a_min() {
        let hits = [0u64; 16];
        assert_eq!(algorithm1(&hits, 0.97, 3, true), 3);
    }

    #[test]
    fn non_lru_guard_limits_turnoff() {
        // Anti-monotone histogram: hits grow towards deep positions.
        // 16 positions, anomalies at most steps >= 4 = A/4.
        let hits: Vec<u64> = (0..16u64).collect();
        assert_eq!(algorithm1(&hits, 0.5, 3, true), 15); // A-1
                                                         // Guard disabled (ablation): coverage rule acts alone.
        let free = algorithm1(&hits, 0.5, 3, false);
        assert!(free < 15);
    }

    #[test]
    fn monotone_histogram_not_flagged() {
        let hits = [100u64, 90, 80, 70, 60, 50, 40, 30, 20, 10, 5, 4, 3, 2, 1, 0];
        let d = algorithm1(&hits, 0.97, 3, true);
        assert!(d < 15, "monotone profile must allow deep turn-off, got {d}");
    }

    #[test]
    fn alpha_one_sided_monotonicity() {
        // Larger alpha can never choose fewer ways.
        let hits = [500u64, 300, 150, 80, 40, 20, 10, 5];
        let lo = algorithm1(&hits, 0.90, 1, true);
        let hi = algorithm1(&hits, 0.99, 1, true);
        assert!(hi >= lo);
    }

    #[test]
    fn noise_floor_suppresses_tail_inversions() {
        // Hot MRU with tiny non-monotone wiggles deep in the tail: a
        // literal `<` comparison would count 4 anomalies (= A/4 for
        // A=16) and freeze the module at A-1, but every inversion is
        // below the noise floor max(total/128, 4), so the guard must
        // stay quiet and deep turn-off proceed.
        let hits = [10_000u64, 400, 50, 0, 1, 0, 2, 0, 1, 0, 1, 0, 1, 0, 1, 0];
        let d = algorithm1(&hits, 0.97, 3, true);
        assert!(
            d <= 3,
            "noise-level inversions must not trip the guard: {d}"
        );
        // The same shape with the tail scaled above the floor is a real
        // anti-recency pattern and must trip it.
        let loud = [
            10_000u64, 400, 50, 0, 300, 0, 300, 0, 300, 0, 300, 0, 300, 0, 300, 0,
        ];
        assert_eq!(algorithm1(&loud, 0.97, 3, true), 15, "A-1 clamp");
    }

    #[test]
    fn guard_disabled_ignores_anomalies() {
        // Same loud anti-recency histogram as above; with the guard
        // ablated the coverage rule alone decides (and must reach deep
        // positions to cover alpha of the mass).
        let loud = [
            10_000u64, 400, 50, 0, 300, 0, 300, 0, 300, 0, 300, 0, 300, 0, 300, 0,
        ];
        let guarded = algorithm1(&loud, 0.97, 3, true);
        let free = algorithm1(&loud, 0.97, 3, false);
        assert!(free < guarded, "ablation must allow more turn-off");
        // And with hits concentrated at MRU the two agree exactly.
        let hot = [5_000u64, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(
            algorithm1(&hot, 0.97, 3, true),
            algorithm1(&hot, 0.97, 3, false)
        );
    }

    #[test]
    fn single_way_module() {
        // A = 1: no positions to compare, no anomalies possible; the
        // answer is always the single way regardless of guard or hits.
        assert_eq!(algorithm1(&[0u64], 0.97, 1, true), 1);
        assert_eq!(algorithm1(&[12345u64], 0.97, 1, true), 1);
        assert_eq!(algorithm1(&[7u64], 0.5, 1, false), 1);
    }

    #[test]
    fn tiny_modules_engage_guard_at_zero_anomalies() {
        // For A < 4, A/4 = 0, so with the guard enabled `anomalies >= 0`
        // always holds and the module is permanently treated as non-LRU:
        // the decision clamps to max(A-1, i+1) rather than A_min.
        let hits = [1_000u64, 0];
        assert_eq!(algorithm1(&hits, 0.97, 1, true), 1, "max(A-1, 1) = 1");
        let hits3 = [1_000u64, 0, 0];
        assert_eq!(algorithm1(&hits3, 0.97, 1, true), 2, "max(A-1, 1) = 2");
        // Guard off restores the pure coverage decision.
        assert_eq!(algorithm1(&hits3, 0.97, 1, false), 1);
    }

    #[test]
    fn non_lru_clamp_takes_deeper_of_coverage_and_a_minus_1() {
        // Non-LRU module whose coverage point lands at the last position:
        // max(A-1, i+1) must yield i+1 = A, not A-1.
        let uniform = [100u64; 8]; // inversions nowhere, but force guard
                                   // via an anti-recency ramp instead:
        let ramp: Vec<u64> = (1..=8u64).map(|x| x * 100).collect();
        // 8 positions, anomalies = 7 >= 2 = A/4: non-LRU. Coverage of
        // 0.99 needs all 8 ways; the clamp must not cap it at 7.
        assert_eq!(algorithm1(&ramp, 0.99, 3, true), 8);
        // Uniform histogram: monotone (no strict increase), guard quiet;
        // 0.97 coverage lands at position 8 anyway.
        assert_eq!(algorithm1(&uniform, 0.97, 3, true), 8);
    }

    fn l2() -> SetAssocCache {
        // 4096 sets x 16 ways (4MB), 8 modules, R_s=64.
        let g = CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 8);
        SetAssocCache::new(g, Some(64))
    }

    fn params() -> AlgoParams {
        // Undamped algorithm for the single-interval tests below.
        AlgoParams {
            shrink_confirm: false,
            ..AlgoParams::paper_single_core()
        }
    }

    #[test]
    fn shrink_confirm_delays_and_damps() {
        let mut cache = l2();
        let p = AlgoParams::paper_single_core();
        assert!(p.shrink_confirm);
        let mut ctl = EsteemController::new(p);
        // No hits at all: raw request is A_min=3 every interval, but the
        // shrink only lands after SHRINK_CONFIRM_INTERVALS agreeing
        // intervals.
        ctl.run_interval(&mut cache, 10_000_000);
        ctl.run_interval(&mut cache, 20_000_000);
        for m in 0..8 {
            assert_eq!(cache.module_active_ways(m), 16, "shrink delayed");
        }
        ctl.run_interval(&mut cache, 30_000_000);
        for m in 0..8 {
            assert_eq!(cache.module_active_ways(m), 3);
        }
        // Growth is immediate: cyclic sweeps over 16 blocks of leader set 0
        // put every hit at the deepest LRU position, so Algorithm 1 demands
        // nearly all ways again.
        for lap in 0..100u64 {
            for t in 0..16u64 {
                cache.access(cache.geometry().block_of(t + 1, 0), false, lap);
            }
        }
        ctl.run_interval(&mut cache, 40_000_000);
        assert!(
            cache.module_active_ways(0) > 3,
            "growth must not be delayed"
        );
    }

    #[test]
    fn interval_applies_decisions_and_resets_atd() {
        let mut cache = l2();
        // Hits concentrated at MRU in module 0's leader sets (set 0 is a
        // leader of module 0).
        let b = cache.geometry().block_of(99, 0);
        cache.access(b, false, 0);
        for t in 1..2000u64 {
            cache.access(b, false, t);
        }
        let mut ctl = EsteemController::new(params());
        assert!(ctl.due(10_000_000));
        let out = ctl.run_interval(&mut cache, 10_000_000);
        // All modules shrink to A_min=3.
        for m in 0..8 {
            assert_eq!(cache.module_active_ways(m), 3);
        }
        assert!(out.slot_transitions > 0);
        assert_eq!(cache.atd.global_hits().iter().sum::<u64>(), 0);
        assert_eq!(ctl.log.len(), 1);
        assert!(ctl.log[0].active_fraction < 0.35);
        assert!(!ctl.due(10_000_001));
        assert!(ctl.due(20_000_000));
    }

    #[test]
    fn explain_reports_algorithm_inputs() {
        // Paper worked example: the explained decision carries its inputs.
        let hits = [10816u64, 4645, 2140, 501, 217, 113, 63, 11];
        let d = algorithm1_explain(&hits, 0.97, 1, true);
        assert_eq!(d.ways, 4);
        assert_eq!(d.total_hits, 18506);
        assert!(!d.non_lru);
        assert_eq!(d.ways, algorithm1(&hits, 0.97, 1, true));
        // A loud anti-recency ramp trips the guard and counts inversions.
        let ramp: Vec<u64> = (1..=8u64).map(|x| x * 100).collect();
        let d2 = algorithm1_explain(&ramp, 0.99, 3, true);
        assert!(d2.non_lru);
        assert_eq!(d2.anomalies, 7);
    }

    #[test]
    fn traced_interval_emits_decisions_and_apply() {
        use esteem_trace::{TraceEvent, TraceFilter, Tracer};
        let mut cache = l2();
        let t = Tracer::ring(64, TraceFilter::all());
        // Damped controller: the first interval's shrink requests are
        // deferred, and the events must say so.
        let mut ctl = EsteemController::new(AlgoParams::paper_single_core());
        ctl.run_interval_traced(&mut cache, 10_000_000, &t);
        let evs = t.drain();
        assert_eq!(evs.len(), 9, "8 module decisions + 1 apply");
        for ev in &evs[..8] {
            match ev {
                TraceEvent::ReconfigDecision {
                    cycle,
                    prev_ways,
                    want_ways,
                    applied_ways,
                    deferred,
                    ..
                } => {
                    assert_eq!(*cycle, 10_000_000);
                    assert_eq!(*prev_ways, 16);
                    assert_eq!(*want_ways, 3, "no hits: raw request is A_min");
                    assert_eq!(*applied_ways, 16, "shrink confirmation defers");
                    assert!(*deferred);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match &evs[8] {
            TraceEvent::ReconfigApply {
                slot_transitions, ..
            } => assert_eq!(*slot_transitions, 0, "deferred shrink moves nothing"),
            other => panic!("unexpected {other:?}"),
        }
        // Untraced path is byte-for-byte the same decision sequence.
        let mut plain_cache = l2();
        let mut plain = EsteemController::new(AlgoParams::paper_single_core());
        plain.run_interval(&mut plain_cache, 10_000_000);
        assert_eq!(plain.log, ctl.log);
    }

    #[test]
    fn max_step_limits_change() {
        let mut cache = l2();
        let mut p = params();
        p.max_step = Some(2);
        let mut ctl = EsteemController::new(p);
        // No hits at all: target is A_min=3, but step limits 16 -> 14.
        ctl.run_interval(&mut cache, 10_000_000);
        for m in 0..8 {
            assert_eq!(cache.module_active_ways(m), 14);
        }
        ctl.run_interval(&mut cache, 20_000_000);
        for m in 0..8 {
            assert_eq!(cache.module_active_ways(m), 12);
        }
    }

    #[test]
    fn interval_outcome_counts_flushes() {
        let mut cache = l2();
        // Dirty-fill every way of a follower set in module 0 (set 1).
        for t in 0..16u64 {
            cache.access(cache.geometry().block_of(t + 1, 1), true, 0);
        }
        let mut ctl = EsteemController::new(params());
        let out = ctl.run_interval(&mut cache, 10_000_000);
        // 13 ways turned off in set 1, all dirty.
        assert!(out.writebacks >= 13);
        assert_eq!(out.discards + out.writebacks, out.writebacks + out.discards);
    }
}
