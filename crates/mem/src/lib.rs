//! Main-memory timing model for the ESTEEM (HPDC'14) reproduction.
//!
//! The paper (§6.1) models main memory as a 220-cycle-latency device with a
//! bandwidth of 10 GB/s (single-core) or 15 GB/s (dual-core) and "memory
//! queue contention is also modeled". We reproduce that with:
//!
//! * a fixed access latency,
//! * a per-line channel *service time* derived from the bandwidth
//!   (`line_bytes / bandwidth`, in cycles), and
//! * a deterministic utilization-based queueing delay, computed per
//!   measurement window from the previous window's demand (same
//!   one-window-lag scheme as the L2 bank-contention model, see
//!   `esteem-edram::contention`).

pub mod queue;

pub use queue::ChannelQueue;

/// Static configuration of the memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Uncontended access latency in core cycles (paper: 220).
    pub latency_cycles: u64,
    /// Channel bandwidth in bytes per second (paper: 10e9 / 15e9).
    pub bandwidth_bytes_per_sec: f64,
    /// Core clock in Hz (paper: 2 GHz).
    pub clock_hz: f64,
    /// Transfer granularity — one cache line (64 B).
    pub line_bytes: u32,
}

impl MemConfig {
    /// The paper's single-core memory system: 220 cycles, 10 GB/s, 2 GHz.
    pub fn paper_single_core() -> Self {
        Self {
            latency_cycles: 220,
            bandwidth_bytes_per_sec: 10.0e9,
            clock_hz: 2.0e9,
            line_bytes: 64,
        }
    }

    /// The paper's dual-core memory system: 220 cycles, 15 GB/s.
    pub fn paper_dual_core() -> Self {
        Self {
            bandwidth_bytes_per_sec: 15.0e9,
            ..Self::paper_single_core()
        }
    }

    /// Channel occupancy of one line transfer, in core cycles.
    pub fn service_cycles(&self) -> f64 {
        f64::from(self.line_bytes) / self.bandwidth_bytes_per_sec * self.clock_hz
    }
}

/// Lifetime counters of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand fills (L2 misses).
    pub reads: u64,
    /// Write-backs of dirty L2 lines (including reconfiguration flushes).
    pub writes: u64,
}

impl MemStats {
    /// The paper's `A_MM`: every access, read or write.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The main memory device: fixed latency + queueing from channel load.
#[derive(Debug, Clone)]
pub struct MainMemory {
    cfg: MemConfig,
    queue: ChannelQueue,
    pub stats: MemStats,
}

impl MainMemory {
    /// `window_cycles` is the contention measurement window (the system
    /// simulator uses one retention period, keeping all window clocks
    /// aligned).
    pub fn new(cfg: MemConfig, window_cycles: u64) -> Self {
        let service = cfg.service_cycles();
        Self {
            cfg,
            queue: ChannelQueue::new(service, window_cycles),
            stats: MemStats::default(),
        }
    }

    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// A demand read (L2 miss fill). Returns the total latency in cycles
    /// (fixed latency + modelled queueing delay).
    pub fn read(&mut self) -> f64 {
        self.stats.reads += 1;
        self.cfg.latency_cycles as f64 + self.queue.access()
    }

    /// A write-back. Writes are posted (buffered) — they add channel load
    /// but do not stall the core, so no latency is returned.
    pub fn write(&mut self) {
        self.stats.writes += 1;
        self.queue.access();
    }

    /// Closes contention windows up to `now` (call at window boundaries).
    pub fn roll_window(&mut self, now: u64) {
        self.queue.roll_window(now);
    }

    /// Current modelled queue delay per access (diagnostics).
    pub fn current_queue_delay(&self) -> f64 {
        self.queue.current_delay()
    }
}

impl esteem_stats::StatsSource for MainMemory {
    /// Registers memory traffic counters (`reads`, `writes`) and the
    /// current modelled queue delay into the stats tree.
    fn collect(&self, out: &mut esteem_stats::Scope<'_>) {
        out.counter("reads", self.stats.reads);
        out.counter("writes", self.stats.writes);
        out.gauge("queue_delay", self.current_queue_delay());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_service_time() {
        // 64 B / 10 GB/s * 2 GHz = 12.8 cycles.
        let c = MemConfig::paper_single_core();
        assert!((c.service_cycles() - 12.8).abs() < 1e-9);
        // 64 B / 15 GB/s * 2 GHz ~= 8.533 cycles.
        let d = MemConfig::paper_dual_core();
        assert!((d.service_cycles() - 8.533333).abs() < 1e-3);
    }

    #[test]
    fn uncontended_read_is_fixed_latency() {
        let mut m = MainMemory::new(MemConfig::paper_single_core(), 100_000);
        assert_eq!(m.read(), 220.0);
        assert_eq!(m.stats.reads, 1);
    }

    #[test]
    fn writes_count_but_do_not_stall() {
        let mut m = MainMemory::new(MemConfig::paper_single_core(), 100_000);
        m.write();
        assert_eq!(m.stats.writes, 1);
        assert_eq!(m.stats.total_accesses(), 1);
    }

    #[test]
    fn heavy_load_increases_read_latency() {
        let mut m = MainMemory::new(MemConfig::paper_single_core(), 10_000);
        // Saturate the channel: 700 accesses x 12.8 cycles ~= 90% util.
        for _ in 0..700 {
            m.read();
        }
        m.roll_window(10_000);
        let loaded = m.read();
        assert!(
            loaded > 250.0,
            "expected visible queueing at 90% channel load, got {loaded}"
        );
        // An idle window brings latency back down.
        m.roll_window(20_000);
        assert!(m.read() < loaded);
    }
}
