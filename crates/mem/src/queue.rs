//! Utilization-based channel queueing (one-window-lag, deterministic).

/// Deterministic queueing model of a single memory channel.
///
/// Accesses during window *k* are counted; at the window boundary the
/// utilization `rho = accesses * service / window` determines the mean
/// M/D/1-shaped waiting time charged to every access in window *k+1*:
/// `delay = service * rho / (2 * (1 - rho))`, with `rho` capped at 0.98.
#[derive(Debug, Clone)]
pub struct ChannelQueue {
    service_cycles: f64,
    window_cycles: u64,
    util_cap: f64,
    cur_accesses: u64,
    delay: f64,
    last_util: f64,
    next_boundary: u64,
}

impl ChannelQueue {
    pub fn new(service_cycles: f64, window_cycles: u64) -> Self {
        assert!(service_cycles > 0.0 && window_cycles > 0);
        Self {
            service_cycles,
            window_cycles,
            util_cap: 0.98,
            cur_accesses: 0,
            delay: 0.0,
            last_util: 0.0,
            next_boundary: window_cycles,
        }
    }

    /// Records one channel access; returns the modelled queueing delay.
    #[inline]
    pub fn access(&mut self) -> f64 {
        self.cur_accesses += 1;
        self.delay
    }

    /// Closes any window boundaries `<= now`.
    pub fn roll_window(&mut self, now: u64) {
        if now < self.next_boundary {
            return;
        }
        let mut windows = 0u64;
        while self.next_boundary <= now {
            self.next_boundary += self.window_cycles;
            windows += 1;
        }
        let span = (windows * self.window_cycles) as f64;
        let rho = (self.cur_accesses as f64 * self.service_cycles / span).min(self.util_cap);
        self.delay = self.service_cycles * rho / (2.0 * (1.0 - rho));
        self.last_util = rho;
        self.cur_accesses = 0;
    }

    pub fn current_delay(&self) -> f64 {
        self.delay
    }

    pub fn last_utilization(&self) -> f64 {
        self.last_util
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_idle_channel_negligible_delay() {
        let mut q = ChannelQueue::new(12.8, 1000);
        assert_eq!(q.access(), 0.0); // first window always free
        q.roll_window(1000);
        // One access in 1000 cycles: rho ~= 0.013, delay well under a cycle.
        assert!(q.current_delay() < 0.1);
        // A truly empty window gives exactly zero.
        q.roll_window(2000);
        assert_eq!(q.current_delay(), 0.0);
    }

    #[test]
    fn delay_grows_superlinearly_with_load() {
        let mk = |n: u64| {
            let mut q = ChannelQueue::new(10.0, 1000);
            for _ in 0..n {
                q.access();
            }
            q.roll_window(1000);
            q.current_delay()
        };
        let d25 = mk(25); // rho = 0.25
        let d50 = mk(50); // rho = 0.50
        let d90 = mk(90); // rho = 0.90
        assert!(d25 > 0.0);
        assert!(d50 > 2.0 * d25, "queueing must be convex");
        assert!(d90 > 3.0 * d50);
    }

    #[test]
    fn utilization_capped() {
        let mut q = ChannelQueue::new(10.0, 100);
        for _ in 0..1000 {
            q.access();
        }
        q.roll_window(100);
        assert!(q.last_utilization() <= 0.98 + 1e-12);
        assert!(q.current_delay().is_finite());
    }

    #[test]
    fn multi_window_roll_normalizes_span() {
        let mut q = ChannelQueue::new(10.0, 100);
        for _ in 0..10 {
            q.access();
        }
        // Rolling across 10 windows: same 10 accesses spread over 1000
        // cycles -> rho 0.1, small delay.
        q.roll_window(1000);
        assert!((q.last_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_queue_charges_nothing() {
        let mut q = ChannelQueue::new(10.0, 100);
        assert_eq!(q.current_delay(), 0.0);
        assert_eq!(q.last_utilization(), 0.0);
        // Rolling windows with no traffic never invents delay.
        for w in 1..=5 {
            q.roll_window(w * 100);
            assert_eq!(q.current_delay(), 0.0);
            assert_eq!(q.last_utilization(), 0.0);
        }
    }

    #[test]
    fn delay_lags_by_exactly_one_window() {
        let mut q = ChannelQueue::new(10.0, 100);
        // Window 0: heavy traffic, but charged at window 0's (zero) rate.
        for _ in 0..8 {
            assert_eq!(q.access(), 0.0);
        }
        q.roll_window(100);
        // Window 1: every access pays window 0's utilization...
        let d1 = q.access();
        assert!(d1 > 0.0, "window-1 accesses must see window-0 load");
        q.roll_window(200);
        // ...and window 2 pays window 1's (one light access), not
        // window 0's (eight) — the lag is one window, not cumulative.
        let d2 = q.access();
        assert!(d2 < d1);
    }

    #[test]
    fn exact_mdd1_delay_at_half_load() {
        // rho = 0.5 exactly: delay = s * rho / (2 (1 - rho)) = s / 2.
        let mut q = ChannelQueue::new(10.0, 1000);
        for _ in 0..50 {
            q.access();
        }
        q.roll_window(1000);
        assert!((q.last_utilization() - 0.5).abs() < 1e-12);
        assert!((q.current_delay() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_is_inclusive_and_roll_is_idempotent() {
        let mut q = ChannelQueue::new(10.0, 100);
        for _ in 0..10 {
            q.access();
        }
        // One cycle short of the boundary: the window stays open.
        q.roll_window(99);
        assert_eq!(q.current_delay(), 0.0);
        // Exactly on the boundary: it closes.
        q.roll_window(100);
        let d = q.current_delay();
        assert!(d > 0.0);
        // Re-rolling at the same `now` must not close another (empty)
        // window and wipe the charged delay.
        q.roll_window(100);
        assert_eq!(q.current_delay(), d);
    }

    #[test]
    fn overload_delay_is_bounded_by_the_cap() {
        // At the 0.98 utilization cap the worst-case delay is
        // s * 0.98 / (2 * 0.02) = 24.5 * s, no matter the burst size.
        let bound = 10.0 * 24.5 + 1e-9;
        for burst in [200, 2_000, 2_000_000] {
            let mut q = ChannelQueue::new(10.0, 100);
            for _ in 0..burst {
                q.access();
            }
            q.roll_window(100);
            assert!(q.current_delay() <= bound);
            assert!(q.current_delay() > 10.0, "overload must hurt");
        }
    }

    #[test]
    fn long_idle_gap_clears_stale_load() {
        let mut q = ChannelQueue::new(10.0, 100);
        for _ in 0..90 {
            q.access();
        }
        q.roll_window(100);
        assert!(q.current_delay() > 0.0);
        // A long idle stretch (many windows, zero accesses) must reset
        // the charged delay, however large `now` jumps.
        q.roll_window(1_000_000);
        assert_eq!(q.current_delay(), 0.0);
        assert_eq!(q.last_utilization(), 0.0);
    }
}
