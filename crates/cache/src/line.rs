//! Per-line state.

/// State of one cache line (block) slot.
///
/// `last_update` records the cycle at which the line contents were last
/// "written into the cell array" — a fill, a write hit, **or a refresh**.
/// It is the quantity the eDRAM retention clock runs against: the line's
/// charge is stale once `now - last_update >= retention_period`. Read hits
/// also update it because an eDRAM read internally rewrites the cell
/// (destructive read + restore), which is the property Refrint's polyphase
/// policies exploit ("on a read or a write, an eDRAM cache block is
/// automatically refreshed", paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Line {
    pub tag: u64,
    pub valid: bool,
    pub dirty: bool,
    /// Cycle of the last charge-restoring operation (fill/hit/refresh).
    pub last_update: u64,
}

impl Line {
    /// An invalid (empty) slot.
    pub const EMPTY: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        last_update: 0,
    };

    /// Resets to the empty state (used when a way is power-gated).
    pub fn invalidate(&mut self) {
        *self = Line::EMPTY;
    }

    /// Installs a new block.
    pub fn fill(&mut self, tag: u64, write: bool, now: u64) {
        self.tag = tag;
        self.valid = true;
        self.dirty = write;
        self.last_update = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_invalidate() {
        let mut l = Line::EMPTY;
        assert!(!l.valid);
        l.fill(0x42, true, 100);
        assert!(l.valid && l.dirty);
        assert_eq!(l.tag, 0x42);
        assert_eq!(l.last_update, 100);
        l.invalidate();
        assert_eq!(l, Line::EMPTY);
    }
}
