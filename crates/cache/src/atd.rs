//! Embedded auxiliary tag directory (ATD) profiling via set sampling.
//!
//! Paper §3.2: profiling data for Algorithm 1 comes from *leader sets* —
//! every `R_s`-th set of the cache. The ATD is embedded in the main tag
//! directory: leader sets are ordinary sets that simply (a) never undergo
//! reconfiguration (all `A` ways stay active) and (b) feed the
//! `nL2Hit[m][pos]` counters, credited to the module the leader set
//! belongs to. Counters are read and reset once per interval by the energy
//! saving algorithm.

/// Per-interval, per-module, per-LRU-position hit counters.
#[derive(Debug, Clone)]
pub struct AtdCounters {
    modules: u16,
    ways: u8,
    /// `hits[m * ways + pos]`.
    hits: Vec<u64>,
    /// Leader-set count per module (0 possible only for degenerate configs).
    leaders_per_module: Vec<u32>,
}

impl AtdCounters {
    /// `leader_stride` is the paper's `R_s`; `None` means the cache has no
    /// leader sampling at all (the L1s), so every module reports zero
    /// leaders. (A sentinel stride would wrongly count set 0 as a leader
    /// and make `module_has_leaders(0)` claim profiling data that never
    /// arrives — found by the differential checker, see `crates/check`.)
    pub fn new(
        modules: u16,
        ways: u8,
        sets: u32,
        sets_per_module: u32,
        leader_stride: Option<u32>,
    ) -> Self {
        let mut leaders_per_module = vec![0u32; modules as usize];
        if let Some(stride) = leader_stride {
            assert!(stride >= 1, "leader stride must be >= 1");
            let mut set = 0;
            while set < sets {
                leaders_per_module[(set / sets_per_module) as usize] += 1;
                set += stride;
            }
        }
        Self {
            modules,
            ways,
            hits: vec![0; modules as usize * ways as usize],
            leaders_per_module,
        }
    }

    #[inline]
    pub fn record_hit(&mut self, module: u16, pos: u8) {
        self.hits[module as usize * self.ways as usize + pos as usize] += 1;
    }

    /// Hit histogram of one module for the current interval.
    pub fn module_hits(&self, module: u16) -> &[u64] {
        let w = self.ways as usize;
        &self.hits[module as usize * w..(module as usize + 1) * w]
    }

    /// Sum of the hit histograms of *all* modules — the fallback profile
    /// used for modules that contain no leader set.
    pub fn global_hits(&self) -> Vec<u64> {
        let w = self.ways as usize;
        let mut out = vec![0u64; w];
        for m in 0..self.modules as usize {
            for (p, o) in out.iter_mut().enumerate() {
                *o += self.hits[m * w + p];
            }
        }
        out
    }

    pub fn module_has_leaders(&self, module: u16) -> bool {
        self.leaders_per_module[module as usize] > 0
    }

    pub fn leaders_in_module(&self, module: u16) -> u32 {
        self.leaders_per_module[module as usize]
    }

    /// Clears all counters (end of interval).
    pub fn reset(&mut self) {
        self.hits.fill(0);
    }

    /// Disjoint mutable views of each module's hit histogram (`ways`
    /// entries per module, in module order) — the batch kernel's per-module
    /// shard split of the counters.
    pub(crate) fn module_hits_chunks_mut(&mut self) -> std::slice::ChunksMut<'_, u64> {
        self.hits.chunks_mut(self.ways as usize)
    }

    pub fn modules(&self) -> u16 {
        self.modules
    }

    pub fn ways(&self) -> u8 {
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_distribution_paper_defaults() {
        // 4MB L2: 4096 sets, 8 modules (single-core default), R_s = 64
        // => 64 leader sets, 8 per module.
        let atd = AtdCounters::new(8, 16, 4096, 512, Some(64));
        for m in 0..8 {
            assert_eq!(atd.leaders_in_module(m), 8);
            assert!(atd.module_has_leaders(m));
        }
    }

    #[test]
    fn one_leader_per_module_edge() {
        // 32 modules, R_s = 128, 4096 sets: 32 leaders, 1 per module.
        let atd = AtdCounters::new(32, 16, 4096, 128, Some(128));
        for m in 0..32 {
            assert_eq!(atd.leaders_in_module(m), 1);
        }
    }

    #[test]
    fn leaderless_modules_detected() {
        // R_s = 256 with 64-set modules: only every 4th module has a leader.
        let atd = AtdCounters::new(64, 16, 4096, 64, Some(256));
        let with: u32 = (0..64).map(|m| u32::from(atd.module_has_leaders(m))).sum();
        assert_eq!(with, 16);
        assert!(atd.module_has_leaders(0));
        assert!(!atd.module_has_leaders(1));
    }

    #[test]
    fn record_and_reset() {
        let mut atd = AtdCounters::new(2, 4, 64, 32, Some(16));
        atd.record_hit(0, 0);
        atd.record_hit(0, 0);
        atd.record_hit(1, 3);
        assert_eq!(atd.module_hits(0), &[2, 0, 0, 0]);
        assert_eq!(atd.module_hits(1), &[0, 0, 0, 1]);
        assert_eq!(atd.global_hits(), vec![2, 0, 0, 1]);
        atd.reset();
        assert_eq!(atd.global_hits(), vec![0, 0, 0, 0]);
    }

    /// Regression (differential checker, repro `div-0-1`): with no leader
    /// stride there are no leader sets anywhere — module 0 used to report
    /// one phantom leader because the sentinel `u32::MAX` stride still
    /// counted set 0.
    #[test]
    fn no_stride_means_no_leaders() {
        let atd = AtdCounters::new(4, 4, 64, 16, None);
        for m in 0..4 {
            assert_eq!(atd.leaders_in_module(m), 0);
            assert!(!atd.module_has_leaders(m));
        }
    }
}
