//! Batched access kernel over the struct-of-arrays cache storage, with
//! deterministic per-module sharding.
//!
//! [`SetAssocCache::access_batch`] performs a whole block of demand
//! accesses in one call. It is *state-equivalent* to issuing the same
//! accesses one-by-one through [`SetAssocCache::access`], with one
//! deliberate difference: the lifetime [`crate::CacheStats`] counters are
//! **deferred** into the returned [`BatchOutcome`] instead of being
//! applied to the cache. Callers either fold the aggregates back in one go
//! ([`SetAssocCache::commit_batch_stats`]) or, like the system simulator,
//! apply them per consumed access
//! ([`SetAssocCache::apply_access_stats`]) so counters stay exact even
//! when a prefetched block is only partially consumed.
//!
//! Sharding: modules are contiguous, disjoint set ranges, and every piece
//! of per-access mutable state (tags, valid/dirty bitmasks, retention
//! clocks, recency orders, per-module ATD histograms, the module's way
//! count) splits cleanly along module boundaries. Accesses are therefore
//! grouped by module and processed module-by-module, preserving program
//! order *within* each module — which is exactly the order that matters,
//! because accesses to different modules touch disjoint state and their
//! only shared effects (counter sums) are commutative integer additions.
//! That argument is also what makes
//! [`SetAssocCache::access_batch_threaded`] deterministic at any thread
//! count: each worker owns one module's shard (`split_at_mut`-style
//! disjoint borrows, no locks on the data), results are scattered back by
//! input index, and aggregates are merged in fixed module order.

use esteem_par::{parallel_map_with, ParConfig};

use crate::cache::{full_mask, AccessOutcome, LeaderRule, SetAssocCache, SetBits};
use crate::config::CacheGeometry;
use crate::lru::{self, OrderShard};
use crate::BlockAddr;

/// Compact per-access outcome of [`SetAssocCache::access_batch_l1`]:
/// everything the simulator's consume path needs from an L1 access, in
/// one byte instead of the 40-byte [`AccessOutcome`]. Bit 7 flags a miss,
/// bit 6 flags a dirty eviction (whose block address travels in the
/// kernel's side `writebacks` vector, in access order), bits 0..6 hold
/// the recency position of a hit. At the front end's buffer depths the
/// byte-sized record is the difference between the prefetch block staying
/// CPU-cache-resident and streaming through DRAM every refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Rec(u8);

impl L1Rec {
    const MISS_BIT: u8 = 0x80;
    const WB_BIT: u8 = 0x40;

    /// A hit whose line sat at recency position `pos` (0 = MRU).
    #[inline]
    pub fn hit_at(pos: u8) -> Self {
        debug_assert!(pos < 0x40);
        Self(pos)
    }

    /// A miss; `writeback` marks a dirty eviction.
    #[inline]
    pub fn miss(writeback: bool) -> Self {
        Self(Self::MISS_BIT | if writeback { Self::WB_BIT } else { 0 })
    }

    #[inline]
    pub fn hit(self) -> bool {
        self.0 & Self::MISS_BIT == 0
    }

    /// Recency position of the hit (0 = MRU); meaningless on a miss.
    #[inline]
    pub fn hit_pos(self) -> u8 {
        self.0 & 0x3F
    }

    /// Whether the miss evicted a dirty line (the block address is the
    /// next unconsumed entry of the kernel's `writebacks` vector).
    #[inline]
    pub fn has_writeback(self) -> bool {
        self.0 & Self::WB_BIT != 0
    }
}

/// Packs one `(block, write)` pair into the 8-byte input format of
/// [`SetAssocCache::access_batch_l1`] (write flag in bit 0).
#[inline]
pub fn encode_l1_access(block: BlockAddr, write: bool) -> u64 {
    debug_assert!(block < 1 << 63, "block address overflows the L1 encoding");
    (block << 1) | u64::from(write)
}

/// One queued demand access for the batch kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    pub block: BlockAddr,
    pub write: bool,
    /// Issue cycle, used for the eDRAM retention clocks; ignored when the
    /// cache does not track retention (the L1s).
    pub now: u64,
}

/// Result of one [`SetAssocCache::access_batch`] call: per-access outcomes
/// in input order, plus the batch's *deferred* stats deltas.
///
/// `outcomes` is appended to (never cleared) so a caller can keep a
/// rolling buffer across calls; the aggregate counters likewise accumulate
/// until [`BatchOutcome::clear`]. The scratch vectors keep the kernel
/// allocation-free in steady state.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// One outcome per access, in input order (field-for-field identical
    /// to what the scalar path would have returned).
    pub outcomes: Vec<AccessOutcome>,
    pub hits: u64,
    pub misses: u64,
    pub writes: u64,
    pub writebacks: u64,
    /// Per-LRU-position hit histogram delta (`ways` entries).
    pub pos_hits: Vec<u64>,
    // --- reusable scratch, all cleared/rebuilt per call ---
    sorted_idx: Vec<u32>,
    sorted_acc: Vec<Access>,
    results: Vec<AccessOutcome>,
    counts: Vec<u32>,
    pos_scratch: Vec<u64>,
    bank_scratch: Vec<u64>,
}

impl BatchOutcome {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of outcomes accumulated so far.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Drops accumulated outcomes and zeroes the aggregate deltas
    /// (capacity is kept).
    pub fn clear(&mut self) {
        self.outcomes.clear();
        self.hits = 0;
        self.misses = 0;
        self.writes = 0;
        self.writebacks = 0;
        self.pos_hits.fill(0);
    }
}

/// Outcome placeholder used to pre-size the results buffer.
const EMPTY_OUTCOME: AccessOutcome = AccessOutcome {
    hit: false,
    hit_pos: 0,
    set: 0,
    way: 0,
    bank: 0,
    module: 0,
    leader: false,
    evicted_valid: false,
    writeback: None,
};

/// One module's disjoint mutable slice of the cache, plus its deferred
/// counter deltas. Everything a worker thread needs, nothing shared.
struct ModuleShard<'a> {
    g: CacheGeometry,
    rule: LeaderRule,
    track_retention: bool,
    module: u16,
    first_set: u32,
    /// Enable mask of the module's follower sets.
    active_mask: u64,
    /// All-ways mask (leader sets).
    full: u64,
    tags: &'a mut [u64],
    bits: &'a mut [SetBits],
    last_update: &'a mut [u64],
    order: OrderShard<'a>,
    /// This module's slice of the ATD hit histogram (`ways` entries).
    atd_hits: &'a mut [u64],
    // Deferred deltas (merged under the cache lock-free, in module order).
    hits: u64,
    misses: u64,
    writebacks: u64,
    /// Newly valid lines (batches only fill; they never invalidate).
    valid_delta: u64,
    pos_hits: &'a mut [u64],
    valid_per_bank: &'a mut [u64],
}

impl ModuleShard<'_> {
    /// Mirrors [`SetAssocCache::access`] exactly, on shard-local state,
    /// deferring stats. Any change here must be reflected there (the
    /// `esteem-check` lockstep fuzzer replays every op stream through both
    /// paths to pin the equivalence).
    #[inline]
    fn access(&mut self, acc: Access) -> AccessOutcome {
        let g = self.g;
        let set = g.set_of(acc.block);
        let tag = g.tag_of(acc.block);
        let lset = (set - self.first_set) as usize;
        let leader = self.rule.is_leader(set);
        let mask = if leader { self.full } else { self.active_mask };
        let a = g.ways as usize;
        let base = lset * a;

        let mut cand = self.bits[lset].valid & mask;
        while cand != 0 {
            let way = cand.trailing_zeros() as u8;
            cand &= cand - 1;
            if self.tags[base + way as usize] == tag {
                let pos = self.order.touch_returning_pos(lset, way);
                self.hits += 1;
                self.pos_hits[pos as usize] += 1;
                if leader {
                    self.atd_hits[pos as usize] += 1;
                }
                if acc.write {
                    self.bits[lset].dirty |= 1u64 << way;
                }
                if self.track_retention {
                    self.last_update[base + way as usize] = acc.now;
                }
                #[cfg(feature = "strict-invariants")]
                self.assert_set_invariants(lset, mask);
                return AccessOutcome {
                    hit: true,
                    hit_pos: pos,
                    set,
                    way,
                    bank: g.bank_of(set),
                    module: self.module,
                    leader,
                    evicted_valid: false,
                    writeback: None,
                };
            }
        }

        // Miss: prefer a stale invalid enabled way (searched from the LRU
        // end), else evict the LRU enabled way.
        self.misses += 1;
        let invalid_enabled = !self.bits[lset].valid & mask;
        let victim = if invalid_enabled != 0 {
            self.order
                .find_from_lru(lset, g.ways, |w| invalid_enabled & (1u64 << w) != 0)
        } else {
            self.order.lru_victim(lset, mask, g.ways)
        }
        .expect("a module must always have at least one enabled way");

        let vbit = 1u64 << victim;
        let slot = base + victim as usize;
        let mut writeback = None;
        let evicted_valid = self.bits[lset].valid & vbit != 0;
        if evicted_valid {
            if self.bits[lset].dirty & vbit != 0 {
                writeback = Some(g.block_of(self.tags[slot], set));
                self.writebacks += 1;
            }
        } else {
            self.bits[lset].valid |= vbit;
            self.valid_delta += 1;
            self.valid_per_bank[g.bank_of(set) as usize] += 1;
        }
        self.tags[slot] = tag;
        if acc.write {
            self.bits[lset].dirty |= vbit;
        } else {
            self.bits[lset].dirty &= !vbit;
        }
        if self.track_retention {
            self.last_update[slot] = acc.now;
        }
        self.order.touch(lset, victim);

        #[cfg(feature = "strict-invariants")]
        {
            assert!(mask & vbit != 0, "victim way {victim} is not enabled");
            self.assert_set_invariants(lset, mask);
        }

        AccessOutcome {
            hit: false,
            hit_pos: 0,
            set,
            way: victim,
            bank: g.bank_of(set),
            module: self.module,
            leader,
            evicted_valid,
            writeback,
        }
    }

    /// Processes this shard's accesses in order, writing outcomes to the
    /// matching `results` slots.
    fn run(&mut self, accesses: &[Access], results: &mut [AccessOutcome]) {
        debug_assert_eq!(accesses.len(), results.len());
        for (acc, res) in accesses.iter().zip(results.iter_mut()) {
            *res = self.access(*acc);
        }
    }

    /// Shard-local version of the per-mutation set invariants: the LRU
    /// order is a permutation of the physical ways, no disabled way holds
    /// a valid line, dirty implies valid.
    #[cfg(feature = "strict-invariants")]
    fn assert_set_invariants(&self, lset: usize, mask: u64) {
        let b = self.bits[lset];
        assert_eq!(
            b.valid & !mask,
            0,
            "shard set {lset}: valid line in a disabled way"
        );
        assert_eq!(
            b.dirty & !b.valid,
            0,
            "shard set {lset}: dirty bit on an invalid line"
        );
        let mut seen = 0u64;
        for way in 0..self.g.ways {
            let p = self.order.position_of(lset, way);
            assert!(p < self.g.ways, "shard set {lset}: position {p} >= A");
            assert_eq!(
                seen & (1u64 << p),
                0,
                "shard set {lset}: LRU position {p} duplicated"
            );
            seen |= 1u64 << p;
        }
    }
}

impl SetAssocCache {
    /// Performs a block of demand accesses, appending one outcome per
    /// access (in input order) to `out` and accumulating the batch's stats
    /// deltas there instead of in [`SetAssocCache::stats`] — see the
    /// module docs for why stats are deferred. Cache *state* (tags, LRU,
    /// dirty bits, valid counts, retention clocks, ATD) ends up exactly as
    /// if each access had gone through [`SetAssocCache::access`].
    pub fn access_batch(&mut self, accesses: &[Access], out: &mut BatchOutcome) {
        self.access_batch_threaded(accesses, 1, out);
    }

    /// [`SetAssocCache::access_batch`] with the per-module shards spread
    /// over `threads` worker threads. Results are bit-identical at any
    /// thread count: shards borrow disjoint state, outcomes are scattered
    /// back by input index, and counter merges run in module order on the
    /// calling thread.
    pub fn access_batch_threaded(
        &mut self,
        accesses: &[Access],
        threads: usize,
        out: &mut BatchOutcome,
    ) {
        let g = self.geom;
        let a = g.ways as usize;
        let modules = g.modules as usize;
        if out.pos_hits.len() < a {
            out.pos_hits.resize(a, 0);
        }
        out.writes += accesses.iter().filter(|x| x.write).count() as u64;
        let base = out.outcomes.len();

        if modules == 1 {
            // Single module (every L1, and the smallest L2 configs): one
            // shard covering the whole cache, processed in input order and
            // written straight into `out.outcomes` — the simulator's
            // per-core hot path takes exactly this branch.
            out.outcomes.resize(base + accesses.len(), EMPTY_OUTCOME);
            let mut scratch = std::mem::take(&mut out.bank_scratch);
            scratch.clear();
            scratch.resize(g.banks as usize, 0);
            let mut pos = std::mem::take(&mut out.pos_scratch);
            pos.clear();
            pos.resize(a, 0);
            let mut shard = ModuleShard {
                g,
                rule: self.leader_rule,
                track_retention: self.track_retention,
                module: 0,
                first_set: 0,
                active_mask: full_mask(self.module_ways[0]),
                full: full_mask(g.ways),
                tags: &mut self.tags,
                bits: &mut self.bits,
                last_update: &mut self.last_update,
                order: self
                    .order
                    .shard_views(g.sets as usize)
                    .pop()
                    .expect("one shard"),
                atd_hits: self.atd.module_hits_chunks_mut().next().expect("module 0"),
                hits: 0,
                misses: 0,
                writebacks: 0,
                valid_delta: 0,
                pos_hits: &mut pos,
                valid_per_bank: &mut scratch,
            };
            shard.run(accesses, &mut out.outcomes[base..]);
            out.hits += shard.hits;
            out.misses += shard.misses;
            out.writebacks += shard.writebacks;
            self.valid_lines += shard.valid_delta;
            for (dst, &d) in self.valid_per_bank.iter_mut().zip(scratch.iter()) {
                *dst += d;
            }
            for (dst, &d) in out.pos_hits.iter_mut().zip(pos.iter()) {
                *dst += d;
            }
            out.bank_scratch = scratch;
            out.pos_scratch = pos;
            return;
        }

        // Group accesses by module (stable counting sort, so per-module
        // program order is preserved).
        let n = accesses.len();
        out.counts.clear();
        out.counts.resize(modules, 0);
        for acc in accesses {
            out.counts[g.module_of(g.set_of(acc.block)) as usize] += 1;
        }
        if let Some(h) = &self.shard_metrics {
            // Shard-size imbalance for this batch: max over mean, in
            // percent, across modules that received work (100 = even).
            let max = out.counts.iter().copied().max().unwrap_or(0) as u64;
            let busy = out.counts.iter().filter(|&&c| c > 0).count() as u64;
            if busy > 1 {
                h.record(max * 100 * busy / n as u64);
            }
        }
        let mut offsets = vec![0u32; modules + 1];
        for m in 0..modules {
            offsets[m + 1] = offsets[m] + out.counts[m];
        }
        out.sorted_idx.clear();
        out.sorted_idx.resize(n, 0);
        out.sorted_acc.clear();
        out.sorted_acc.resize(
            n,
            Access {
                block: 0,
                write: false,
                now: 0,
            },
        );
        let mut cursor = offsets.clone();
        for (i, acc) in accesses.iter().enumerate() {
            let m = g.module_of(g.set_of(acc.block)) as usize;
            let k = cursor[m] as usize;
            cursor[m] += 1;
            out.sorted_idx[k] = i as u32;
            out.sorted_acc[k] = *acc;
        }

        // Build one shard per module: disjoint mutable slices of every
        // parallel array, plus disjoint slices of the scratch accumulators.
        let spm = g.sets_per_module() as usize;
        let mut pos = std::mem::take(&mut out.pos_scratch);
        pos.clear();
        pos.resize(modules * a, 0);
        let mut banks = std::mem::take(&mut out.bank_scratch);
        banks.clear();
        banks.resize(modules * g.banks as usize, 0);
        let mut results = std::mem::take(&mut out.results);
        results.clear();
        results.resize(n, EMPTY_OUTCOME);

        {
            let rule = self.leader_rule;
            let track_retention = self.track_retention;
            let full = full_mask(g.ways);
            let order_shards = self.order.shard_views(spm);
            let mut shards: Vec<ModuleShard<'_>> = Vec::with_capacity(modules);
            let mut tags_rest: &mut [u64] = &mut self.tags;
            let mut bits_rest: &mut [SetBits] = &mut self.bits;
            let mut lu_rest: &mut [u64] = &mut self.last_update;
            let mut pos_rest: &mut [u64] = &mut pos;
            let mut banks_rest: &mut [u64] = &mut banks;
            let mut atd_chunks = self.atd.module_hits_chunks_mut();
            for (m, order) in order_shards.into_iter().enumerate() {
                let (tags, tr) = tags_rest.split_at_mut(spm * a);
                tags_rest = tr;
                let (bits, br) = bits_rest.split_at_mut(spm);
                bits_rest = br;
                let (last_update, lr) = lu_rest.split_at_mut(spm * a);
                lu_rest = lr;
                let (pos_hits, pr) = pos_rest.split_at_mut(a);
                pos_rest = pr;
                let (valid_per_bank, vr) = banks_rest.split_at_mut(g.banks as usize);
                banks_rest = vr;
                shards.push(ModuleShard {
                    g,
                    rule,
                    track_retention,
                    module: m as u16,
                    first_set: (m * spm) as u32,
                    active_mask: full_mask(self.module_ways[m]),
                    full,
                    tags,
                    bits,
                    last_update,
                    order,
                    atd_hits: atd_chunks.next().expect("one ATD chunk per module"),
                    hits: 0,
                    misses: 0,
                    writebacks: 0,
                    valid_delta: 0,
                    pos_hits,
                    valid_per_bank,
                });
            }

            // Pair each shard with its slice of the sorted accesses and of
            // the results buffer, then run — inline, or spread over worker
            // threads (each job's state is disjoint, so any schedule
            // produces the same bits).
            let mut acc_rest: &[Access] = &out.sorted_acc;
            let mut res_rest: &mut [AccessOutcome] = &mut results;
            let mut jobs: Vec<(ModuleShard<'_>, &[Access], &mut [AccessOutcome])> =
                Vec::with_capacity(modules);
            for (m, shard) in shards.into_iter().enumerate() {
                let take = out.counts[m] as usize;
                let (acc, ar) = acc_rest.split_at(take);
                acc_rest = ar;
                let (res, rr) = res_rest.split_at_mut(take);
                res_rest = rr;
                jobs.push((shard, acc, res));
            }
            if threads > 1 && jobs.len() > 1 {
                type ShardJob<'a, 'b> = (ModuleShard<'a>, &'b [Access], &'b mut [AccessOutcome]);
                let jobs: Vec<std::sync::Mutex<ShardJob<'_, '_>>> =
                    jobs.into_iter().map(std::sync::Mutex::new).collect();
                let cfg = ParConfig {
                    threads,
                    label: String::new(),
                    progress: false,
                };
                parallel_map_with(&cfg, &jobs, |job| {
                    let mut j = job.lock().expect("shard job lock");
                    let (shard, acc, res) = &mut *j;
                    shard.run(acc, res);
                    (
                        shard.hits,
                        shard.misses,
                        shard.writebacks,
                        shard.valid_delta,
                    )
                })
                .into_iter()
                .for_each(|(h, m, w, v)| {
                    out.hits += h;
                    out.misses += m;
                    out.writebacks += w;
                    self.valid_lines += v;
                });
            } else {
                for (mut shard, acc, res) in jobs {
                    shard.run(acc, res);
                    out.hits += shard.hits;
                    out.misses += shard.misses;
                    out.writebacks += shard.writebacks;
                    self.valid_lines += shard.valid_delta;
                }
            }
        }

        // Merge the scratch accumulators in fixed module order.
        for m in 0..modules {
            for p in 0..a {
                out.pos_hits[p] += pos[m * a + p];
            }
            for b in 0..g.banks as usize {
                self.valid_per_bank[b] += banks[m * g.banks as usize + b];
            }
        }
        // Scatter outcomes back to input order.
        out.outcomes.resize(base + n, EMPTY_OUTCOME);
        for (res, &idx) in results.iter().zip(out.sorted_idx.iter()) {
            out.outcomes[base + idx as usize] = *res;
        }
        out.pos_scratch = pos;
        out.bank_scratch = banks;
        out.results = results;
    }

    /// Folds a batch's deferred stats deltas into the cache's lifetime
    /// counters in one go (the whole-batch consumers: fuzzer replays,
    /// microbenches). The system simulator instead applies stats per
    /// consumed access via [`SetAssocCache::apply_access_stats`].
    pub fn commit_batch_stats(&mut self, out: &BatchOutcome) {
        self.stats.hits += out.hits;
        self.stats.misses += out.misses;
        self.stats.writes += out.writes;
        self.stats.writebacks += out.writebacks;
        for (dst, &d) in self.stats.pos_hits.iter_mut().zip(out.pos_hits.iter()) {
            *dst += d;
        }
    }

    /// Whether this cache qualifies for the compact
    /// [`SetAssocCache::access_batch_l1`] fast path: single module, single
    /// bank, no leader sampling, no retention clock, all ways active, and
    /// a packed recency repr — i.e. every L1 the simulator builds.
    pub fn supports_l1_batch(&self) -> bool {
        self.geom.modules == 1
            && self.geom.banks == 1
            && matches!(self.leader_rule, LeaderRule::None)
            && !self.track_retention
            && self.module_ways[0] == self.geom.ways
            && self.geom.ways <= 16
    }

    /// Specialised [`SetAssocCache::access_batch`] for the L1 shape
    /// ([`SetAssocCache::supports_l1_batch`]): 8-byte packed inputs
    /// ([`encode_l1_access`]), byte-sized [`L1Rec`] outcomes appended to
    /// `out` (dirty-eviction block addresses go to `writebacks`, in access
    /// order), and an inner loop with the leader/ATD/retention/module
    /// branches compiled out. State effects are identical to the scalar
    /// path; lifetime stats are deferred exactly like the general kernel —
    /// apply per consumed access via [`SetAssocCache::apply_rec_stats`].
    pub fn access_batch_l1(
        &mut self,
        encoded: &[u64],
        out: &mut Vec<L1Rec>,
        writebacks: &mut Vec<u64>,
    ) {
        assert!(
            self.supports_l1_batch(),
            "access_batch_l1 called on a non-L1-shaped cache"
        );
        // Dispatch once per batch to a way-count monomorphisation so the
        // tag-compare loop fully unrolls (W = 0 is the dynamic fallback).
        match self.geom.ways {
            2 => self.l1_batch_inner::<2>(encoded, out, writebacks),
            4 => self.l1_batch_inner::<4>(encoded, out, writebacks),
            8 => self.l1_batch_inner::<8>(encoded, out, writebacks),
            16 => self.l1_batch_inner::<16>(encoded, out, writebacks),
            _ => self.l1_batch_inner::<0>(encoded, out, writebacks),
        }
    }

    fn l1_batch_inner<const W: usize>(
        &mut self,
        encoded: &[u64],
        out: &mut Vec<L1Rec>,
        writebacks: &mut Vec<u64>,
    ) {
        let g = self.geom;
        let a = if W == 0 { g.ways as usize } else { W };
        let set_mask = u64::from(g.sets - 1);
        let tag_shift = g.sets.trailing_zeros();
        let full = full_mask(g.ways);
        let tags = &mut self.tags[..];
        let bits = &mut self.bits[..];
        let words = self
            .order
            .packed_words_mut()
            .expect("supports_l1_batch implies the packed recency repr");
        let mut valid_delta = 0u64;
        out.reserve(encoded.len());
        for &enc in encoded {
            let write = enc & 1;
            let block = enc >> 1;
            let set = (block & set_mask) as usize;
            let tag = block >> tag_shift;
            let base = set * a;
            // One load per per-set array; `sb` and `word` live in registers
            // for the whole access and are stored back exactly once below.
            let mut sb = bits[set];
            let mut word = words[set];
            // Branch-free hit detection: compare the tag against every way
            // at once and mask by validity, instead of walking the valid
            // ways with a data-dependent (misprediction-prone) loop.
            let mut eq = 0u64;
            if W != 0 {
                let stags: &[u64; W] = (&tags[base..base + W]).try_into().expect("W ways");
                for (w, &t) in stags.iter().enumerate() {
                    eq |= u64::from(t == tag) << w;
                }
            } else {
                for (w, &t) in tags[base..base + a].iter().enumerate() {
                    eq |= u64::from(t == tag) << w;
                }
            }
            let rec = match (eq & sb.valid).trailing_zeros() {
                64.. => {
                    // Miss: same victim policy as the scalar path — a stale
                    // invalid way searched from the LRU end, else the LRU way
                    // (the full mask makes that the tail nibble directly).
                    let invalid = !sb.valid & full;
                    let mut victim = ((word >> (4 * (a as u32 - 1))) & 0xF) as u8;
                    if invalid != 0 {
                        for p in (0..a as u32).rev() {
                            let w = ((word >> (4 * p)) & 0xF) as u8;
                            if invalid & (1u64 << w) != 0 {
                                victim = w;
                                break;
                            }
                        }
                    }
                    let vbit = 1u64 << victim;
                    let slot = base + victim as usize;
                    let mut wb = false;
                    if sb.valid & vbit != 0 {
                        if sb.dirty & vbit != 0 {
                            writebacks.push((tags[slot] << tag_shift) | set as u64);
                            wb = true;
                        }
                    } else {
                        sb.valid |= vbit;
                        valid_delta += 1;
                    }
                    tags[slot] = tag;
                    if write != 0 {
                        sb.dirty |= vbit;
                    } else {
                        sb.dirty &= !vbit;
                    }
                    word = lru::packed_touch(word, victim);
                    L1Rec::miss(wb)
                }
                way => {
                    let way = way as u8;
                    sb.dirty |= write << way;
                    let (w, pos) = lru::packed_touch_with_pos(word, way);
                    word = w;
                    L1Rec::hit_at(pos)
                }
            };
            bits[set] = sb;
            words[set] = word;
            #[cfg(feature = "strict-invariants")]
            {
                let b = bits[set];
                assert_eq!(b.dirty & !b.valid, 0, "L1 set {set}: dirty invalid line");
                let mut seen = 0u64;
                for w in 0..g.ways {
                    seen |= 1u64 << lru::packed_position_of(words[set], w);
                }
                assert_eq!(seen, full, "L1 set {set}: recency order not a permutation");
            }
            out.push(rec);
        }
        self.valid_lines += valid_delta;
        self.valid_per_bank[0] += valid_delta;
    }

    /// [`SetAssocCache::apply_access_stats`] for the compact fast path:
    /// folds one consumed [`L1Rec`] into the lifetime counters.
    #[inline]
    pub fn apply_rec_stats(&mut self, rec: L1Rec, write: bool) {
        self.stats.writes += u64::from(write);
        if rec.hit() {
            self.stats.hits += 1;
            self.stats.pos_hits[rec.hit_pos() as usize] += 1;
        } else {
            self.stats.misses += 1;
            self.stats.writebacks += u64::from(rec.has_writeback());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drives `ops` through a scalar cache and a batch clone (in blocks),
    /// asserting outcome-for-outcome and state-for-state equivalence.
    fn check_equivalence(
        geom: CacheGeometry,
        leader_stride: Option<u32>,
        track_retention: bool,
        ops: &[(u64, bool)],
        threads: usize,
        block: usize,
    ) {
        let mut scalar = SetAssocCache::new(geom, leader_stride);
        scalar.set_retention_tracking(track_retention);
        let mut batched = scalar.clone();
        let mut out = BatchOutcome::new();
        let mut expected = Vec::new();
        for (i, &(blk, write)) in ops.iter().enumerate() {
            expected.push(scalar.access(blk, write, i as u64));
        }
        for (chunk_no, chunk) in ops.chunks(block).enumerate() {
            let accesses: Vec<Access> = chunk
                .iter()
                .enumerate()
                .map(|(j, &(blk, write))| Access {
                    block: blk,
                    write,
                    now: (chunk_no * block + j) as u64,
                })
                .collect();
            if threads > 1 {
                batched.access_batch_threaded(&accesses, threads, &mut out);
            } else {
                batched.access_batch(&accesses, &mut out);
            }
        }
        batched.commit_batch_stats(&out);
        assert_eq!(out.outcomes, expected, "per-access outcomes diverged");
        assert_eq!(batched.stats, scalar.stats, "stats diverged");
        assert_eq!(batched.valid_lines(), scalar.valid_lines());
        assert_eq!(
            batched.valid_lines_per_bank(),
            scalar.valid_lines_per_bank()
        );
        for set in 0..geom.sets {
            for way in 0..geom.ways {
                assert_eq!(
                    batched.line(set, way),
                    scalar.line(set, way),
                    "line state diverged at set {set} way {way}"
                );
                assert_eq!(
                    batched.lru_position_of(set, way),
                    scalar.lru_position_of(set, way),
                    "LRU order diverged at set {set} way {way}"
                );
            }
        }
        for m in 0..geom.modules {
            assert_eq!(batched.atd.module_hits(m), scalar.atd.module_hits(m));
        }
        batched.assert_invariants();
    }

    /// Address stream with heavy set reuse so hits, misses, evictions and
    /// writebacks all occur.
    fn stream(geom: &CacheGeometry, n: usize, seed: u64) -> Vec<(u64, bool)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let set = (x >> 8) as u32 & (geom.sets - 1);
                let tag = (x >> 40) % (u64::from(geom.ways) * 2 + 2);
                (geom.block_of(tag, set), x & 4 == 0)
            })
            .collect()
    }

    #[test]
    fn single_module_matches_scalar() {
        // The L1 shape: 1 bank, 1 module, no leaders, no retention clock.
        let g = CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1);
        let ops = stream(&g, 4000, 0xBEEF);
        check_equivalence(g, None, false, &ops, 1, 256);
    }

    #[test]
    fn multi_module_matches_scalar() {
        // The L2 shape: leaders, modules, banks, retention clocks.
        let g = CacheGeometry::from_capacity(64 << 10, 8, 64, 4, 8);
        let ops = stream(&g, 6000, 0xD00D);
        check_equivalence(g, Some(8), true, &ops, 1, 512);
    }

    #[test]
    fn threaded_matches_scalar() {
        let g = CacheGeometry::from_capacity(64 << 10, 8, 64, 4, 8);
        let ops = stream(&g, 6000, 0xCAFE);
        for threads in [2, 3, 8] {
            check_equivalence(g, Some(8), true, &ops, threads, 512);
        }
    }

    #[test]
    fn reconfigured_modules_match_scalar() {
        let g = CacheGeometry::from_capacity(64 << 10, 8, 64, 2, 4);
        let ops = stream(&g, 3000, 0xFEED);
        let mut scalar = SetAssocCache::new(g, Some(8));
        let mut batched = scalar.clone();
        // Shrink two modules so follower masks differ per module.
        scalar.set_module_active_ways(1, 3, 0);
        scalar.set_module_active_ways(2, 1, 0);
        batched.set_module_active_ways(1, 3, 0);
        batched.set_module_active_ways(2, 1, 0);
        let mut out = BatchOutcome::new();
        let mut expected = Vec::new();
        for (i, &(blk, write)) in ops.iter().enumerate() {
            expected.push(scalar.access(blk, write, i as u64));
        }
        let accesses: Vec<Access> = ops
            .iter()
            .enumerate()
            .map(|(i, &(blk, write))| Access {
                block: blk,
                write,
                now: i as u64,
            })
            .collect();
        batched.access_batch_threaded(&accesses, 3, &mut out);
        batched.commit_batch_stats(&out);
        assert_eq!(out.outcomes, expected);
        assert_eq!(batched.stats, scalar.stats);
        batched.assert_invariants();
    }

    #[test]
    fn wide_associativity_matches_scalar() {
        // 20 ways exercises the byte-per-position (non-packed) LRU repr.
        let g = CacheGeometry::try_from_capacity(20 * 64 * 64, 20, 64, 2, 4).unwrap();
        let ops = stream(&g, 4000, 0x1234);
        check_equivalence(g, Some(4), true, &ops, 2, 333);
    }

    /// Drives `ops` through a scalar cache and an `access_batch_l1` clone
    /// (in blocks), asserting rec-for-rec, stats and state equivalence.
    fn check_l1_equivalence(geom: CacheGeometry, ops: &[(u64, bool)], block: usize) {
        let mut scalar = SetAssocCache::new(geom, None);
        scalar.set_retention_tracking(false);
        let mut batched = scalar.clone();
        assert!(batched.supports_l1_batch());
        let mut expected = Vec::new();
        for &(blk, write) in ops {
            expected.push(scalar.access(blk, write, 0));
        }
        let mut recs = Vec::new();
        let mut wbs = Vec::new();
        for chunk in ops.chunks(block) {
            let enc: Vec<u64> = chunk
                .iter()
                .map(|&(blk, write)| encode_l1_access(blk, write))
                .collect();
            batched.access_batch_l1(&enc, &mut recs, &mut wbs);
        }
        assert_eq!(recs.len(), expected.len());
        let mut wb_iter = wbs.iter();
        for ((rec, exp), &(_, write)) in recs.iter().zip(expected.iter()).zip(ops.iter()) {
            assert_eq!(rec.hit(), exp.hit, "hit/miss diverged");
            if exp.hit {
                assert_eq!(rec.hit_pos(), exp.hit_pos, "hit position diverged");
            }
            let wb = rec.has_writeback().then(|| *wb_iter.next().expect("wb"));
            assert_eq!(wb, exp.writeback, "writeback diverged");
            batched.apply_rec_stats(*rec, write);
        }
        assert!(wb_iter.next().is_none(), "stray writeback entries");
        assert_eq!(batched.stats, scalar.stats, "stats diverged");
        assert_eq!(batched.valid_lines(), scalar.valid_lines());
        assert_eq!(
            batched.valid_lines_per_bank(),
            scalar.valid_lines_per_bank()
        );
        for set in 0..geom.sets {
            for way in 0..geom.ways {
                assert_eq!(batched.line(set, way), scalar.line(set, way));
                assert_eq!(
                    batched.lru_position_of(set, way),
                    scalar.lru_position_of(set, way),
                    "LRU order diverged at set {set} way {way}"
                );
            }
        }
        batched.assert_invariants();
    }

    #[test]
    fn l1_fast_path_matches_scalar() {
        for ways in [1u8, 2, 3, 4, 8, 13, 16] {
            let g = CacheGeometry::try_from_capacity(u64::from(ways) * 64 * 64, ways, 64, 1, 1)
                .unwrap();
            let ops = stream(&g, 5000, 0xA5A5 + u64::from(ways));
            check_l1_equivalence(g, &ops, 997);
        }
    }

    #[test]
    fn l1_fast_path_eligibility() {
        let mut l1 = SetAssocCache::new(CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1), None);
        l1.set_retention_tracking(false);
        assert!(l1.supports_l1_batch());
        // Retention tracking (the construction default) disqualifies.
        let ret = SetAssocCache::new(CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1), None);
        assert!(!ret.supports_l1_batch());
        // Leader sampling disqualifies.
        let mut led =
            SetAssocCache::new(CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1), Some(8));
        led.set_retention_tracking(false);
        assert!(!led.supports_l1_batch());
        // Multiple modules/banks disqualify.
        let mut l2 = SetAssocCache::new(CacheGeometry::from_capacity(1 << 20, 8, 64, 8, 16), None);
        l2.set_retention_tracking(false);
        assert!(!l2.supports_l1_batch());
        // A deactivated way disqualifies.
        let mut shrunk =
            SetAssocCache::new(CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1), None);
        shrunk.set_retention_tracking(false);
        shrunk.set_module_active_ways(0, 3, 0);
        assert!(!shrunk.supports_l1_batch());
    }

    #[test]
    fn shard_metrics_record_imbalance() {
        use esteem_stats::Histogram;
        use std::sync::Arc;
        let g = CacheGeometry::from_capacity(1 << 20, 8, 64, 8, 16);
        let mut c = SetAssocCache::new(g, Some(64));
        let h = Arc::new(Histogram::new());
        c.set_shard_metrics(Arc::clone(&h));
        let acc: Vec<Access> = stream(&g, 4000, 0xBEEF)
            .iter()
            .enumerate()
            .map(|(i, &(block, write))| Access {
                block,
                write,
                now: i as u64,
            })
            .collect();
        let mut out = BatchOutcome::new();
        c.access_batch(&acc, &mut out);
        let s = h.snapshot();
        assert_eq!(s.count(), 1, "one imbalance sample per batch");
        assert!(s.max() >= 100, "max/mean is at least 100%");
        // The tap must not change outcomes: replay without metrics.
        let mut plain = SetAssocCache::new(g, Some(64));
        let mut out2 = BatchOutcome::new();
        plain.access_batch(&acc, &mut out2);
        assert_eq!(out.outcomes, out2.outcomes);
        assert_eq!((out.hits, out.misses), (out2.hits, out2.misses));
    }

    #[test]
    fn outcomes_append_and_clear() {
        let g = CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1);
        let mut c = SetAssocCache::new(g, None);
        let mut out = BatchOutcome::new();
        let acc = [Access {
            block: 42,
            write: false,
            now: 0,
        }];
        c.access_batch(&acc, &mut out);
        c.access_batch(&acc, &mut out);
        assert_eq!(out.len(), 2);
        assert!(!out.outcomes[0].hit);
        assert!(out.outcomes[1].hit);
        assert_eq!((out.hits, out.misses), (1, 1));
        out.clear();
        assert!(out.is_empty());
        assert_eq!(out.hits, 0);
        assert_eq!(c.stats.hits, 0, "stats are deferred until committed");
    }

    proptest! {
        /// Batch (serial and threaded) equals scalar for arbitrary small
        /// configurations and access streams.
        #[test]
        fn batch_equals_scalar(
            sets_log in 3u32..=6,
            ways in (0usize..8).prop_map(|i| [1u8, 2, 3, 4, 7, 8, 16, 17][i]),
            modules in (0usize..3).prop_map(|i| [1u16, 2, 4][i]),
            banks in (0usize..3).prop_map(|i| [1u8, 2, 4][i]),
            stride in prop_oneof![
                1 => (0u32..1).prop_map(|_| None),
                3 => (0usize..5).prop_map(|i| Some([1u32, 2, 3, 8, 64][i])),
            ],
            track in any::<bool>(),
            threads in 1usize..=4,
            seed in any::<u64>(),
            n in 1usize..400,
            block in 1usize..64,
        ) {
            // sets >= 8 by construction, so modules (<= 4) and banks
            // (<= 4) always divide the set count.
            let sets = 1u32 << sets_log;
            let capacity = u64::from(sets) * u64::from(ways) * 64;
            let g = CacheGeometry::try_from_capacity(capacity, ways, 64, banks, modules).unwrap();
            let ops = stream(&g, n, seed | 1);
            check_equivalence(g, stride, track, &ops, threads, block);
        }
    }
}
