//! Set-associative cache model for the ESTEEM (HPDC'14) reproduction.
//!
//! This crate implements the cache substrate the paper's evaluation relies
//! on (the paper used the cache models inside the Sniper x86-64 simulator):
//!
//! * a banked, set-associative, true-LRU cache with dirty bits and
//!   allocate-on-miss fill policy ([`SetAssocCache`]);
//! * per-*module* way-disable masks — the cache's sets are logically divided
//!   into `M` contiguous modules and each module can have a different number
//!   of active ways (the mechanism ESTEEM reconfigures, paper §3.1);
//! * an auxiliary tag directory (ATD) *embedded in the main tag directory*
//!   via set sampling: every `R_s`-th set is a "leader" set which always
//!   keeps all ways enabled and feeds per-LRU-position hit counters
//!   (paper §3.2, [`atd::AtdCounters`]);
//! * reconfiguration plumbing: shrinking a module discards clean lines and
//!   reports dirty lines for write-back; growing simply enables empty ways
//!   (paper §5).
//!
//! The model is purely functional state + counters: *timing* (bank
//! contention, refresh interference) lives in `esteem-edram`, and *energy*
//! in `esteem-energy`, keeping each concern independently testable.

/// Internal-invariant assertion: a `debug_assert!` in normal builds,
/// promoted to an unconditional `assert!` when the expanding crate is
/// built with its `strict-invariants` feature (the configuration the
/// differential checker `esteem-check` runs under).
///
/// The `cfg` is evaluated at the *expansion site*, so downstream crates
/// (`esteem-edram`, `esteem-core`) declare a `strict-invariants` feature
/// of their own — forwarding to this crate's — and get the promotion for
/// their assertions independently.
#[macro_export]
macro_rules! strict_assert {
    ($($arg:tt)*) => {{
        #[cfg(feature = "strict-invariants")]
        {
            assert!($($arg)*);
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            debug_assert!($($arg)*);
        }
    }};
}

/// Equality flavour of [`strict_assert!`].
#[macro_export]
macro_rules! strict_assert_eq {
    ($($arg:tt)*) => {{
        #[cfg(feature = "strict-invariants")]
        {
            assert_eq!($($arg)*);
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            debug_assert_eq!($($arg)*);
        }
    }};
}

/// Best-effort read prefetch of the cache line holding `*p`. A pure
/// scheduling hint for pointer-chasing batch loops whose future addresses
/// are known several iterations ahead (the polyphase refresh drain); no-op
/// on non-x86 targets. Safety: `_mm_prefetch` never faults and reads no
/// data architecturally, and callers pass references, so the address is
/// always valid.
#[inline(always)]
pub fn prefetch_read<T>(p: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault even on bad addresses,
    // and `p` is a valid reference besides.
    unsafe {
        core::arch::x86_64::_mm_prefetch(
            std::ptr::from_ref(p).cast::<i8>(),
            core::arch::x86_64::_MM_HINT_T0,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

pub mod atd;
pub mod batch;
pub mod cache;
pub mod config;
pub mod line;
pub mod lru;
pub mod stats;

pub use atd::AtdCounters;
pub use batch::{encode_l1_access, Access, BatchOutcome, L1Rec};
pub use cache::{AccessOutcome, ReconfigOutcome, SetAssocCache};
pub use config::CacheGeometry;
pub use line::Line;
pub use stats::CacheStats;

/// A 64-byte-block-granular physical address (i.e. `byte_address >> 6`).
///
/// All crates in this workspace exchange block addresses, never byte
/// addresses; the line size only matters for geometry and energy math.
pub type BlockAddr = u64;
