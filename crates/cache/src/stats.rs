//! Cumulative per-cache counters.

/// Lifetime counters of one cache instance. These never reset during a
/// simulation; interval-scoped profiling lives in [`crate::AtdCounters`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed (and allocated).
    pub misses: u64,
    /// Dirty evictions handed to the next level.
    pub writebacks: u64,
    /// Write accesses (subset of hits+misses).
    pub writes: u64,
    /// Cumulative hits per LRU position (index = recency position).
    pub pos_hits: Vec<u64>,
}

impl CacheStats {
    pub fn new(ways: u8) -> Self {
        Self {
            pos_hits: vec![0; ways as usize],
            ..Default::default()
        }
    }

    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero() {
        let s = CacheStats::new(4);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.pos_hits.len(), 4);
    }
}
