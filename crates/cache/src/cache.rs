//! The banked set-associative cache with per-module way masks.

use crate::atd::AtdCounters;
use crate::config::CacheGeometry;
use crate::line::Line;
use crate::lru;
use crate::stats::CacheStats;
use crate::BlockAddr;

/// Result of one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    pub hit: bool,
    /// LRU recency position of the hit (0 = MRU); meaningless on a miss.
    pub hit_pos: u8,
    pub set: u32,
    pub way: u8,
    pub bank: u8,
    pub module: u16,
    pub leader: bool,
    /// Whether the fill evicted a valid line (clean or dirty); meaningful
    /// only on a miss.
    pub evicted_valid: bool,
    /// Block address of a dirty line evicted by this access's fill, which
    /// the caller must forward to the next memory level.
    pub writeback: Option<BlockAddr>,
}

/// Result of one module reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconfigOutcome {
    /// Dirty lines flushed to the next level by way turn-off.
    pub writebacks: u64,
    /// Clean lines discarded by way turn-off.
    pub discards: u64,
    /// Line slots that changed power state (on->off plus off->on); this is
    /// the paper's `N_L`, charged `E_chi` each in the energy model.
    pub slot_transitions: u64,
}

impl ReconfigOutcome {
    pub fn merge(&mut self, o: ReconfigOutcome) {
        self.writebacks += o.writebacks;
        self.discards += o.discards;
        self.slot_transitions += o.slot_transitions;
    }
}

/// A banked, set-associative, true-LRU, allocate-on-miss cache whose sets
/// are divided into `M` contiguous modules, each with an independently
/// configurable number of active ways. See the crate docs for the role of
/// leader sets.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    pub(crate) geom: CacheGeometry,
    /// `tags[set * ways + way]`; gated by the valid bitmask (a slot keeps
    /// its stale tag after invalidation). Keeping the tags contiguous and
    /// bare lets the hit scan touch 8 bytes per way instead of a whole
    /// line-state struct — this is the simulator's hottest loop.
    pub(crate) tags: Vec<u64>,
    /// Per-set valid/dirty bitmasks, stored together so the hit path pulls
    /// both in one host cache line (they are almost always used together).
    pub(crate) bits: Vec<SetBits>,
    /// `last_update[set * ways + way]`: cycle of the last charge-restoring
    /// operation (fill, hit, or refresh) — the eDRAM retention clock.
    pub(crate) last_update: Vec<u64>,
    /// Recency orders, one packed word (or byte run) per set.
    pub(crate) order: lru::OrderStore,
    /// Active way count per module (`1..=A`). Leader sets ignore this.
    pub(crate) module_ways: Vec<u8>,
    /// Leader-set selection rule, precomputed from the stride.
    pub(crate) leader_rule: LeaderRule,
    /// Interval-scoped profiling counters fed by leader-set hits.
    pub atd: AtdCounters,
    /// Lifetime counters.
    pub stats: CacheStats,
    pub(crate) valid_lines: u64,
    /// Valid lines per bank; consumed by refresh policies that only refresh
    /// valid lines (the counts are exact, maintained incrementally).
    pub(crate) valid_per_bank: Vec<u64>,
    active_slots: u64,
    /// Whether demand accesses record `last_update`. Only refresh policies
    /// that consult per-line retention clocks (the polyphase family and
    /// multi-periodic scrub) need the store; periodic-valid refresh and the
    /// L1s never read it, so the simulator turns it off for them to spare
    /// a random 8-byte store per access on the hot path.
    pub(crate) track_retention: bool,
    /// Optional batch-kernel instrumentation: per multi-module batch,
    /// records the shard-size imbalance (`100 * max / mean` percent over
    /// modules with work) into the shared histogram. `None` (the
    /// default) costs one branch per batch.
    pub(crate) shard_metrics: Option<std::sync::Arc<esteem_stats::Histogram>>,
}

/// One set's way-state bitmasks (bit `w` = physical way `w`).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SetBits {
    pub(crate) valid: u64,
    pub(crate) dirty: u64,
}

/// How leader sets are selected — resolved once at construction so the
/// per-access check is a mask compare for the (universal) power-of-two
/// strides instead of a division.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LeaderRule {
    /// No sampling (the L1s).
    None,
    /// Power-of-two stride: leader iff `set & mask == 0`.
    Pow2 { mask: u32 },
    /// General stride fallback.
    Modulo { stride: u32 },
}

impl LeaderRule {
    #[inline]
    pub(crate) fn is_leader(self, set: u32) -> bool {
        match self {
            LeaderRule::None => false,
            LeaderRule::Pow2 { mask } => set & mask == 0,
            LeaderRule::Modulo { stride } => set.is_multiple_of(stride),
        }
    }
}

impl SetAssocCache {
    /// Builds a cache with all ways active. `leader_stride` is the paper's
    /// `R_s` (e.g. 64); pass `None` for unmonitored caches.
    pub fn new(geom: CacheGeometry, leader_stride: Option<u32>) -> Self {
        geom.validate();
        if let Some(rs) = leader_stride {
            assert!(rs >= 1, "leader stride must be >= 1");
        }
        let slots = geom.total_slots() as usize;
        let order = lru::OrderStore::new(geom.sets, geom.ways);
        let atd = AtdCounters::new(
            geom.modules,
            geom.ways,
            geom.sets,
            geom.sets_per_module(),
            leader_stride,
        );
        let leader_rule = match leader_stride {
            None => LeaderRule::None,
            Some(rs) if rs.is_power_of_two() => LeaderRule::Pow2 { mask: rs - 1 },
            Some(rs) => LeaderRule::Modulo { stride: rs },
        };
        Self {
            geom,
            tags: vec![0; slots],
            bits: vec![SetBits::default(); geom.sets as usize],
            last_update: vec![0; slots],
            order,
            module_ways: vec![geom.ways; geom.modules as usize],
            leader_rule,
            atd,
            stats: CacheStats::new(geom.ways),
            valid_lines: 0,
            valid_per_bank: vec![0; geom.banks as usize],
            active_slots: geom.total_slots(),
            track_retention: true,
            shard_metrics: None,
        }
    }

    /// Attaches the shard-imbalance histogram the multi-module batch
    /// kernel records into (see the field doc). A read-only tap: it
    /// never changes access outcomes or stats.
    pub fn set_shard_metrics(&mut self, h: std::sync::Arc<esteem_stats::Histogram>) {
        self.shard_metrics = Some(h);
    }

    /// Enables or disables per-access `last_update` maintenance. Disable
    /// only when no consumer reads line retention clocks (see the field
    /// doc); [`Self::refresh_line`] still records refreshes regardless.
    pub fn set_retention_tracking(&mut self, on: bool) {
        self.track_retention = on;
    }

    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Whether `set` is a profiling leader set (never reconfigured).
    #[inline]
    pub fn is_leader(&self, set: u32) -> bool {
        self.leader_rule.is_leader(set)
    }

    /// Way-enable mask for a set: full for leaders, else the lowest
    /// `module_ways[m]` ways.
    #[inline]
    pub fn mask_for_set(&self, set: u32) -> u64 {
        let a = self.geom.ways;
        if self.is_leader(set) {
            full_mask(a)
        } else {
            full_mask(self.module_ways[self.geom.module_of(set) as usize])
        }
    }

    /// Active way count of a module (follower sets).
    pub fn module_active_ways(&self, module: u16) -> u8 {
        self.module_ways[module as usize]
    }

    /// Active way counts of every module, in module order.
    pub fn module_ways(&self) -> &[u8] {
        &self.module_ways
    }

    /// Performs one demand access: on a hit, updates recency/dirty state;
    /// on a miss, allocates (evicting the LRU enabled way) and reports any
    /// dirty eviction as a write-back.
    pub fn access(&mut self, block: BlockAddr, write: bool, now: u64) -> AccessOutcome {
        let g = self.geom;
        let set = g.set_of(block);
        let tag = g.tag_of(block);
        let module = g.module_of(set);
        let leader = self.is_leader(set);
        // Inlined `mask_for_set` so the leader test runs once, not twice.
        let mask = if leader {
            full_mask(g.ways)
        } else {
            full_mask(self.module_ways[module as usize])
        };
        let a = g.ways as usize;
        let set_idx = set as usize;
        let base = set_idx * a;

        if write {
            self.stats.writes += 1;
        }

        // Hit scan: tag-compare only the valid *and* enabled ways, walking
        // the candidate bitmask. The tags are bare contiguous u64s, so a
        // full 16-way set costs two cache lines instead of six.
        let mut cand = self.bits[set_idx].valid & mask;
        while cand != 0 {
            let way = cand.trailing_zeros() as u8;
            cand &= cand - 1;
            if self.tags[base + way as usize] == tag {
                let pos = self.order.touch_returning_pos(set_idx, way);
                self.stats.hits += 1;
                self.stats.pos_hits[pos as usize] += 1;
                if leader {
                    self.atd.record_hit(module, pos);
                }
                if write {
                    self.bits[set_idx].dirty |= 1u64 << way;
                }
                if self.track_retention {
                    self.last_update[base + way as usize] = now;
                }
                #[cfg(feature = "strict-invariants")]
                {
                    assert_eq!(leader, self.is_leader(set), "leader rule split-brain");
                    assert_eq!(module, g.module_of(set), "hit credited to wrong module");
                    self.assert_set_invariants(set);
                }
                return AccessOutcome {
                    hit: true,
                    hit_pos: pos,
                    set,
                    way,
                    bank: g.bank_of(set),
                    module,
                    leader,
                    evicted_valid: false,
                    writeback: None,
                };
            }
        }

        // Miss: pick a victim — an invalid enabled way if any (search from
        // the LRU end so refilled ways reuse the stalest slot first),
        // otherwise the LRU enabled way.
        self.stats.misses += 1;
        let invalid_enabled = !self.bits[set_idx].valid & mask;
        let victim = if invalid_enabled != 0 {
            self.order
                .find_from_lru(set_idx, |w| invalid_enabled & (1u64 << w) != 0)
        } else {
            self.order.lru_victim(set_idx, mask)
        }
        .expect("a module must always have at least one enabled way");

        let vbit = 1u64 << victim;
        let slot = base + victim as usize;
        let mut writeback = None;
        let evicted_valid = self.bits[set_idx].valid & vbit != 0;
        if evicted_valid {
            if self.bits[set_idx].dirty & vbit != 0 {
                writeback = Some(g.block_of(self.tags[slot], set));
                self.stats.writebacks += 1;
            }
        } else {
            self.bits[set_idx].valid |= vbit;
            self.valid_lines += 1;
            self.valid_per_bank[g.bank_of(set) as usize] += 1;
        }
        self.tags[slot] = tag;
        if write {
            self.bits[set_idx].dirty |= vbit;
        } else {
            self.bits[set_idx].dirty &= !vbit;
        }
        if self.track_retention {
            self.last_update[slot] = now;
        }
        self.order.touch(set_idx, victim);

        #[cfg(feature = "strict-invariants")]
        {
            assert!(mask & vbit != 0, "victim way {victim} is not enabled");
            self.assert_set_invariants(set);
        }

        AccessOutcome {
            hit: false,
            hit_pos: 0,
            set,
            way: victim,
            bank: g.bank_of(set),
            module,
            leader,
            evicted_valid,
            writeback,
        }
    }

    /// Applies the lifetime-stats deltas of one already-performed access
    /// whose state effects were produced by the batch kernel (which defers
    /// stats; see [`crate::BatchOutcome`]). Incrementing per consumed
    /// access keeps the counters exact even when the caller stops
    /// mid-batch (the simulator's instruction-target break).
    #[inline]
    pub fn apply_access_stats(&mut self, o: &AccessOutcome, write: bool) {
        if write {
            self.stats.writes += 1;
        }
        if o.hit {
            self.stats.hits += 1;
            self.stats.pos_hits[o.hit_pos as usize] += 1;
        } else {
            self.stats.misses += 1;
            if o.writeback.is_some() {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Recency position of `way` in `set` (0 = MRU). Observability for the
    /// differential checker's whole-state comparisons; not on the hot path.
    pub fn lru_position_of(&self, set: u32, way: u8) -> u8 {
        self.order.position_of(set as usize, way)
    }

    /// Non-mutating presence check (no recency update).
    pub fn probe(&self, block: BlockAddr) -> bool {
        let g = self.geom;
        let set = g.set_of(block);
        let tag = g.tag_of(block);
        let base = set as usize * g.ways as usize;
        let mut cand = self.bits[set as usize].valid & self.mask_for_set(set);
        while cand != 0 {
            let way = cand.trailing_zeros() as usize;
            cand &= cand - 1;
            if self.tags[base + way] == tag {
                return true;
            }
        }
        false
    }

    /// Reconfigures module `m` to keep exactly `new_ways` ways active in
    /// its follower sets. Shrinking flushes the lines held in turned-off
    /// ways (clean discarded, dirty counted for write-back, paper §5);
    /// growing enables empty ways. Returns the flush/transition counts the
    /// system simulator charges to traffic and `E_chi`.
    pub fn set_module_active_ways(&mut self, m: u16, new_ways: u8, _now: u64) -> ReconfigOutcome {
        assert!(
            (1..=self.geom.ways).contains(&new_ways),
            "active ways must be in 1..=A"
        );
        let old = self.module_ways[m as usize];
        if old == new_ways {
            return ReconfigOutcome::default();
        }
        #[cfg(feature = "strict-invariants")]
        let valid_before = self.valid_lines;
        let g = self.geom;
        let spm = g.sets_per_module();
        let first_set = u32::from(m) * spm;
        let mut out = ReconfigOutcome::default();
        let mut follower_sets = 0u64;

        for set in first_set..first_set + spm {
            if self.is_leader(set) {
                continue;
            }
            follower_sets += 1;
            if new_ways < old {
                let set_idx = set as usize;
                for way in new_ways..old {
                    let bit = 1u64 << way;
                    if self.bits[set_idx].valid & bit != 0 {
                        if self.bits[set_idx].dirty & bit != 0 {
                            out.writebacks += 1;
                        } else {
                            out.discards += 1;
                        }
                        self.bits[set_idx].valid &= !bit;
                        self.bits[set_idx].dirty &= !bit;
                        self.valid_lines -= 1;
                        self.valid_per_bank[g.bank_of(set) as usize] -= 1;
                    }
                }
            }
        }

        let delta = u64::from(old.abs_diff(new_ways));
        out.slot_transitions = delta * follower_sets;
        let slots_delta = delta * follower_sets;
        if new_ways > old {
            self.active_slots += slots_delta;
        } else {
            self.active_slots -= slots_delta;
        }
        self.module_ways[m as usize] = new_ways;
        #[cfg(feature = "strict-invariants")]
        {
            // Dirty-writeback conservation: every valid line lost to the
            // shrink is accounted as exactly one write-back or discard.
            assert_eq!(
                valid_before - self.valid_lines,
                out.writebacks + out.discards,
                "reconfiguration flush conservation"
            );
            self.assert_invariants();
        }
        out
    }

    /// Number of currently valid lines (all valid lines live in active
    /// ways, because turn-off invalidates).
    pub fn valid_lines(&self) -> u64 {
        self.valid_lines
    }

    /// Exact per-bank valid-line counts.
    pub fn valid_lines_per_bank(&self) -> &[u64] {
        &self.valid_per_bank
    }

    /// Valid lines resident in one module — the data at stake when a
    /// controller shrinks it. Walks the module's sets (a contiguous
    /// range), so this is for interval-boundary observability, not the
    /// access path.
    pub fn module_valid_lines(&self, module: u16) -> u64 {
        let spm = self.geom.sets_per_module();
        let first = u32::from(module) * spm;
        (first..first + spm)
            .map(|set| u64::from(self.bits[set as usize].valid.count_ones()))
            .sum()
    }

    /// Invalidates one line (no write-back; the caller is responsible for
    /// any traffic accounting). Returns `(was_valid, was_dirty)`. Used by
    /// the RPD refresh policy, which eagerly invalidates clean blocks
    /// instead of refreshing them.
    pub fn invalidate_line(&mut self, set: u32, way: u8) -> (bool, bool) {
        let set_idx = set as usize;
        let bit = 1u64 << way;
        let was_valid = self.bits[set_idx].valid & bit != 0;
        let was_dirty = self.bits[set_idx].dirty & bit != 0;
        if was_valid {
            self.bits[set_idx].valid &= !bit;
            self.bits[set_idx].dirty &= !bit;
            self.valid_lines -= 1;
            self.valid_per_bank[self.geom.bank_of(set) as usize] -= 1;
        }
        (was_valid, was_dirty)
    }

    /// Number of powered-on line slots (leader sets count fully).
    pub fn active_slots(&self) -> u64 {
        self.active_slots
    }

    /// Fraction of the cache that is powered on — the paper's `F_A`.
    pub fn active_fraction(&self) -> f64 {
        self.active_slots as f64 / self.geom.total_slots() as f64
    }

    /// Snapshot of one line slot's state. (The storage is struct-of-arrays
    /// internally, so this assembles a [`Line`] view by value; an invalid
    /// slot reports its stale tag/`last_update`.)
    #[inline]
    pub fn line(&self, set: u32, way: u8) -> Line {
        let set_idx = set as usize;
        let slot = set_idx * self.geom.ways as usize + way as usize;
        let bit = 1u64 << way;
        Line {
            tag: self.tags[slot],
            valid: self.bits[set_idx].valid & bit != 0,
            dirty: self.bits[set_idx].dirty & bit != 0,
            last_update: self.last_update[slot],
        }
    }

    /// Restores the charge of one line (a refresh): bumps `last_update`
    /// and returns whether the line was valid (invalid slots are ignored).
    #[inline]
    pub fn refresh_line(&mut self, set: u32, way: u8, now: u64) -> bool {
        let set_idx = set as usize;
        if self.bits[set_idx].valid & (1u64 << way) == 0 {
            return false;
        }
        self.last_update[set_idx * self.geom.ways as usize + way as usize] = now;
        true
    }

    /// Visits every valid line (used by refresh engines).
    pub fn for_each_valid(&self, mut f: impl FnMut(u32, u8, Line)) {
        for set in 0..self.geom.sets {
            let mut bits = self.bits[set as usize].valid;
            while bits != 0 {
                let way = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                f(set, way, self.line(set, way));
            }
        }
    }

    /// Recomputed (non-incremental) valid-line count, for invariant checks.
    #[doc(hidden)]
    pub fn recount_valid(&self) -> u64 {
        self.bits
            .iter()
            .map(|b| u64::from(b.valid.count_ones()))
            .sum()
    }

    /// Full structural self-check (`O(sets * ways)`): every incremental
    /// counter agrees with a recount, every set satisfies
    /// [`Self::assert_set_invariants`]-style local invariants, and the ATD
    /// leader bookkeeping matches the leader rule. Panics on violation.
    ///
    /// Called by the differential checker after every refresh advance and,
    /// under the `strict-invariants` feature, after every reconfiguration.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let g = self.geom;
        let mut valid_total = 0u64;
        let mut per_bank = vec![0u64; g.banks as usize];
        let mut slots = 0u64;
        let mut leaders = vec![0u32; g.modules as usize];
        for set in 0..g.sets {
            let set_idx = set as usize;
            let mask = self.mask_for_set(set);
            slots += u64::from(mask.count_ones());
            if self.is_leader(set) {
                leaders[g.module_of(set) as usize] += 1;
            }
            let b = self.bits[set_idx];
            assert_eq!(
                b.valid & !mask,
                0,
                "set {set}: valid line in a disabled way"
            );
            assert_eq!(
                b.dirty & !b.valid,
                0,
                "set {set}: dirty bit on an invalid line"
            );
            valid_total += u64::from(b.valid.count_ones());
            per_bank[g.bank_of(set) as usize] += u64::from(b.valid.count_ones());
            // The LRU order is a permutation of the physical ways.
            let mut seen = 0u64;
            for way in 0..g.ways {
                let p = self.order.position_of(set_idx, way);
                assert!(p < g.ways, "set {set}: way {way} at position {p} >= A");
                assert_eq!(
                    seen & (1u64 << p),
                    0,
                    "set {set}: LRU position {p} duplicated"
                );
                seen |= 1u64 << p;
            }
        }
        assert_eq!(valid_total, self.valid_lines, "valid-line counter drift");
        assert_eq!(
            per_bank, self.valid_per_bank,
            "per-bank valid counter drift"
        );
        assert_eq!(slots, self.active_slots, "active-slot counter drift");
        for (m, &w) in self.module_ways.iter().enumerate() {
            assert!(
                (1..=g.ways).contains(&w),
                "module {m}: {w} ways out of 1..=A"
            );
        }
        for m in 0..g.modules {
            assert_eq!(
                self.atd.leaders_in_module(m),
                leaders[m as usize],
                "module {m}: ATD leader count disagrees with the leader rule"
            );
        }
    }

    /// One set's local invariants, checked after every mutation under the
    /// `strict-invariants` feature: the LRU order is a permutation of the
    /// physical ways, no disabled way holds a valid line, dirty implies
    /// valid.
    #[cfg(feature = "strict-invariants")]
    fn assert_set_invariants(&self, set: u32) {
        let set_idx = set as usize;
        let mask = self.mask_for_set(set);
        let b = self.bits[set_idx];
        assert_eq!(
            b.valid & !mask,
            0,
            "set {set}: valid line in a disabled way"
        );
        assert_eq!(
            b.dirty & !b.valid,
            0,
            "set {set}: dirty bit on an invalid line"
        );
        let mut seen = 0u64;
        for way in 0..self.geom.ways {
            let p = self.order.position_of(set_idx, way);
            assert!(
                p < self.geom.ways,
                "set {set}: way {way} at position {p} >= A"
            );
            assert_eq!(
                seen & (1u64 << p),
                0,
                "set {set}: LRU position {p} duplicated"
            );
            seen |= 1u64 << p;
        }
    }
}

impl esteem_stats::StatsSource for SetAssocCache {
    /// Registers the cache's lifetime counters and occupancy gauges
    /// (`hits`, `misses`, `writebacks`, `writes`, `valid_lines`,
    /// `active_slots`, `active_fraction`) into the stats tree.
    fn collect(&self, out: &mut esteem_stats::Scope<'_>) {
        out.counter("hits", self.stats.hits);
        out.counter("misses", self.stats.misses);
        out.counter("writebacks", self.stats.writebacks);
        out.counter("writes", self.stats.writes);
        out.gauge("valid_lines", self.valid_lines as f64);
        out.gauge("active_slots", self.active_slots as f64);
        out.gauge("active_fraction", self.active_fraction());
    }
}

#[inline]
pub(crate) fn full_mask(ways: u8) -> u64 {
    if ways >= 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 64 sets x 4 ways x 64B = 16KB, 2 banks, 4 modules, leaders @8.
        let g = CacheGeometry::from_capacity(16 << 10, 4, 64, 2, 4);
        SetAssocCache::new(g, Some(8))
    }

    /// Block address landing in `set` with tag `t`.
    fn blk(c: &SetAssocCache, set: u32, t: u64) -> BlockAddr {
        c.geometry().block_of(t, set)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        let b = blk(&c, 5, 7);
        let r1 = c.access(b, false, 10);
        assert!(!r1.hit);
        assert_eq!(c.valid_lines(), 1);
        let r2 = c.access(b, false, 20);
        assert!(r2.hit);
        assert_eq!(r2.hit_pos, 0);
        assert_eq!(c.line(r2.set, r2.way).last_update, 20);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn module_valid_lines_tracks_fills_and_turnoff() {
        let mut c = small();
        // 4 modules x 16 sets. Fill 3 lines in module 0, 2 in module 2.
        for t in 0..3u64 {
            c.access(blk(&c, 1, 100 + t), false, 0);
        }
        c.access(blk(&c, 33, 7), false, 0);
        c.access(blk(&c, 34, 7), false, 0);
        assert_eq!(c.module_valid_lines(0), 3);
        assert_eq!(c.module_valid_lines(1), 0);
        assert_eq!(c.module_valid_lines(2), 2);
        let per_module: u64 = (0..4).map(|m| c.module_valid_lines(m)).sum();
        assert_eq!(per_module, c.valid_lines());
        // Turn-off invalidates follower lines; set 1 is a follower.
        c.set_module_active_ways(0, 1, 10);
        assert!(c.module_valid_lines(0) <= 1);
    }

    #[test]
    fn lru_eviction_and_writeback() {
        let mut c = small();
        // Fill set 1 with 4 blocks, the first written dirty.
        let b0 = blk(&c, 1, 100);
        c.access(b0, true, 0);
        for t in 101..104 {
            c.access(blk(&c, 1, t), false, t);
        }
        assert_eq!(c.valid_lines(), 4);
        // Fifth distinct block evicts b0 (LRU, dirty) -> writeback of b0.
        let r = c.access(blk(&c, 1, 200), false, 300);
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(b0));
        assert_eq!(c.stats.writebacks, 1);
        assert_eq!(c.valid_lines(), 4);
        // b0 is gone.
        assert!(!c.probe(b0));
    }

    #[test]
    fn hit_positions_follow_recency() {
        let mut c = small();
        let bs: Vec<_> = (0..4).map(|t| blk(&c, 2, 100 + t)).collect();
        for &b in &bs {
            c.access(b, false, 0);
        }
        // bs[3] is MRU, bs[0] is LRU.
        assert_eq!(c.access(bs[0], false, 1).hit_pos, 3);
        // Now bs[0] is MRU.
        assert_eq!(c.access(bs[0], false, 2).hit_pos, 0);
        assert_eq!(c.access(bs[3], false, 3).hit_pos, 1);
    }

    #[test]
    fn shrink_flushes_and_grow_enables() {
        let mut c = small();
        // Touch every way of every set of module 1 (sets 16..32).
        for set in 16..32u32 {
            for t in 0..4u64 {
                c.access(blk(&c, set, 10 + t), t == 0, 0);
            }
        }
        let valid_before = c.valid_lines();
        let out = c.set_module_active_ways(1, 2, 1000);
        // 15 follower sets (set 16 and 24 are leaders: stride 8 -> 16, 24).
        // Sets 16 and 24 are leaders -> 14 follower sets, 2 ways flushed.
        let followers = (16..32u32).filter(|s| !c.is_leader(*s)).count() as u64;
        assert_eq!(out.writebacks + out.discards, followers * 2);
        assert_eq!(out.slot_transitions, followers * 2);
        assert_eq!(c.valid_lines(), valid_before - followers * 2);
        assert_eq!(c.recount_valid(), c.valid_lines());
        assert!(c.active_fraction() < 1.0);

        // Grow back: no flushes, same transition count.
        let out2 = c.set_module_active_ways(1, 4, 2000);
        assert_eq!(out2.writebacks + out2.discards, 0);
        assert_eq!(out2.slot_transitions, followers * 2);
        assert_eq!(c.active_fraction(), 1.0);
    }

    #[test]
    fn leaders_ignore_reconfiguration() {
        let mut c = small();
        c.set_module_active_ways(0, 1, 0);
        // Set 0 is a leader: all four distinct tags must coexist.
        for t in 0..4u64 {
            c.access(blk(&c, 0, 50 + t), false, 0);
        }
        for t in 0..4u64 {
            assert!(c.probe(blk(&c, 0, 50 + t)), "leader set lost a way");
        }
        // Set 1 is a follower with 1 active way: only the last survives.
        for t in 0..4u64 {
            c.access(blk(&c, 1, 50 + t), false, 0);
        }
        assert!(c.probe(blk(&c, 1, 53)));
        assert!(!c.probe(blk(&c, 1, 50)));
    }

    #[test]
    fn leader_hits_feed_atd() {
        let mut c = small();
        let b = blk(&c, 8, 3); // set 8 is a leader (stride 8)
        c.access(b, false, 0);
        c.access(b, false, 1);
        let m = c.geometry().module_of(8);
        assert_eq!(c.atd.module_hits(m)[0], 1);
        // Follower hits must not feed the ATD.
        let bf = blk(&c, 9, 3);
        c.access(bf, false, 0);
        c.access(bf, false, 1);
        let sum: u64 = (0..4u16)
            .map(|mm| c.atd.module_hits(mm).iter().sum::<u64>())
            .sum();
        assert_eq!(sum, 1);
    }

    /// `R_s = 1`: every set is a leader, so reconfiguration has nothing
    /// to act on — no flushes, no slot transitions, and every module
    /// reports a full complement of leaders.
    #[test]
    fn all_leader_stride_makes_reconfig_a_noop() {
        let g = CacheGeometry::from_capacity(16 << 10, 4, 64, 2, 4);
        let mut c = SetAssocCache::new(g, Some(1));
        for t in 0..32u64 {
            c.access(blk(&c, (t % 64) as u32, t), true, t);
        }
        let before = c.valid_lines();
        let out = c.set_module_active_ways(1, 1, 100);
        assert_eq!(out.writebacks, 0);
        assert_eq!(out.discards, 0);
        assert_eq!(out.slot_transitions, 0, "no follower sets to transition");
        assert_eq!(c.valid_lines(), before, "leader contents untouched");
        assert_eq!(c.active_fraction(), 1.0, "all-leader cache never shrinks");
        for m in 0..4 {
            assert_eq!(c.atd.leaders_in_module(m), g.sets_per_module());
        }
    }

    /// `R_s` larger than the set count leaves exactly one leader (set 0,
    /// in module 0); every other module must report zero leaders and fall
    /// back to the global profile.
    #[test]
    fn stride_beyond_sets_leaves_single_leader() {
        let g = CacheGeometry::from_capacity(16 << 10, 4, 64, 2, 4);
        let c = SetAssocCache::new(g, Some(1000));
        assert!(c.is_leader(0));
        assert_eq!((1..64).filter(|&s| c.is_leader(s)).count(), 0);
        assert_eq!(c.atd.leaders_in_module(0), 1);
        assert!(c.atd.module_has_leaders(0));
        for m in 1..4 {
            assert_eq!(c.atd.leaders_in_module(m), 0);
            assert!(!c.atd.module_has_leaders(m));
        }
    }

    /// A leader hit is credited to the module that *owns* the leader set,
    /// not to module 0 (checked here on the last module's leader).
    #[test]
    fn leader_hit_credits_owning_module() {
        let mut c = small();
        // Sets 48..64 belong to module 3; set 56 is a leader (stride 8).
        let set = 56;
        assert!(c.is_leader(set));
        assert_eq!(c.geometry().module_of(set), 3);
        let b = blk(&c, set, 7);
        c.access(b, false, 0);
        let r = c.access(b, false, 1);
        assert!(r.hit && r.leader);
        assert_eq!(c.atd.module_hits(3)[0], 1);
        for m in 0..3 {
            assert_eq!(c.atd.module_hits(m).iter().sum::<u64>(), 0);
        }
        assert_eq!(c.atd.global_hits()[0], 1);
    }

    #[test]
    fn noop_reconfig_is_free() {
        let mut c = small();
        let out = c.set_module_active_ways(2, 4, 0);
        assert_eq!(out, ReconfigOutcome::default());
    }

    #[test]
    fn active_fraction_accounts_leaders() {
        let mut c = small();
        for m in 0..4 {
            c.set_module_active_ways(m, 1, 0);
        }
        // 8 leader sets keep 4 ways; 56 followers keep 1.
        let expect = (8.0 * 4.0 + 56.0 * 1.0) / 256.0;
        assert!((c.active_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn write_sets_dirty_on_hit() {
        let mut c = small();
        let b = blk(&c, 3, 9);
        c.access(b, false, 0);
        let r = c.access(b, true, 1);
        assert!(c.line(r.set, r.way).dirty);
    }

    #[test]
    #[should_panic(expected = "1..=A")]
    fn zero_ways_rejected() {
        let mut c = small();
        c.set_module_active_ways(0, 0, 0);
    }
}
