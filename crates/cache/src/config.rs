//! Cache geometry and address mapping.

use crate::BlockAddr;

/// Static geometry of one cache level.
///
/// Invariants (checked by [`CacheGeometry::validate`]):
/// * `sets` is a power of two;
/// * `modules` divides `sets` and `banks` divides `sets`;
/// * `1 <= ways <= 64` (way masks are stored in a `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity `A`.
    pub ways: u8,
    /// Line (block) size in bytes; 64 throughout the paper.
    pub line_bytes: u32,
    /// Number of independently refreshable banks (paper: 4 for the L2).
    pub banks: u8,
    /// Number of reconfiguration modules `M` the sets are divided into.
    /// `1` for caches that are never reconfigured (the L1s).
    pub modules: u16,
    /// Tag size in bits (paper: 40); only used for storage-overhead math.
    pub tag_bits: u32,
}

impl CacheGeometry {
    /// Geometry from a total capacity. Panics if the capacity is not an
    /// exact multiple of `ways * line_bytes` or violates invariants.
    pub fn from_capacity(
        capacity_bytes: u64,
        ways: u8,
        line_bytes: u32,
        banks: u8,
        modules: u16,
    ) -> Self {
        match Self::try_from_capacity(capacity_bytes, ways, line_bytes, banks, modules) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`Self::from_capacity`].
    pub fn try_from_capacity(
        capacity_bytes: u64,
        ways: u8,
        line_bytes: u32,
        banks: u8,
        modules: u16,
    ) -> Result<Self, String> {
        let line_capacity = u64::from(ways as u32) * u64::from(line_bytes);
        if line_capacity == 0 {
            return Err("ways and line size must be nonzero".into());
        }
        if !capacity_bytes.is_multiple_of(line_capacity) {
            return Err(format!(
                "capacity {capacity_bytes} not a multiple of ways*line"
            ));
        }
        let sets = (capacity_bytes / line_capacity) as u32;
        let g = Self {
            sets,
            ways,
            line_bytes,
            banks,
            modules,
            tag_bits: 40,
        };
        g.check()?;
        Ok(g)
    }

    /// Checks the structural invariants; panics with a descriptive message
    /// on violation. Called by constructors and by [`SetAssocCache::new`].
    ///
    /// [`SetAssocCache::new`]: crate::SetAssocCache::new
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Non-panicking form of [`Self::validate`]: returns a one-line
    /// description of the first violated invariant. CLI front ends and
    /// the job server use this to reject bad configurations gracefully.
    pub fn check(&self) -> Result<(), String> {
        if !self.sets.is_power_of_two() {
            return Err("sets must be a power of two".into());
        }
        if !(1..=64).contains(&self.ways) {
            return Err("ways must be in 1..=64".into());
        }
        if self.modules < 1 {
            return Err("modules must be >= 1".into());
        }
        if !self.sets.is_multiple_of(u32::from(self.modules)) {
            return Err(format!(
                "modules ({}) must divide sets ({})",
                self.modules, self.sets
            ));
        }
        if self.banks < 1 {
            return Err("banks must be >= 1".into());
        }
        if !self.sets.is_multiple_of(u32::from(self.banks)) {
            return Err("banks must divide sets".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size power of two".into());
        }
        Ok(())
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways as u32) * u64::from(self.line_bytes)
    }

    /// Total number of line slots (`S * A`).
    pub fn total_slots(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways)
    }

    /// Sets per module. `modules` divides the power-of-two `sets`, so it
    /// is itself a power of two and this is a shift.
    #[inline]
    pub fn sets_per_module(&self) -> u32 {
        self.sets >> u32::from(self.modules).trailing_zeros()
    }

    /// Set index of a block address (low bits, standard modulo indexing).
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> u32 {
        (block & u64::from(self.sets - 1)) as u32
    }

    /// Tag of a block address (bits above the set index).
    #[inline]
    pub fn tag_of(&self, block: BlockAddr) -> u64 {
        block >> self.sets.trailing_zeros()
    }

    /// Reconstructs the block address from a (tag, set) pair; inverse of
    /// [`Self::set_of`] + [`Self::tag_of`].
    #[inline]
    pub fn block_of(&self, tag: u64, set: u32) -> BlockAddr {
        (tag << self.sets.trailing_zeros()) | u64::from(set)
    }

    /// Bank of a set. Consecutive sets stripe across banks, so uniform set
    /// usage spreads evenly over banks. `banks` divides the power-of-two
    /// `sets`, so the modulo reduces to a mask (this sits on the per-access
    /// hot path).
    #[inline]
    pub fn bank_of(&self, set: u32) -> u8 {
        (set & (u32::from(self.banks) - 1)) as u8
    }

    /// Module owning a set. Modules are *contiguous* ranges of sets, per the
    /// paper's example ("with 4096 sets and 16 modules, each module has 256
    /// sets"). Like [`Self::bank_of`], a shift rather than a division.
    #[inline]
    pub fn module_of(&self, set: u32) -> u16 {
        (set >> self.sets_per_module().trailing_zeros()) as u16
    }

    /// Storage overhead of the ESTEEM counters as a percentage of the cache
    /// size — equation (1) of the paper:
    /// `Overhead = (2A+1) * M * 40 / (S * A * (B + G)) * 100`
    /// with `B` the line size in *bits* and `G` the tag size in bits.
    pub fn esteem_counter_overhead_percent(&self) -> f64 {
        let a = f64::from(self.ways);
        let m = f64::from(self.modules);
        let s = f64::from(self.sets);
        let b_bits = f64::from(self.line_bytes) * 8.0;
        let g_bits = f64::from(self.tag_bits);
        (2.0 * a + 1.0) * m * 40.0 / (s * a * (b_bits + g_bits)) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2_4mb() -> CacheGeometry {
        CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 16)
    }

    #[test]
    fn capacity_round_trip() {
        let g = l2_4mb();
        assert_eq!(g.sets, 4096);
        assert_eq!(g.capacity_bytes(), 4 << 20);
        assert_eq!(g.total_slots(), 65536);
        assert_eq!(g.sets_per_module(), 256);
    }

    #[test]
    fn address_mapping_round_trip() {
        let g = l2_4mb();
        for block in [0u64, 1, 4095, 4096, 0xdead_beef, u64::MAX >> 7] {
            let set = g.set_of(block);
            let tag = g.tag_of(block);
            assert_eq!(g.block_of(tag, set), block);
            assert!(set < g.sets);
        }
    }

    #[test]
    fn modules_are_contiguous() {
        let g = l2_4mb();
        assert_eq!(g.module_of(0), 0);
        assert_eq!(g.module_of(255), 0);
        assert_eq!(g.module_of(256), 1);
        assert_eq!(g.module_of(4095), 15);
    }

    #[test]
    fn banks_stripe() {
        let g = l2_4mb();
        assert_eq!(g.bank_of(0), 0);
        assert_eq!(g.bank_of(1), 1);
        assert_eq!(g.bank_of(4), 0);
    }

    #[test]
    fn paper_overhead_example() {
        // Paper §5: "For a 4MB cache with 16 modules and 16-way
        // set-associativity, the overhead of ESTEEM is found to be 0.06%".
        let g = l2_4mb();
        let pct = g.esteem_counter_overhead_percent();
        assert!(
            (pct - 0.06).abs() < 0.005,
            "overhead {pct} not ~0.06% as in the paper"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        CacheGeometry {
            sets: 3000,
            ways: 16,
            line_bytes: 64,
            banks: 4,
            modules: 8,
            tag_bits: 40,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must divide sets")]
    fn rejects_non_dividing_modules() {
        CacheGeometry {
            sets: 4096,
            ways: 16,
            line_bytes: 64,
            banks: 4,
            modules: 3,
            tag_bits: 40,
        }
        .validate();
    }
}
