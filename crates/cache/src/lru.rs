//! True-LRU recency bookkeeping over the ways of one set.
//!
//! Each set owns a slice `order[0..A]` where `order[p]` is the physical way
//! currently at recency position `p` (position 0 = MRU, position `A-1` =
//! LRU). This representation makes the two quantities ESTEEM needs cheap:
//! the *LRU position of a hit* (a linear scan, `A <= 64`) and the *LRU
//! victim among enabled ways* (scan from the tail).

/// Returns the recency position of `way` within `order`.
///
/// Panics if `way` is not present (set corruption).
#[inline]
pub fn position_of(order: &[u8], way: u8) -> u8 {
    for (p, &w) in order.iter().enumerate() {
        if w == way {
            return p as u8;
        }
    }
    panic!("way {way} missing from LRU order {order:?}");
}

/// Moves `way` to the MRU position, shifting the intervening entries down.
#[inline]
pub fn touch(order: &mut [u8], way: u8) {
    let p = position_of(order, way) as usize;
    // Rotate order[0..=p] right by one so order[0] == way.
    order.copy_within(0..p, 1);
    order[0] = way;
}

/// Picks the least-recently-used way among those enabled in `mask`
/// (bit `w` of `mask` set means physical way `w` is enabled).
///
/// Returns `None` when the mask enables no way (caller bug).
#[inline]
pub fn lru_victim(order: &[u8], mask: u64) -> Option<u8> {
    order
        .iter()
        .rev()
        .copied()
        .find(|&w| mask & (1u64 << w) != 0)
}

/// Canonical initial order: way `w` at position `w`.
pub fn init_order(order: &mut [u8]) {
    for (i, o) in order.iter_mut().enumerate() {
        *o = i as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn touch_moves_to_front() {
        let mut order = [0u8, 1, 2, 3];
        touch(&mut order, 2);
        assert_eq!(order, [2, 0, 1, 3]);
        touch(&mut order, 2);
        assert_eq!(order, [2, 0, 1, 3]);
        touch(&mut order, 3);
        assert_eq!(order, [3, 2, 0, 1]);
    }

    #[test]
    fn victim_respects_mask() {
        let order = [3u8, 2, 0, 1];
        // All enabled: LRU is the tail, way 1.
        assert_eq!(lru_victim(&order, 0b1111), Some(1));
        // Way 1 disabled: next least recent is way 0.
        assert_eq!(lru_victim(&order, 0b1101), Some(0));
        // Only way 3 enabled.
        assert_eq!(lru_victim(&order, 0b1000), Some(3));
        // Nothing enabled.
        assert_eq!(lru_victim(&order, 0), None);
    }

    proptest! {
        /// After any sequence of touches the order stays a permutation, and
        /// the most recently touched way is at position 0.
        #[test]
        fn order_stays_permutation(touches in proptest::collection::vec(0u8..8, 1..200)) {
            let mut order = [0u8; 8];
            init_order(&mut order);
            for &w in &touches {
                touch(&mut order, w);
                prop_assert_eq!(order[0], w);
                let mut seen = [false; 8];
                for &x in &order {
                    prop_assert!(!seen[x as usize], "duplicate way in order");
                    seen[x as usize] = true;
                }
            }
            let last = *touches.last().unwrap();
            prop_assert_eq!(position_of(&order, last), 0);
        }

        /// The victim is always an enabled way and is less recent than every
        /// other enabled way.
        #[test]
        fn victim_is_least_recent_enabled(
            touches in proptest::collection::vec(0u8..8, 0..100),
            mask in 1u64..256,
        ) {
            let mut order = [0u8; 8];
            init_order(&mut order);
            for &w in &touches {
                touch(&mut order, w);
            }
            let v = lru_victim(&order, mask).unwrap();
            prop_assert!(mask & (1 << v) != 0);
            let vp = position_of(&order, v);
            for w in 0..8u8 {
                if mask & (1 << w) != 0 {
                    prop_assert!(position_of(&order, w) <= vp);
                }
            }
        }
    }
}
