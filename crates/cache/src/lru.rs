//! True-LRU recency bookkeeping over the ways of one set.
//!
//! Each set owns an order `order[0..A]` where `order[p]` is the physical way
//! currently at recency position `p` (position 0 = MRU, position `A-1` =
//! LRU). This representation makes the two quantities ESTEEM needs cheap:
//! the *LRU position of a hit* and the *LRU victim among enabled ways*
//! (scan from the tail).
//!
//! Storage comes in two flavours behind [`OrderStore`]: for `A <= 16` the
//! whole recency stack of a set packs into one `u64` as a nibble array
//! (nibble `p` = way at position `p`), so a touch is a handful of shifts
//! and masks on a single word instead of a byte-slice rotate — this is the
//! simulator's hottest data structure. Wider associativities (the 32-way
//! Table 3 variant) fall back to the byte-per-position layout the free
//! functions below operate on.

/// Returns the recency position of `way` within `order`.
///
/// Panics if `way` is not present (set corruption).
#[inline]
pub fn position_of(order: &[u8], way: u8) -> u8 {
    for (p, &w) in order.iter().enumerate() {
        if w == way {
            return p as u8;
        }
    }
    panic!("way {way} missing from LRU order {order:?}");
}

/// Moves `way` to the MRU position, shifting the intervening entries down.
#[inline]
pub fn touch(order: &mut [u8], way: u8) {
    let p = position_of(order, way) as usize;
    // Rotate order[0..=p] right by one so order[0] == way.
    order.copy_within(0..p, 1);
    order[0] = way;
}

/// Picks the least-recently-used way among those enabled in `mask`
/// (bit `w` of `mask` set means physical way `w` is enabled).
///
/// Returns `None` when the mask enables no way (caller bug).
#[inline]
pub fn lru_victim(order: &[u8], mask: u64) -> Option<u8> {
    order
        .iter()
        .rev()
        .copied()
        .find(|&w| mask & (1u64 << w) != 0)
}

/// Canonical initial order: way `w` at position `w`.
pub fn init_order(order: &mut [u8]) {
    for (i, o) in order.iter_mut().enumerate() {
        *o = i as u8;
    }
}

/// Canonical initial packed word: nibble `p` holds way `p`
/// (`0xFEDC_BA98_7654_3210`). Nibbles at positions `>= A` keep their
/// initial values `A..16`; they can never collide with a real way
/// (`< A`), and every operation below either ignores them or leaves
/// them in place, so no masking is required.
const PACKED_INIT: u64 = 0xFEDC_BA98_7654_3210;

/// Nibble-replication constants for the locate-nibble bit trick.
const NIB_ONES: u64 = 0x1111_1111_1111_1111;
const NIB_HIGH: u64 = 0x8888_8888_8888_8888;

/// Position of `way` inside a packed order word.
///
/// XORing with the way replicated into every nibble turns the matching
/// nibble into zero; the classic zero-locator `(x - 1·) & !x & 8·` then
/// flags it. The word is a permutation (each nibble value appears exactly
/// once), so the lowest flagged nibble is exact: below the unique zero
/// nibble no borrow is generated, hence no false positive below it.
#[inline]
pub(crate) fn packed_position_of(word: u64, way: u8) -> u8 {
    let x = word ^ (NIB_ONES * u64::from(way));
    let flags = x.wrapping_sub(NIB_ONES) & !x & NIB_HIGH;
    crate::strict_assert!(flags != 0, "way {way} missing from packed order {word:#x}");
    (flags.trailing_zeros() / 4) as u8
}

/// Moves `way` to the MRU nibble of a packed order word.
#[inline]
pub(crate) fn packed_touch(word: u64, way: u8) -> u64 {
    let p = u32::from(packed_position_of(word, way));
    let shift = 4 * p;
    // Positions 0..p slide up one nibble; positions > p stay put.
    let below = word & ((1u64 << shift) - 1);
    let above = word & (!0u64).checked_shl(shift + 4).unwrap_or(0);
    above | (below << 4) | u64::from(way)
}

/// [`packed_touch`] that also returns the position `way` held before the
/// move (the hit path needs both and should locate the way only once).
#[inline]
pub(crate) fn packed_touch_returning_pos(word: &mut u64, way: u8) -> u8 {
    let (w, p) = packed_touch_with_pos(*word, way);
    *word = w;
    p
}

/// By-value [`packed_touch_returning_pos`]: the batch kernel keeps the
/// order word in a register across an access and writes it back once.
#[inline]
pub(crate) fn packed_touch_with_pos(word: u64, way: u8) -> (u64, u8) {
    let p = packed_position_of(word, way);
    let shift = 4 * u32::from(p);
    let below = word & ((1u64 << shift) - 1);
    let above = word & (!0u64).checked_shl(shift + 4).unwrap_or(0);
    (above | (below << 4) | u64::from(way), p)
}

/// Per-set recency storage for a whole cache: packed nibble words for
/// `A <= 16`, byte-per-position otherwise.
#[derive(Debug, Clone)]
pub struct OrderStore {
    ways: u8,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// `words[set]`: nibble `p` = way at recency position `p`.
    Packed(Vec<u64>),
    /// `bytes[set * ways + p]` = way at recency position `p`.
    Wide(Vec<u8>),
}

impl OrderStore {
    pub fn new(sets: u32, ways: u8) -> Self {
        assert!((1..=64).contains(&ways), "ways must be in 1..=64");
        let repr = if ways <= 16 {
            Repr::Packed(vec![PACKED_INIT; sets as usize])
        } else {
            let mut bytes = vec![0u8; sets as usize * ways as usize];
            for set in 0..sets as usize {
                init_order(&mut bytes[set * ways as usize..(set + 1) * ways as usize]);
            }
            Repr::Wide(bytes)
        };
        Self { ways, repr }
    }

    /// Recency position of `way` in `set` (0 = MRU).
    #[inline]
    pub fn position_of(&self, set: usize, way: u8) -> u8 {
        match &self.repr {
            Repr::Packed(words) => packed_position_of(words[set], way),
            Repr::Wide(bytes) => position_of(self.wide_slice(bytes, set), way),
        }
    }

    /// Moves `way` to the MRU position of `set`.
    #[inline]
    pub fn touch(&mut self, set: usize, way: u8) {
        let ways = self.ways as usize;
        match &mut self.repr {
            Repr::Packed(words) => words[set] = packed_touch(words[set], way),
            Repr::Wide(bytes) => touch(&mut bytes[set * ways..(set + 1) * ways], way),
        }
    }

    /// Moves `way` to the MRU position of `set` and returns the position it
    /// held *before* the move. Equivalent to `position_of` + `touch` but
    /// locates the way only once — the hit path needs both the recency
    /// position (for the stats/ATD histograms) and the promotion.
    #[inline]
    pub fn touch_returning_pos(&mut self, set: usize, way: u8) -> u8 {
        let ways = self.ways as usize;
        match &mut self.repr {
            Repr::Packed(words) => packed_touch_returning_pos(&mut words[set], way),
            Repr::Wide(bytes) => {
                let order = &mut bytes[set * ways..(set + 1) * ways];
                let p = position_of(order, way);
                order.copy_within(0..p as usize, 1);
                order[0] = way;
                p
            }
        }
    }

    /// LRU way of `set` among those enabled in `mask`.
    #[inline]
    pub fn lru_victim(&self, set: usize, mask: u64) -> Option<u8> {
        match &self.repr {
            Repr::Packed(words) => {
                let word = words[set];
                for p in (0..u32::from(self.ways)).rev() {
                    let w = ((word >> (4 * p)) & 0xF) as u8;
                    if mask & (1u64 << w) != 0 {
                        return Some(w);
                    }
                }
                None
            }
            Repr::Wide(bytes) => lru_victim(self.wide_slice(bytes, set), mask),
        }
    }

    /// First way of `set` satisfying `pred`, scanning from the LRU end
    /// (used to prefer stale invalid slots over evicting a live line).
    #[inline]
    pub fn find_from_lru(&self, set: usize, mut pred: impl FnMut(u8) -> bool) -> Option<u8> {
        match &self.repr {
            Repr::Packed(words) => {
                let word = words[set];
                for p in (0..u32::from(self.ways)).rev() {
                    let w = ((word >> (4 * p)) & 0xF) as u8;
                    if pred(w) {
                        return Some(w);
                    }
                }
                None
            }
            Repr::Wide(bytes) => self
                .wide_slice(bytes, set)
                .iter()
                .rev()
                .copied()
                .find(|&w| pred(w)),
        }
    }

    /// Direct mutable view of the packed nibble words (`None` for the
    /// byte-per-position repr). The L1 fast-path batch kernel hoists this
    /// out of its inner loop to skip the per-access repr dispatch.
    #[inline]
    pub(crate) fn packed_words_mut(&mut self) -> Option<&mut [u64]> {
        match &mut self.repr {
            Repr::Packed(words) => Some(words),
            Repr::Wide(_) => None,
        }
    }

    #[inline]
    fn wide_slice<'a>(&self, bytes: &'a [u8], set: usize) -> &'a [u8] {
        let a = self.ways as usize;
        &bytes[set * a..(set + 1) * a]
    }

    /// Splits the store into disjoint mutable views of `sets_per_shard`
    /// consecutive sets each (the last shard may be shorter). Set indices
    /// inside a shard are local (0 = the shard's first set). This is what
    /// lets the batch kernel hand one module's recency state to one worker
    /// thread without any locking: the views borrow non-overlapping ranges.
    pub fn shard_views(&mut self, sets_per_shard: usize) -> Vec<OrderShard<'_>> {
        assert!(sets_per_shard > 0);
        let a = self.ways as usize;
        match &mut self.repr {
            Repr::Packed(words) => words
                .chunks_mut(sets_per_shard)
                .map(OrderShard::Packed)
                .collect(),
            Repr::Wide(bytes) => bytes
                .chunks_mut(sets_per_shard * a)
                .map(|chunk| OrderShard::Wide {
                    bytes: chunk,
                    ways: a,
                })
                .collect(),
        }
    }
}

/// Mutable recency view over one shard's contiguous run of sets (see
/// [`OrderStore::shard_views`]). Operations mirror [`OrderStore`] exactly,
/// with shard-local set indices.
#[derive(Debug)]
pub enum OrderShard<'a> {
    Packed(&'a mut [u64]),
    Wide { bytes: &'a mut [u8], ways: usize },
}

impl OrderShard<'_> {
    #[inline]
    pub fn position_of(&self, set: usize, way: u8) -> u8 {
        match self {
            OrderShard::Packed(words) => packed_position_of(words[set], way),
            OrderShard::Wide { bytes, ways } => {
                position_of(&bytes[set * ways..(set + 1) * ways], way)
            }
        }
    }

    #[inline]
    pub fn touch(&mut self, set: usize, way: u8) {
        match self {
            OrderShard::Packed(words) => words[set] = packed_touch(words[set], way),
            OrderShard::Wide { bytes, ways } => {
                touch(&mut bytes[set * *ways..(set + 1) * *ways], way)
            }
        }
    }

    #[inline]
    pub fn touch_returning_pos(&mut self, set: usize, way: u8) -> u8 {
        match self {
            OrderShard::Packed(words) => {
                let word = words[set];
                let p = packed_position_of(word, way);
                let shift = 4 * u32::from(p);
                let below = word & ((1u64 << shift) - 1);
                let above = word & (!0u64).checked_shl(shift + 4).unwrap_or(0);
                words[set] = above | (below << 4) | u64::from(way);
                p
            }
            OrderShard::Wide { bytes, ways } => {
                let order = &mut bytes[set * *ways..(set + 1) * *ways];
                let p = position_of(order, way);
                order.copy_within(0..p as usize, 1);
                order[0] = way;
                p
            }
        }
    }

    #[inline]
    pub fn lru_victim(&self, set: usize, mask: u64, ways: u8) -> Option<u8> {
        match self {
            OrderShard::Packed(words) => {
                let word = words[set];
                for p in (0..u32::from(ways)).rev() {
                    let w = ((word >> (4 * p)) & 0xF) as u8;
                    if mask & (1u64 << w) != 0 {
                        return Some(w);
                    }
                }
                None
            }
            OrderShard::Wide { bytes, ways } => {
                lru_victim(&bytes[set * ways..(set + 1) * ways], mask)
            }
        }
    }

    #[inline]
    pub fn find_from_lru(
        &self,
        set: usize,
        ways: u8,
        mut pred: impl FnMut(u8) -> bool,
    ) -> Option<u8> {
        match self {
            OrderShard::Packed(words) => {
                let word = words[set];
                for p in (0..u32::from(ways)).rev() {
                    let w = ((word >> (4 * p)) & 0xF) as u8;
                    if pred(w) {
                        return Some(w);
                    }
                }
                None
            }
            OrderShard::Wide { bytes, ways } => bytes[set * ways..(set + 1) * ways]
                .iter()
                .rev()
                .copied()
                .find(|&w| pred(w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn touch_moves_to_front() {
        let mut order = [0u8, 1, 2, 3];
        touch(&mut order, 2);
        assert_eq!(order, [2, 0, 1, 3]);
        touch(&mut order, 2);
        assert_eq!(order, [2, 0, 1, 3]);
        touch(&mut order, 3);
        assert_eq!(order, [3, 2, 0, 1]);
    }

    #[test]
    fn victim_respects_mask() {
        let order = [3u8, 2, 0, 1];
        // All enabled: LRU is the tail, way 1.
        assert_eq!(lru_victim(&order, 0b1111), Some(1));
        // Way 1 disabled: next least recent is way 0.
        assert_eq!(lru_victim(&order, 0b1101), Some(0));
        // Only way 3 enabled.
        assert_eq!(lru_victim(&order, 0b1000), Some(3));
        // Nothing enabled.
        assert_eq!(lru_victim(&order, 0), None);
    }

    proptest! {
        /// After any sequence of touches the order stays a permutation, and
        /// the most recently touched way is at position 0.
        #[test]
        fn order_stays_permutation(touches in proptest::collection::vec(0u8..8, 1..200)) {
            let mut order = [0u8; 8];
            init_order(&mut order);
            for &w in &touches {
                touch(&mut order, w);
                prop_assert_eq!(order[0], w);
                let mut seen = [false; 8];
                for &x in &order {
                    prop_assert!(!seen[x as usize], "duplicate way in order");
                    seen[x as usize] = true;
                }
            }
            let last = *touches.last().unwrap();
            prop_assert_eq!(position_of(&order, last), 0);
        }

        /// The victim is always an enabled way and is less recent than every
        /// other enabled way.
        #[test]
        fn victim_is_least_recent_enabled(
            touches in proptest::collection::vec(0u8..8, 0..100),
            mask in 1u64..256,
        ) {
            let mut order = [0u8; 8];
            init_order(&mut order);
            for &w in &touches {
                touch(&mut order, w);
            }
            let v = lru_victim(&order, mask).unwrap();
            prop_assert!(mask & (1 << v) != 0);
            let vp = position_of(&order, v);
            for w in 0..8u8 {
                if mask & (1 << w) != 0 {
                    prop_assert!(position_of(&order, w) <= vp);
                }
            }
        }

        /// The packed nibble store agrees with the byte-slice reference on
        /// every operation, for every packable associativity.
        #[test]
        fn packed_matches_wide_reference(
            ways in 1u8..=16,
            touches in proptest::collection::vec((0u8..16, 1u64..65536), 1..200),
        ) {
            let mut store = OrderStore::new(2, ways);
            let mut reference = [0u8; 16];
            init_order(&mut reference[..ways as usize]);
            let refer = |r: &[u8; 16]| r[..ways as usize].to_vec();
            for &(w, mask) in &touches {
                let w = w % ways;
                let mask = mask & ((1u64 << ways) - 1) | 1; // never empty
                let expect_pos = position_of(&refer(&reference), w);
                prop_assert_eq!(store.touch_returning_pos(1, w), expect_pos);
                touch(&mut reference[..ways as usize], w);
                prop_assert_eq!(store.position_of(1, w), 0);
                for x in 0..ways {
                    prop_assert_eq!(
                        store.position_of(1, x),
                        position_of(&refer(&reference), x)
                    );
                }
                prop_assert_eq!(store.lru_victim(1, mask), lru_victim(&refer(&reference), mask));
                // Set 0 is untouched: still the canonical order.
                prop_assert_eq!(store.position_of(0, ways - 1), ways - 1);
            }
        }
    }

    #[test]
    fn store_uses_wide_repr_above_16_ways() {
        let mut store = OrderStore::new(4, 32);
        for w in 0..32u8 {
            assert_eq!(store.position_of(2, w), w);
        }
        assert_eq!(store.touch_returning_pos(2, 31), 31);
        assert_eq!(store.position_of(2, 31), 0);
        assert_eq!(store.position_of(2, 0), 1);
        assert_eq!(store.lru_victim(2, u64::MAX), Some(30));
        assert_eq!(store.find_from_lru(2, |w| w < 4), Some(3));
        // Other sets unaffected.
        assert_eq!(store.position_of(3, 31), 31);
    }

    #[test]
    fn packed_full_16_way_boundary() {
        let mut store = OrderStore::new(1, 16);
        // Touch the current LRU way 16 times: full rotation.
        for _ in 0..16 {
            let lru = store.lru_victim(0, u64::MAX).unwrap();
            store.touch(0, lru);
            assert_eq!(store.position_of(0, lru), 0);
        }
        // Touching 15, 14, ..., 0 front-inserts each in turn, restoring
        // the canonical order.
        assert_eq!(store.position_of(0, 0), 0);
        assert_eq!(store.position_of(0, 15), 15);
    }

    #[test]
    fn find_from_lru_prefers_tail() {
        let mut store = OrderStore::new(1, 4);
        store.touch(0, 2); // order: 2 0 1 3
        assert_eq!(store.find_from_lru(0, |_| true), Some(3));
        assert_eq!(store.find_from_lru(0, |w| w == 2), Some(2));
        assert_eq!(store.find_from_lru(0, |_| false), None);
    }
}
