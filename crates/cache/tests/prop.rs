//! Property tests over arbitrary interleavings of cache operations.

use esteem_cache::{CacheGeometry, SetAssocCache};
use proptest::prelude::*;

/// A random cache operation.
#[derive(Debug, Clone)]
enum Op {
    Access { block: u64, write: bool },
    Reconfig { module: u16, ways: u8 },
    Invalidate { set: u32, way: u8 },
}

fn op_strategy(sets: u32, ways: u8, modules: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..5_000, any::<bool>()).prop_map(|(block, write)| Op::Access { block, write }),
        1 => (0..modules, 1..=ways).prop_map(|(module, ways)| Op::Reconfig { module, ways }),
        1 => (0..sets, 0..ways).prop_map(|(set, way)| Op::Invalidate { set, way }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of accesses, reconfigurations, and
    /// invalidations:
    /// * the incremental valid-line counters match a full recount;
    /// * per-bank valid counts sum to the total;
    /// * the active fraction stays in (0, 1];
    /// * no *follower* set holds valid lines in disabled ways.
    #[test]
    fn counters_and_masks_stay_consistent(
        ops in proptest::collection::vec(op_strategy(64, 8, 4), 1..400),
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, Some(16));
        let mut now = 0u64;
        for op in &ops {
            now += 1;
            match *op {
                Op::Access { block, write } => {
                    let out = c.access(block, write, now);
                    prop_assert!(out.set < g.sets);
                    prop_assert!(out.way < g.ways);
                    // The filled/hit way must be enabled for this set.
                    prop_assert!(
                        c.mask_for_set(out.set) & (1 << out.way) != 0,
                        "access landed in a disabled way"
                    );
                }
                Op::Reconfig { module, ways } => {
                    c.set_module_active_ways(module, ways, now);
                }
                Op::Invalidate { set, way } => {
                    c.invalidate_line(set, way);
                }
            }
        }
        prop_assert_eq!(c.valid_lines(), c.recount_valid());
        let bank_sum: u64 = c.valid_lines_per_bank().iter().sum();
        prop_assert_eq!(bank_sum, c.valid_lines());
        let af = c.active_fraction();
        prop_assert!(af > 0.0 && af <= 1.0);
        // Disabled follower ways hold no valid lines.
        for set in 0..g.sets {
            if c.is_leader(set) {
                continue;
            }
            let mask = c.mask_for_set(set);
            for way in 0..g.ways {
                if mask & (1 << way) == 0 {
                    prop_assert!(
                        !c.line(set, way).valid,
                        "valid line in disabled way {way} of set {set}"
                    );
                }
            }
        }
    }

    /// A hit always returns the same data identity (tag round trip): after
    /// accessing block B, probing B succeeds until B's way is disabled or
    /// B is evicted by associativity pressure in its own set.
    #[test]
    fn present_until_evicted(
        blocks in proptest::collection::vec(0u64..2_000, 1..100),
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, None);
        for (i, &b) in blocks.iter().enumerate() {
            c.access(b, false, i as u64);
            prop_assert!(c.probe(b), "block {b} missing right after access");
        }
        // The most recent access is always still present.
        prop_assert!(c.probe(*blocks.last().unwrap()));
    }

    /// Hits + misses always equals accesses, and write-backs never exceed
    /// misses + invalidation flushes (a dirty line leaves at most once).
    #[test]
    fn accounting_identities(
        ops in proptest::collection::vec(op_strategy(64, 8, 4), 1..300),
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, Some(16));
        let mut accesses = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Access { block, write } => {
                    c.access(block, write, i as u64);
                    accesses += 1;
                }
                Op::Reconfig { module, ways } => {
                    c.set_module_active_ways(module, ways, i as u64);
                }
                Op::Invalidate { set, way } => {
                    c.invalidate_line(set, way);
                }
            }
        }
        prop_assert_eq!(c.stats.hits + c.stats.misses, accesses);
        prop_assert!(c.stats.writebacks <= c.stats.misses + 1 + ops.len() as u64);
        let pos_sum: u64 = c.stats.pos_hits.iter().sum();
        prop_assert_eq!(pos_sum, c.stats.hits, "per-position hits must sum to hits");
    }
}
