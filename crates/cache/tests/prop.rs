//! Property tests over arbitrary interleavings of cache operations.

use esteem_cache::{CacheGeometry, SetAssocCache};
use proptest::prelude::*;

/// A random cache operation.
#[derive(Debug, Clone)]
enum Op {
    Access { block: u64, write: bool },
    Reconfig { module: u16, ways: u8 },
    Invalidate { set: u32, way: u8 },
}

fn op_strategy(sets: u32, ways: u8, modules: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u64..5_000, any::<bool>()).prop_map(|(block, write)| Op::Access { block, write }),
        1 => (0..modules, 1..=ways).prop_map(|(module, ways)| Op::Reconfig { module, ways }),
        1 => (0..sets, 0..ways).prop_map(|(set, way)| Op::Invalidate { set, way }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any interleaving of accesses, reconfigurations, and
    /// invalidations:
    /// * the incremental valid-line counters match a full recount;
    /// * per-bank valid counts sum to the total;
    /// * the active fraction stays in (0, 1];
    /// * no *follower* set holds valid lines in disabled ways.
    #[test]
    fn counters_and_masks_stay_consistent(
        ops in proptest::collection::vec(op_strategy(64, 8, 4), 1..400),
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, Some(16));
        let mut now = 0u64;
        for op in &ops {
            now += 1;
            match *op {
                Op::Access { block, write } => {
                    let out = c.access(block, write, now);
                    prop_assert!(out.set < g.sets);
                    prop_assert!(out.way < g.ways);
                    // The filled/hit way must be enabled for this set.
                    prop_assert!(
                        c.mask_for_set(out.set) & (1 << out.way) != 0,
                        "access landed in a disabled way"
                    );
                }
                Op::Reconfig { module, ways } => {
                    c.set_module_active_ways(module, ways, now);
                }
                Op::Invalidate { set, way } => {
                    c.invalidate_line(set, way);
                }
            }
        }
        prop_assert_eq!(c.valid_lines(), c.recount_valid());
        let bank_sum: u64 = c.valid_lines_per_bank().iter().sum();
        prop_assert_eq!(bank_sum, c.valid_lines());
        let af = c.active_fraction();
        prop_assert!(af > 0.0 && af <= 1.0);
        // Disabled follower ways hold no valid lines.
        for set in 0..g.sets {
            if c.is_leader(set) {
                continue;
            }
            let mask = c.mask_for_set(set);
            for way in 0..g.ways {
                if mask & (1 << way) == 0 {
                    prop_assert!(
                        !c.line(set, way).valid,
                        "valid line in disabled way {way} of set {set}"
                    );
                }
            }
        }
    }

    /// Grow-path reconfiguration (the `esteem-check` differential fuzzer
    /// drives this path; pinned here as a direct property): ways
    /// re-enabled by growing a module come back *empty* — turn-off
    /// invalidated them and nothing may resurrect stale contents — and
    /// the next miss in each grown follower set refills an empty way
    /// without evicting any line that survived the shrink.
    #[test]
    fn grow_reenables_empty_ways_and_refills_before_evicting(
        blocks in proptest::collection::vec(0u64..2_000, 50..300),
        shrink_to in 1u8..=4,
        module in 0u16..4,
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, Some(16));
        let mut now = 0u64;
        for &b in &blocks {
            now += 1;
            c.access(b, true, now);
        }
        // Shrink, then grow straight back to full associativity.
        c.set_module_active_ways(module, shrink_to, now);
        let grow = c.set_module_active_ways(module, 8, now);
        // Growing never flushes anything...
        prop_assert_eq!(grow.writebacks, 0);
        prop_assert_eq!(grow.discards, 0);
        // ...but it does transition the re-enabled slots of follower sets.
        let spm = g.sets_per_module();
        let first_set = u32::from(module) * spm;
        let followers: Vec<u32> =
            (first_set..first_set + spm).filter(|&s| !c.is_leader(s)).collect();
        prop_assert_eq!(
            grow.slot_transitions,
            u64::from(8 - shrink_to) * followers.len() as u64
        );
        // Every re-enabled way of every follower set is empty, and the
        // full mask is active again.
        for &set in &followers {
            prop_assert_eq!(c.mask_for_set(set), (1u64 << 8) - 1);
            for way in shrink_to..8 {
                prop_assert!(
                    !c.line(set, way).valid,
                    "stale line resurrected in re-enabled way {way} of set {set}"
                );
            }
        }
        prop_assert_eq!(c.valid_lines(), c.recount_valid());
        // One fresh miss per follower set lands in an empty (re-enabled)
        // way without evicting a shrink survivor.
        for &set in &followers {
            now += 1;
            let fresh = g.block_of(0xBEEF + now, set);
            let out = c.access(fresh, false, now);
            prop_assert_eq!(out.set, set);
            prop_assert!(!out.hit);
            prop_assert!(
                !out.evicted_valid,
                "miss in set {set} evicted a survivor despite {} empty ways",
                8 - shrink_to
            );
            prop_assert!(out.writeback.is_none());
        }
        prop_assert_eq!(c.valid_lines(), c.recount_valid());
    }

    /// A hit always returns the same data identity (tag round trip): after
    /// accessing block B, probing B succeeds until B's way is disabled or
    /// B is evicted by associativity pressure in its own set.
    #[test]
    fn present_until_evicted(
        blocks in proptest::collection::vec(0u64..2_000, 1..100),
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, None);
        for (i, &b) in blocks.iter().enumerate() {
            c.access(b, false, i as u64);
            prop_assert!(c.probe(b), "block {b} missing right after access");
        }
        // The most recent access is always still present.
        prop_assert!(c.probe(*blocks.last().unwrap()));
    }

    /// Hits + misses always equals accesses, and write-backs never exceed
    /// misses + invalidation flushes (a dirty line leaves at most once).
    #[test]
    fn accounting_identities(
        ops in proptest::collection::vec(op_strategy(64, 8, 4), 1..300),
    ) {
        let g = CacheGeometry::from_capacity(32 << 10, 8, 64, 2, 4);
        let mut c = SetAssocCache::new(g, Some(16));
        let mut accesses = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Access { block, write } => {
                    c.access(block, write, i as u64);
                    accesses += 1;
                }
                Op::Reconfig { module, ways } => {
                    c.set_module_active_ways(module, ways, i as u64);
                }
                Op::Invalidate { set, way } => {
                    c.invalidate_line(set, way);
                }
            }
        }
        prop_assert_eq!(c.stats.hits + c.stats.misses, accesses);
        prop_assert!(c.stats.writebacks <= c.stats.misses + 1 + ops.len() as u64);
        let pos_sum: u64 = c.stats.pos_hits.iter().sum();
        prop_assert_eq!(pos_sum, c.stats.hits, "per-position hits must sum to hits");
    }
}
