//! Synthetic statistical twins of the paper's workloads.
//!
//! The paper evaluates on 29 SPEC CPU2006 benchmarks (ref inputs) plus 5
//! HPC proxy apps, run under the Sniper simulator. Neither the (licensed)
//! SPEC binaries nor a functional x86 simulator are available here, so each
//! benchmark is replaced by a *seeded stochastic access-stream generator*
//! that reproduces the properties the evaluated techniques actually react
//! to (DESIGN.md §3):
//!
//! * **memory intensity** — instructions between memory references;
//! * **locality shape** — a mixture of nested uniform "zones" (hot L1-sized
//!   region up to the full working set) whose geometric weight decay yields
//!   the decaying per-LRU-position hit histograms that drive ESTEEM's
//!   way-selection (paper §3.1 example);
//! * **set-level skew** — zones are placed at staggered base offsets so
//!   different cache *modules* see different associativity pressure (the
//!   behaviour Figure 2 visualises);
//! * **streaming** — a sequential compulsory-miss component (libquantum,
//!   milc, lbm ... have near-100% L2 miss rates);
//! * **non-LRU behaviour** — a cyclic-scan component that produces hits
//!   concentrated at *deep* LRU positions, the anti-monotone pattern the
//!   paper reports for omnetpp and xalancbmk;
//! * **phase behaviour** — a schedule of parameter sets the generator
//!   cycles through (intra-application variation, exploited by dynamic
//!   reconfiguration and visualised for h264ref in Figure 2).
//!
//! Every stream is deterministic given `(benchmark, core, seed)`.

pub mod analysis;
pub mod mixes;
pub mod profile;
pub mod stream;
pub mod suites;
pub mod trace;
pub mod zones;

pub use analysis::ReuseDistance;
pub use mixes::{dual_core_mixes, DualMix};
pub use profile::{BenchmarkProfile, PhaseSpec, Suite};
pub use stream::{AccessStream, Bundle, MemRef};
pub use suites::{all_benchmarks, benchmark_by_name, hpc_benchmarks, spec2006_benchmarks};
pub use trace::{TraceReader, TraceWriter};

/// Stable 64-bit FNV-1a hash used for seeding; must never change across
/// versions or experiment results stop being reproducible.
pub fn stable_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // separator so ["ab","c"] != ["a","bc"]
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: changing it silently would invalidate recorded
        // experiment outputs.
        assert_eq!(stable_hash(&["mcf", "0"]), stable_hash(&["mcf", "0"]));
        assert_ne!(stable_hash(&["mcf", "0"]), stable_hash(&["mcf", "1"]));
        assert_ne!(stable_hash(&["ab", "c"]), stable_hash(&["a", "bc"]));
    }
}
