//! Binary access-trace capture and replay.
//!
//! The synthetic generators are convenient, but downstream users of a
//! cache simulator usually arrive with *traces* (from Pin, DynamoRIO,
//! gem5, ...). This module defines a compact binary trace format and a
//! replayer that implements the same bundle interface as the synthetic
//! [`AccessStream`](crate::AccessStream), so traces and synthetic twins
//! are interchangeable inside the simulator.
//!
//! ## Format (`ESTR` v1)
//!
//! ```text
//! magic  b"ESTR"            4 bytes
//! version u16 LE            (= 1)
//! reserved u16              (= 0)
//! count  u64 LE             number of records
//! records: count x 9 bytes:
//!     instrs u32 LE         instructions retired by this bundle (>= 1)
//!     flags  u8             bit0 = write
//!     block  u32 LE         block address *delta*, zig-zag encoded
//! ```
//!
//! Block addresses are delta + zig-zag encoded against the previous
//! record, which keeps streaming/scanning traces highly compressible and
//! the common case within 4 bytes. Deltas beyond ±2^30 are escaped with a
//! full 8-byte absolute record (flag bit 7).
//!
//! The codec works on plain `Vec<u8>` / `&[u8]` — no external buffer
//! crate required.

use crate::stream::{Bundle, MemRef};

const MAGIC: &[u8; 4] = b"ESTR";
const VERSION: u16 = 1;
const FLAG_WRITE: u8 = 1 << 0;
const FLAG_ABSOLUTE: u8 = 1 << 7;

/// Errors produced while decoding a trace.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceError {
    BadMagic,
    BadVersion(u16),
    Truncated,
    ZeroInstrs,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an ESTR trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::ZeroInstrs => write!(f, "record with zero instructions"),
        }
    }
}

impl std::error::Error for TraceError {}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Little-endian cursor over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], TraceError> {
        let end = self.pos.checked_add(N).ok_or(TraceError::Truncated)?;
        let bytes = self.data.get(self.pos..end).ok_or(TraceError::Truncated)?;
        self.pos = end;
        Ok(bytes.try_into().expect("slice length checked"))
    }

    fn get_u8(&mut self) -> Result<u8, TraceError> {
        self.take::<1>().map(|b| b[0])
    }

    fn get_u16_le(&mut self) -> Result<u16, TraceError> {
        self.take::<2>().map(u16::from_le_bytes)
    }

    fn get_u32_le(&mut self) -> Result<u32, TraceError> {
        self.take::<4>().map(u32::from_le_bytes)
    }

    fn get_u64_le(&mut self) -> Result<u64, TraceError> {
        self.take::<8>().map(u64::from_le_bytes)
    }
}

/// Streaming trace encoder.
#[derive(Debug, Default)]
pub struct TraceWriter {
    buf: Vec<u8>,
    count: u64,
    prev_block: u64,
}

impl TraceWriter {
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(4096),
            count: 0,
            prev_block: 0,
        }
    }

    /// Appends one bundle.
    pub fn push(&mut self, bundle: &Bundle) {
        assert!(bundle.instrs >= 1, "bundles carry at least 1 instruction");
        let delta = bundle.mem.block as i64 - self.prev_block as i64;
        let zz = zigzag(delta);
        let mut flags = if bundle.mem.write { FLAG_WRITE } else { 0 };
        self.buf.extend_from_slice(&bundle.instrs.to_le_bytes());
        if zz < (1u64 << 30) {
            self.buf.push(flags);
            self.buf.extend_from_slice(&(zz as u32).to_le_bytes());
        } else {
            flags |= FLAG_ABSOLUTE;
            self.buf.push(flags);
            self.buf.extend_from_slice(&bundle.mem.block.to_le_bytes());
        }
        self.prev_block = bundle.mem.block;
        self.count += 1;
    }

    /// Finalises into the complete trace image (header + records).
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }

    pub fn len(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Decoded trace, replayable as a bundle stream.
#[derive(Debug, Clone)]
pub struct TraceReader {
    bundles: Vec<Bundle>,
    pos: usize,
}

impl TraceReader {
    /// Decodes a complete trace image.
    pub fn parse(data: &[u8]) -> Result<Self, TraceError> {
        let mut cur = Cursor::new(data);
        if cur.remaining() < 16 {
            return Err(TraceError::Truncated);
        }
        let magic = cur.take::<4>()?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = cur.get_u16_le()?;
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let _reserved = cur.get_u16_le()?;
        let count = cur.get_u64_le()?;
        let mut bundles = Vec::with_capacity(count.min(1 << 24) as usize);
        let mut prev_block = 0u64;
        for _ in 0..count {
            let instrs = cur.get_u32_le()?;
            if instrs == 0 {
                return Err(TraceError::ZeroInstrs);
            }
            let flags = cur.get_u8()?;
            let block = if flags & FLAG_ABSOLUTE != 0 {
                cur.get_u64_le()?
            } else {
                let zz = u64::from(cur.get_u32_le()?);
                (prev_block as i64 + unzigzag(zz)) as u64
            };
            prev_block = block;
            bundles.push(Bundle {
                instrs,
                mem: MemRef {
                    block,
                    write: flags & FLAG_WRITE != 0,
                },
            });
        }
        Ok(Self { bundles, pos: 0 })
    }

    /// Next bundle, looping back to the start at the end (so short traces
    /// can drive long simulations, like the generators' phase cycling).
    pub fn next_bundle(&mut self) -> Bundle {
        assert!(!self.bundles.is_empty(), "empty trace");
        let b = self.bundles[self.pos];
        self.pos = (self.pos + 1) % self.bundles.len();
        b
    }

    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Restarts replay from the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// Captures `n` bundles of a synthetic stream into a trace image
/// (convenience for tests and the `esteem-sim --record` flow).
pub fn record_stream(stream: &mut crate::AccessStream, n: u64) -> Vec<u8> {
    let mut w = TraceWriter::new();
    for _ in 0..n {
        w.push(&stream.next_bundle());
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::benchmark_by_name;
    use crate::AccessStream;

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40), i64::MAX / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn round_trip_synthetic_stream() {
        let p = benchmark_by_name("gcc").unwrap();
        let mut s1 = AccessStream::new(&p, 0, 9);
        let img = record_stream(&mut s1, 10_000);
        let mut reader = TraceReader::parse(&img).unwrap();
        assert_eq!(reader.len(), 10_000);
        let mut s2 = AccessStream::new(&p, 0, 9);
        for _ in 0..10_000 {
            assert_eq!(reader.next_bundle(), s2.next_bundle());
        }
    }

    #[test]
    fn replay_wraps_around() {
        let p = benchmark_by_name("povray").unwrap();
        let mut s = AccessStream::new(&p, 0, 1);
        let img = record_stream(&mut s, 8);
        let mut r = TraceReader::parse(&img).unwrap();
        let first: Vec<Bundle> = (0..8).map(|_| r.next_bundle()).collect();
        let second: Vec<Bundle> = (0..8).map(|_| r.next_bundle()).collect();
        assert_eq!(first, second);
        r.rewind();
        assert_eq!(r.next_bundle(), first[0]);
    }

    #[test]
    fn absolute_escape_for_large_deltas() {
        let mut w = TraceWriter::new();
        let far = Bundle {
            instrs: 3,
            mem: MemRef {
                block: 1 << 52, // core-id region: huge delta from 0
                write: true,
            },
        };
        let near = Bundle {
            instrs: 2,
            mem: MemRef {
                block: (1 << 52) + 5,
                write: false,
            },
        };
        w.push(&far);
        w.push(&near);
        let img = w.finish();
        let mut r = TraceReader::parse(&img).unwrap();
        assert_eq!(r.next_bundle(), far);
        assert_eq!(r.next_bundle(), near);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            TraceReader::parse(b"not a trace.....").err().unwrap(),
            TraceError::BadMagic
        );
        assert_eq!(
            TraceReader::parse(b"ESTR").err().unwrap(),
            TraceError::Truncated
        );
        // Bad version.
        let mut img = Vec::new();
        img.extend_from_slice(MAGIC);
        img.extend_from_slice(&99u16.to_le_bytes());
        img.extend_from_slice(&0u16.to_le_bytes());
        img.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            TraceReader::parse(&img).err().unwrap(),
            TraceError::BadVersion(99)
        );
    }

    #[test]
    fn truncated_records_detected() {
        let p = benchmark_by_name("gcc").unwrap();
        let mut s = AccessStream::new(&p, 0, 9);
        let img = record_stream(&mut s, 100);
        let cut = &img[..img.len() - 3];
        assert_eq!(
            TraceReader::parse(cut).err().unwrap(),
            TraceError::Truncated
        );
    }

    #[test]
    fn compact_encoding_for_sequential_traffic() {
        // Streaming-style deltas of +1 should cost 9 bytes per record.
        let mut w = TraceWriter::new();
        for i in 0..1000u64 {
            w.push(&Bundle {
                instrs: 4,
                mem: MemRef {
                    block: i,
                    write: false,
                },
            });
        }
        let img = w.finish();
        assert_eq!(img.len(), 16 + 1000 * 9);
    }
}
