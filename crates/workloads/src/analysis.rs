//! Reuse-distance (stack-distance) analysis of access streams.
//!
//! The LRU stack distance of an access is the number of *distinct* blocks
//! touched since the previous access to the same block; an access with
//! stack distance `d` hits in any fully-associative LRU cache of capacity
//! > `d`. Stack-distance histograms are how cache-behaviour "twins" are
//! > validated against the streams they imitate — and what connects the
//! > zone-mixture generator to the per-LRU-position hit histograms ESTEEM's
//! > Algorithm 1 consumes.
//!
//! Implementation: Olken's algorithm. Blocks live on a virtual LRU stack;
//! a Fenwick (binary indexed) tree over *stack slots* counts how many
//! live blocks sit above a given slot, so each access costs `O(log n)`:
//! look up the block's slot, prefix-count the slots above it, vacate the
//! slot, and re-push the block on top. Slots grow monotonically and are
//! compacted when the slot arena exceeds twice the live-block count.

use std::collections::HashMap;

/// Fenwick tree over slot occupancy.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of occupancy over slots `0..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming reuse-distance profiler.
#[derive(Debug, Clone)]
pub struct ReuseDistance {
    /// Block -> slot index (slots grow downward in recency: larger slot =
    /// more recent).
    slot_of: HashMap<u64, usize>,
    occupancy: Fenwick,
    next_slot: usize,
    /// Histogram: `hist[min(d, hist.len()-1)] += 1`; the last bucket also
    /// collects cold (first-touch) accesses.
    hist: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseDistance {
    /// `max_distance` bounds the histogram; deeper reuses land in the
    /// overflow bucket.
    pub fn new(max_distance: usize) -> Self {
        assert!(max_distance >= 1);
        Self {
            slot_of: HashMap::new(),
            occupancy: Fenwick::new(1024),
            next_slot: 0,
            hist: vec![0; max_distance + 1],
            cold: 0,
            total: 0,
        }
    }

    /// Records one access and returns its stack distance (`None` for a
    /// cold first touch).
    pub fn access(&mut self, block: u64) -> Option<u64> {
        self.total += 1;
        let top = self.next_slot;
        if top >= self.occupancy.len() {
            self.grow_or_compact();
        }
        let dist = if let Some(&slot) = self.slot_of.get(&block) {
            // Distinct blocks *above* `slot`: those in (slot, top).
            let above = self.occupancy.prefix(self.next_slot.saturating_sub(1))
                - self.occupancy.prefix(slot);
            self.occupancy.add(slot, -1);
            Some(above)
        } else {
            self.cold += 1;
            None
        };
        self.occupancy.add(self.next_slot, 1);
        self.slot_of.insert(block, self.next_slot);
        self.next_slot += 1;
        match dist {
            Some(d) => {
                let idx = (d as usize).min(self.hist.len() - 1);
                self.hist[idx] += 1;
            }
            None => {
                let last = self.hist.len() - 1;
                self.hist[last] += 1;
            }
        }
        dist
    }

    fn grow_or_compact(&mut self) {
        if self.next_slot > 2 * self.slot_of.len().max(512) {
            // Compact: renumber live blocks by recency order.
            let mut live: Vec<(usize, u64)> = self.slot_of.iter().map(|(&b, &s)| (s, b)).collect();
            live.sort_unstable();
            let n = live.len();
            self.occupancy = Fenwick::new((2 * n).max(1024));
            self.slot_of.clear();
            for (i, (_, b)) in live.into_iter().enumerate() {
                self.slot_of.insert(b, i);
                self.occupancy.add(i, 1);
            }
            self.next_slot = n;
        } else {
            // Grow the arena.
            let mut bigger = Fenwick::new(self.occupancy.len() * 2);
            for (&_b, &s) in &self.slot_of {
                bigger.add(s, 1);
            }
            self.occupancy = bigger;
        }
    }

    /// Histogram of stack distances; the final bucket holds overflow +
    /// cold accesses.
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Cold (first-touch) accesses.
    pub fn cold_accesses(&self) -> u64 {
        self.cold
    }

    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Hit ratio of a fully-associative LRU cache of `capacity` blocks
    /// over the profiled stream (the classic use of the histogram).
    pub fn lru_hit_ratio(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .hist
            .iter()
            .take(capacity.min(self.hist.len() - 1))
            .sum();
        hits as f64 / self.total as f64
    }

    /// Distinct blocks seen (the stream's footprint).
    pub fn footprint(&self) -> usize {
        self.slot_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_distances() {
        let mut rd = ReuseDistance::new(16);
        assert_eq!(rd.access(1), None); // cold
        assert_eq!(rd.access(2), None);
        assert_eq!(rd.access(3), None);
        assert_eq!(rd.access(1), Some(2)); // 2 distinct blocks since
        assert_eq!(rd.access(1), Some(0)); // immediate reuse
        assert_eq!(rd.access(3), Some(1)); // only 1 above it now
        assert_eq!(rd.cold_accesses(), 3);
        assert_eq!(rd.footprint(), 3);
    }

    #[test]
    fn duplicate_heavy_stream() {
        let mut rd = ReuseDistance::new(8);
        for _ in 0..1000 {
            rd.access(42);
        }
        assert_eq!(rd.cold_accesses(), 1);
        assert_eq!(rd.histogram()[0], 999);
        assert!((rd.lru_hit_ratio(1) - 0.999).abs() < 1e-9);
    }

    #[test]
    fn cyclic_scan_distance_is_length_minus_one() {
        let n = 20u64;
        let mut rd = ReuseDistance::new(64);
        for lap in 0..5 {
            for b in 0..n {
                let d = rd.access(b);
                if lap > 0 {
                    assert_eq!(d, Some(n - 1));
                }
            }
        }
        // LRU of capacity n-1 never hits a cyclic scan of n blocks...
        assert_eq!(rd.lru_hit_ratio(n as usize - 1), 0.0);
        // ...capacity n always hits after the cold lap.
        assert!((rd.lru_hit_ratio(n as usize + 1) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn compaction_preserves_distances() {
        let mut rd = ReuseDistance::new(32);
        // Force many slot allocations with a small live set.
        for i in 0..50_000u64 {
            rd.access(i % 16);
        }
        // The loop ended at block 15; block 3 was accessed 12 distinct
        // blocks ago (4..=15).
        let d = rd.access(3);
        assert_eq!(d, Some(12));
        // A full extra lap later, block 3 is 15 distinct blocks deep.
        for b in [4u64, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2] {
            rd.access(b);
        }
        assert_eq!(rd.access(3), Some(15));
        assert_eq!(rd.footprint(), 16);
    }

    #[test]
    fn matches_naive_reference_on_random_stream() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let stream: Vec<u64> = (0..3000).map(|_| rng.gen_range(0..200)).collect();

        // Naive O(n^2) reference.
        let mut naive_stack: Vec<u64> = Vec::new();
        let mut naive: Vec<Option<u64>> = Vec::new();
        for &b in &stream {
            if let Some(pos) = naive_stack.iter().rposition(|&x| x == b) {
                naive.push(Some((naive_stack.len() - 1 - pos) as u64));
                naive_stack.remove(pos);
            } else {
                naive.push(None);
            }
            naive_stack.push(b);
        }

        let mut rd = ReuseDistance::new(256);
        for (i, &b) in stream.iter().enumerate() {
            assert_eq!(rd.access(b), naive[i], "mismatch at access {i}");
        }
    }

    #[test]
    fn zone_mixture_twins_have_decaying_histograms() {
        // The property the whole workload model rests on: zone-mixture
        // streams produce (coarsely) decaying stack-distance histograms.
        use crate::suites::benchmark_by_name;
        use crate::AccessStream;
        let p = benchmark_by_name("bzip2").unwrap();
        let mut s = AccessStream::new(&p, 0, 3);
        let mut rd = ReuseDistance::new(4096);
        for _ in 0..200_000 {
            rd.access(s.next_bundle().mem.block);
        }
        let h = rd.histogram();
        // Compare mass in coarse bands: [0,64) >> [512,1024) > [2048,4096).
        let band = |a: usize, b: usize| h[a..b].iter().sum::<u64>();
        let near = band(0, 64);
        let mid = band(512, 1024);
        let far = band(2048, 4096);
        assert!(near > 8 * mid, "near {near} vs mid {mid}");
        assert!(mid > far, "mid {mid} vs far {far}");
    }
}
