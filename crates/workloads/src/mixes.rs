//! The 17 dual-core multiprogrammed workloads (Table 1 of the paper).
//!
//! The paper builds these "randomly ... such that each benchmark is used
//! only once"; we reproduce the exact published pairings.

use crate::profile::BenchmarkProfile;
use crate::suites::benchmark_by_name;

/// One dual-core mix: the published acronym and its two member benchmarks.
#[derive(Debug, Clone)]
pub struct DualMix {
    /// Published acronym, e.g. `"GkNe"`.
    pub acronym: &'static str,
    pub a: BenchmarkProfile,
    pub b: BenchmarkProfile,
}

impl DualMix {
    pub fn names(&self) -> (String, String) {
        (self.a.name.to_owned(), self.b.name.to_owned())
    }
}

/// `(acronym, benchmark_a, benchmark_b)` exactly as printed in Table 1.
pub const MIX_TABLE: [(&str, &str, &str); 17] = [
    ("GmDl", "gemsFDTD", "dealII"),
    ("AsXb", "astar", "xsbench"),
    ("GcGa", "gcc", "gamess"),
    ("BzXa", "bzip2", "xalancbmk"),
    ("LsLb", "leslie3d", "lbm"),
    ("GkNe", "gobmk", "nekbone"),
    ("OmGr", "omnetpp", "gromacs"),
    ("NdCd", "namd", "cactusADM"),
    ("CaTo", "calculix", "tonto"),
    ("SpBw", "sphinx", "bwaves"),
    ("LqPo", "libquantum", "povray"),
    ("SjWr", "sjeng", "wrf"),
    ("PeZe", "perlbench", "zeusmp"),
    ("HmH2", "hmmer", "h264ref"),
    ("SoMi", "soplex", "milc"),
    ("McLu", "mcf", "lulesh"),
    ("CoAm", "comd", "amg2013"),
];

/// All 17 dual-core mixes, in Table 1 order.
pub fn dual_core_mixes() -> Vec<DualMix> {
    MIX_TABLE
        .iter()
        .map(|&(acr, a, b)| DualMix {
            acronym: acr,
            a: benchmark_by_name(a).unwrap_or_else(|| panic!("unknown benchmark {a}")),
            b: benchmark_by_name(b).unwrap_or_else(|| panic!("unknown benchmark {b}")),
        })
        .collect()
}

/// Look up a mix by its published acronym.
pub fn mix_by_acronym(acr: &str) -> Option<DualMix> {
    dual_core_mixes()
        .into_iter()
        .find(|m| m.acronym.eq_ignore_ascii_case(acr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn seventeen_mixes_each_benchmark_once() {
        let mixes = dual_core_mixes();
        assert_eq!(mixes.len(), 17);
        let mut used = BTreeSet::new();
        for m in &mixes {
            assert!(used.insert(m.a.name), "{} reused", m.a.name);
            assert!(used.insert(m.b.name), "{} reused", m.b.name);
        }
        assert_eq!(used.len(), 34, "every benchmark used exactly once");
    }

    #[test]
    fn acronyms_match_members() {
        for m in dual_core_mixes() {
            let expect = format!("{}{}", m.a.acronym, m.b.acronym);
            assert_eq!(m.acronym, expect, "acronym mismatch for {}", m.acronym);
        }
    }

    #[test]
    fn lookup() {
        let m = mix_by_acronym("GkNe").unwrap();
        assert_eq!(m.a.name, "gobmk");
        assert_eq!(m.b.name, "nekbone");
        assert!(mix_by_acronym("ZZ").is_none());
    }
}
