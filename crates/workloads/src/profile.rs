//! Benchmark profile schema.

use serde::{Deserialize, Serialize};

/// Which suite a benchmark belongs to (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    Spec2006,
    Hpc,
}

/// One phase of a benchmark's execution. The access-stream generator
/// cycles through the profile's phases; a single-phase profile is a
/// stationary workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase length in instructions.
    pub duration_instrs: u64,
    /// Fraction of instructions that are memory references.
    pub mem_ratio: f64,
    /// Fraction of memory references that are writes.
    pub write_ratio: f64,
    /// Size of the innermost (hottest) zone, in 64 B blocks. Roughly the
    /// L1-resident footprint (512 blocks = 32 KB).
    pub hot_blocks: u64,
    /// Probability that a (non-stream, non-scan) reference targets the hot
    /// zone. Real programs keep ~90% of references within an L1-resident
    /// footprint; this is the main L1-hit-rate dial.
    pub hot_weight: f64,
    /// Full reuse working-set size, in blocks (outermost zone).
    pub ws_blocks: u64,
    /// Geometric weight decay across nested zones, in (0, 1]: smaller
    /// means accesses concentrate in the inner zones (stronger locality).
    pub locality_decay: f64,
    /// Number of nested zones between `hot_blocks` and `ws_blocks`.
    pub zones: u8,
    /// Fraction of references served by the sequential streaming component.
    pub stream_frac: f64,
    /// Streaming region size in blocks (the stream pointer wraps here).
    pub stream_blocks: u64,
    /// Fraction of references served by the cyclic-scan (non-LRU)
    /// component.
    pub scan_frac: f64,
    /// Cyclic-scan region size in blocks.
    pub scan_blocks: u64,
}

impl PhaseSpec {
    /// Validates structural invariants; panics with a message on violation.
    pub fn validate(&self) {
        assert!(self.duration_instrs > 0, "phase must have instructions");
        assert!(
            self.mem_ratio > 0.0 && self.mem_ratio <= 1.0,
            "mem_ratio in (0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_ratio),
            "write_ratio in [0,1]"
        );
        assert!(self.hot_blocks >= 1 && self.ws_blocks >= self.hot_blocks);
        assert!(
            self.hot_weight > 0.0 && self.hot_weight < 1.0,
            "hot_weight in (0,1)"
        );
        assert!(
            self.locality_decay > 0.0 && self.locality_decay <= 1.0,
            "locality_decay in (0,1]"
        );
        assert!(self.zones >= 1);
        assert!(self.stream_frac >= 0.0 && self.scan_frac >= 0.0);
        assert!(
            self.stream_frac + self.scan_frac <= 1.0,
            "component fractions must leave room for zone accesses"
        );
        if self.stream_frac > 0.0 {
            assert!(self.stream_blocks >= 1);
        }
        if self.scan_frac > 0.0 {
            assert!(self.scan_blocks >= 1);
        }
    }
}

/// The statistical twin of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Full benchmark name, e.g. `"h264ref"`.
    pub name: &'static str,
    /// Two-letter acronym from Table 1, e.g. `"H2"`.
    pub acronym: &'static str,
    pub suite: Suite,
    /// CPI of non-memory work (issue/execute), excluding memory stalls.
    pub cpi_base: f64,
    /// Memory-level parallelism: overlapping misses divide the visible
    /// stall of L2/memory latencies.
    pub mlp: f64,
    pub phases: Vec<PhaseSpec>,
}

impl BenchmarkProfile {
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "{}: needs phases", self.name);
        assert!(self.cpi_base > 0.0 && self.mlp >= 1.0, "{}", self.name);
        for p in &self.phases {
            p.validate();
        }
    }

    /// Largest working set across phases (for documentation/tests).
    pub fn max_ws_blocks(&self) -> u64 {
        self.phases.iter().map(|p| p.ws_blocks).max().unwrap_or(0)
    }
}

/// A single-phase spec with library defaults; the suite tables override
/// the fields that characterise each benchmark.
pub fn base_phase() -> PhaseSpec {
    PhaseSpec {
        duration_instrs: u64::MAX, // single phase never expires
        mem_ratio: 0.33,
        write_ratio: 0.25,
        hot_blocks: 384,
        hot_weight: 0.90,
        ws_blocks: 16_384,
        locality_decay: 0.45,
        zones: 6,
        stream_frac: 0.02,
        stream_blocks: 1 << 21,
        scan_frac: 0.0,
        scan_blocks: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_phase_is_valid() {
        base_phase().validate();
    }

    #[test]
    #[should_panic(expected = "mem_ratio")]
    fn rejects_zero_mem_ratio() {
        let mut p = base_phase();
        p.mem_ratio = 0.0;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "leave room")]
    fn rejects_overfull_fractions() {
        let mut p = base_phase();
        p.stream_frac = 0.7;
        p.scan_frac = 0.5;
        p.validate();
    }
}
