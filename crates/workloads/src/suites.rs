//! The 34 benchmark profiles (Table 1 of the paper).
//!
//! Parameters are chosen from the public characterisation of SPEC CPU2006
//! and the HPC proxy apps (working-set sizes, L2 MPKI classes, streaming
//! vs. pointer-chasing behaviour, LRU-friendliness) — see DESIGN.md §3 for
//! the substitution rationale. Sizes are in 64 B blocks (16384 blocks =
//! 1 MB; the single-core 4 MB L2 holds 65536 blocks over 4096 sets).
//!
//! Rough taxonomy realised below:
//! * *cache-resident* (gamess, povray, tonto, hmmer, namd, gromacs,
//!   calculix, nekbone): tiny working sets and high hot-zone weight;
//!   ESTEEM's best cases.
//! * *moderate* (bzip2, dealII, gcc, perlbench, sjeng, h264ref, comd,
//!   wrf, zeusmp, astar): working sets of a few MB.
//! * *streaming / memory-bound* (libquantum, milc, lbm, bwaves, leslie3d,
//!   gemsFDTD, sphinx, cactusADM, lulesh, amg2013): large sequential
//!   components, near-100% L2 miss rates for the purest ones.
//! * *huge-working-set* (mcf, soplex, xsbench): bigger than any evaluated
//!   L2, with low hot-zone weight (pointer chasing leaks through the L1);
//!   ESTEEM can lose slightly here (paper §7.2).
//! * *non-LRU* (omnetpp, xalancbmk): cyclic scans put hits at deep LRU
//!   positions; phases vary the scan length so the per-position histogram
//!   is non-monotone at several positions (triggering Algorithm 1's
//!   anomaly guard).
//! * *L2-latency-bound* (gobmk, nekbone): lower hot-zone weight with a
//!   small working set — lots of L2 hits, so these gain most from
//!   refresh-free banks (paper: gobmk 1.29x single-core, GkNe 1.48x
//!   dual-core).

use crate::profile::{BenchmarkProfile, PhaseSpec, Suite};

/// Compact phase constructor; `dur = 0` means "single phase, never
/// expires". `hw` is the hot-zone weight (the L1-hit-rate dial).
#[allow(clippy::too_many_arguments)]
fn ph(
    dur: u64,
    mem: f64,
    wr: f64,
    hot: u64,
    hw: f64,
    ws: u64,
    decay: f64,
    zones: u8,
    stream_frac: f64,
    stream_blocks: u64,
    scan_frac: f64,
    scan_blocks: u64,
) -> PhaseSpec {
    PhaseSpec {
        duration_instrs: if dur == 0 { u64::MAX } else { dur },
        mem_ratio: mem,
        write_ratio: wr,
        hot_blocks: hot,
        hot_weight: hw,
        ws_blocks: ws,
        locality_decay: decay,
        zones,
        stream_frac,
        stream_blocks,
        scan_frac,
        scan_blocks,
    }
}

fn mk(
    name: &'static str,
    acronym: &'static str,
    suite: Suite,
    cpi_base: f64,
    mlp: f64,
    phases: Vec<PhaseSpec>,
) -> BenchmarkProfile {
    let p = BenchmarkProfile {
        name,
        acronym,
        suite,
        cpi_base,
        mlp,
        phases,
    };
    p.validate();
    p
}

/// The 29 SPEC CPU2006 profiles, in the paper's Table 1 order.
pub fn spec2006_benchmarks() -> Vec<BenchmarkProfile> {
    use Suite::Spec2006 as S;
    let m = 1u64 << 20; // 1 Mi blocks = 64 MB
    vec![
        mk(
            "astar",
            "As",
            S,
            0.50,
            1.3,
            vec![ph(
                0,
                0.30,
                0.20,
                256,
                0.91,
                90_000,
                0.32,
                6,
                0.015,
                4 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "bwaves",
            "Bw",
            S,
            0.45,
            2.5,
            vec![ph(
                0,
                0.32,
                0.30,
                256,
                0.90,
                30_000,
                0.35,
                6,
                0.55,
                3 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "bzip2",
            "Bz",
            S,
            0.50,
            1.6,
            vec![ph(
                0, 0.32, 0.30, 256, 0.92, 35_000, 0.32, 6, 0.02, m, 0.0, 0,
            )],
        ),
        mk(
            "cactusADM",
            "Cd",
            S,
            0.55,
            1.8,
            vec![ph(
                0,
                0.35,
                0.35,
                288,
                0.90,
                120_000,
                0.32,
                6,
                0.25,
                5 * m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "calculix",
            "Ca",
            S,
            0.45,
            1.5,
            vec![ph(
                0,
                0.30,
                0.20,
                240,
                0.95,
                9_000,
                0.40,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "dealII",
            "Dl",
            S,
            0.50,
            1.5,
            vec![ph(
                0, 0.33, 0.25, 256, 0.93, 28_000, 0.32, 6, 0.01, m, 0.0, 0,
            )],
        ),
        mk(
            "gamess",
            "Ga",
            S,
            0.45,
            1.4,
            vec![ph(
                0,
                0.30,
                0.15,
                256,
                0.96,
                2_800,
                0.35,
                6,
                0.002,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "gcc",
            "Gc",
            S,
            0.50,
            1.4,
            vec![
                ph(
                    25_000_000, 0.33, 0.30, 256, 0.92, 20_000, 0.32, 6, 0.015, m, 0.0, 0,
                ),
                ph(
                    25_000_000, 0.33, 0.30, 256, 0.92, 60_000, 0.35, 6, 0.015, m, 0.0, 0,
                ),
            ],
        ),
        mk(
            "gemsFDTD",
            "Gm",
            S,
            0.50,
            2.2,
            vec![ph(
                0,
                0.35,
                0.35,
                256,
                0.90,
                50_000,
                0.32,
                6,
                0.50,
                4 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "gobmk",
            "Gk",
            S,
            0.50,
            1.3,
            vec![ph(
                0,
                0.35,
                0.20,
                384,
                0.84,
                8_000,
                0.40,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "gromacs",
            "Gr",
            S,
            0.45,
            1.5,
            vec![ph(
                0,
                0.30,
                0.20,
                320,
                0.95,
                7_500,
                0.40,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            // h264ref's phase behaviour drives Figure 2 of the paper.
            "h264ref",
            "H2",
            S,
            0.50,
            1.6,
            vec![
                ph(
                    20_000_000, 0.34, 0.25, 256, 0.93, 5_000, 0.32, 6, 0.01, m, 0.0, 0,
                ),
                ph(
                    20_000_000, 0.34, 0.25, 256, 0.93, 22_000, 0.32, 6, 0.01, m, 0.0, 0,
                ),
                ph(
                    20_000_000, 0.34, 0.25, 256, 0.93, 45_000, 0.32, 6, 0.01, m, 0.0, 0,
                ),
            ],
        ),
        mk(
            "hmmer",
            "Hm",
            S,
            0.40,
            1.8,
            vec![ph(
                0,
                0.45,
                0.20,
                320,
                0.96,
                3_500,
                0.35,
                6,
                0.005,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "lbm",
            "Lb",
            S,
            0.45,
            2.8,
            vec![ph(
                0,
                0.30,
                0.45,
                224,
                0.93,
                18_000,
                0.35,
                6,
                0.68,
                4 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "leslie3d",
            "Ls",
            S,
            0.50,
            2.2,
            vec![ph(
                0,
                0.33,
                0.35,
                256,
                0.91,
                40_000,
                0.32,
                6,
                0.45,
                3 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "libquantum",
            "Lq",
            S,
            0.40,
            3.0,
            vec![ph(
                0,
                0.25,
                0.30,
                128,
                0.94,
                3_000,
                0.40,
                4,
                0.80,
                2 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "mcf",
            "Mc",
            S,
            0.60,
            1.5,
            vec![ph(
                0,
                0.34,
                0.20,
                288,
                0.78,
                1_800_000,
                0.80,
                7,
                0.02,
                2 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "milc",
            "Mi",
            S,
            0.50,
            2.4,
            vec![ph(
                0,
                0.30,
                0.35,
                176,
                0.93,
                8_000,
                0.35,
                5,
                0.70,
                3 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "namd",
            "Nd",
            S,
            0.45,
            1.6,
            vec![ph(
                0,
                0.30,
                0.20,
                320,
                0.95,
                7_000,
                0.40,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            // Non-LRU: cyclic scans of varying length (see module docs).
            "omnetpp",
            "Om",
            S,
            0.55,
            1.25,
            vec![
                ph(
                    3_000_000, 0.33, 0.30, 256, 0.90, 30_000, 0.80, 6, 0.02, m, 0.30, 16_384,
                ),
                ph(
                    3_000_000, 0.33, 0.30, 256, 0.90, 30_000, 0.80, 6, 0.02, m, 0.30, 24_576,
                ),
                ph(
                    3_000_000, 0.33, 0.30, 256, 0.90, 30_000, 0.80, 6, 0.02, m, 0.30, 32_768,
                ),
                ph(
                    3_000_000, 0.33, 0.30, 256, 0.90, 30_000, 0.80, 6, 0.02, m, 0.30, 40_960,
                ),
            ],
        ),
        mk(
            "perlbench",
            "Pe",
            S,
            0.50,
            1.4,
            vec![ph(
                0,
                0.35,
                0.30,
                256,
                0.93,
                18_000,
                0.32,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "povray",
            "Po",
            S,
            0.45,
            1.4,
            vec![ph(
                0,
                0.30,
                0.20,
                256,
                0.96,
                3_200,
                0.35,
                6,
                0.002,
                m / 4,
                0.0,
                0,
            )],
        ),
        mk(
            "sjeng",
            "Sj",
            S,
            0.50,
            1.3,
            vec![ph(
                0,
                0.25,
                0.20,
                256,
                0.93,
                15_000,
                0.32,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "soplex",
            "So",
            S,
            0.50,
            1.6,
            vec![ph(
                0,
                0.35,
                0.25,
                288,
                0.82,
                900_000,
                0.75,
                7,
                0.06,
                3 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "sphinx",
            "Sp",
            S,
            0.50,
            1.8,
            vec![ph(
                0,
                0.35,
                0.15,
                256,
                0.90,
                90_000,
                0.32,
                6,
                0.25,
                2 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "tonto",
            "To",
            S,
            0.45,
            1.5,
            vec![ph(
                0,
                0.30,
                0.25,
                320,
                0.95,
                5_500,
                0.35,
                6,
                0.005,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "wrf",
            "Wr",
            S,
            0.50,
            1.8,
            vec![ph(
                0,
                0.32,
                0.30,
                256,
                0.92,
                48_000,
                0.32,
                6,
                0.15,
                5 * m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "xalancbmk",
            "Xa",
            S,
            0.55,
            1.3,
            vec![
                ph(
                    3_000_000, 0.34, 0.25, 256, 0.90, 20_000, 0.80, 6, 0.01, m, 0.32, 16_384,
                ),
                ph(
                    3_000_000, 0.34, 0.25, 256, 0.90, 20_000, 0.80, 6, 0.01, m, 0.32, 24_576,
                ),
                ph(
                    3_000_000, 0.34, 0.25, 256, 0.90, 20_000, 0.80, 6, 0.01, m, 0.32, 32_768,
                ),
                ph(
                    3_000_000, 0.34, 0.25, 256, 0.90, 20_000, 0.80, 6, 0.01, m, 0.32, 40_960,
                ),
            ],
        ),
        mk(
            "zeusmp",
            "Ze",
            S,
            0.50,
            2.0,
            vec![ph(
                0,
                0.32,
                0.35,
                256,
                0.91,
                55_000,
                0.32,
                6,
                0.30,
                3 * m,
                0.0,
                0,
            )],
        ),
    ]
}

/// The 5 HPC proxy-app profiles (italicised in Table 1).
pub fn hpc_benchmarks() -> Vec<BenchmarkProfile> {
    use Suite::Hpc as H;
    let m = 1u64 << 20;
    vec![
        mk(
            "amg2013",
            "Am",
            H,
            0.50,
            1.7,
            vec![ph(
                0,
                0.36,
                0.25,
                288,
                0.87,
                400_000,
                0.50,
                7,
                0.30,
                4 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "comd",
            "Co",
            H,
            0.50,
            1.6,
            vec![ph(
                0, 0.30, 0.25, 256, 0.93, 13_000, 0.32, 6, 0.015, m, 0.0, 0,
            )],
        ),
        mk(
            "lulesh",
            "Lu",
            H,
            0.50,
            2.0,
            vec![ph(
                0,
                0.33,
                0.35,
                256,
                0.91,
                90_000,
                0.40,
                6,
                0.35,
                3 * m,
                0.0,
                0,
            )],
        ),
        mk(
            "nekbone",
            "Ne",
            H,
            0.45,
            1.5,
            vec![ph(
                0,
                0.34,
                0.25,
                384,
                0.84,
                5_500,
                0.50,
                6,
                0.01,
                m / 2,
                0.0,
                0,
            )],
        ),
        mk(
            "xsbench",
            "Xb",
            H,
            0.50,
            1.8,
            vec![ph(
                0,
                0.35,
                0.10,
                256,
                0.80,
                700_000,
                0.85,
                7,
                0.03,
                2 * m,
                0.0,
                0,
            )],
        ),
    ]
}

/// All 34 benchmarks, SPEC first then HPC (Table 1 order).
pub fn all_benchmarks() -> Vec<BenchmarkProfile> {
    let mut v = spec2006_benchmarks();
    v.extend(hpc_benchmarks());
    v
}

/// Look up a benchmark by full name or acronym.
pub fn benchmark_by_name(name: &str) -> Option<BenchmarkProfile> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name) || b.acronym.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn counts_match_table1() {
        assert_eq!(spec2006_benchmarks().len(), 29);
        assert_eq!(hpc_benchmarks().len(), 5);
        assert_eq!(all_benchmarks().len(), 34);
    }

    #[test]
    fn all_profiles_valid_and_unique() {
        let all = all_benchmarks();
        let names: BTreeSet<_> = all.iter().map(|b| b.name).collect();
        let acrs: BTreeSet<_> = all.iter().map(|b| b.acronym).collect();
        assert_eq!(names.len(), 34, "duplicate benchmark names");
        assert_eq!(acrs.len(), 34, "duplicate acronyms");
        for b in &all {
            b.validate();
        }
    }

    #[test]
    fn lookup_by_name_and_acronym() {
        // Table 1 prints "Si(sjeng)" but the dual mix is "SjWr"; we use "Sj".
        assert_eq!(benchmark_by_name("mcf").unwrap().acronym, "Mc");
        assert_eq!(benchmark_by_name("H2").unwrap().name, "h264ref");
        assert_eq!(benchmark_by_name("XSBENCH").unwrap().acronym, "Xb");
        assert!(benchmark_by_name("nonexistent").is_none());
    }

    #[test]
    fn taxonomy_spot_checks() {
        let get = |n: &str| benchmark_by_name(n).unwrap();
        // Cache-resident: working set under 1/4 of the 4MB L2, strong L1
        // locality.
        for n in ["gamess", "povray", "tonto", "hmmer"] {
            let b = get(n);
            assert!(b.max_ws_blocks() < 16_384, "{n} should be small");
            assert!(b.phases[0].hot_weight >= 0.9, "{n} should be L1-local");
        }
        // Huge working sets: well beyond an 8MB L2, leaky L1.
        for n in ["mcf", "soplex", "xsbench"] {
            let b = get(n);
            assert!(b.max_ws_blocks() > 300_000, "{n} should be huge");
            assert!(b.phases[0].hot_weight <= 0.82, "{n} leaks through L1");
        }
        // Streaming apps carry a dominant stream fraction.
        for n in ["libquantum", "milc", "lbm"] {
            assert!(get(n).phases[0].stream_frac >= 0.6, "{n} should stream");
        }
        // Non-LRU apps scan, with phase-varying scan lengths.
        for n in ["omnetpp", "xalancbmk"] {
            let b = get(n);
            assert!(b.phases.len() >= 3, "{n} needs scan phases");
            assert!(b.phases.iter().all(|p| p.scan_frac > 0.2));
            let lens: BTreeSet<_> = b.phases.iter().map(|p| p.scan_blocks).collect();
            assert!(lens.len() >= 3, "{n} scan lengths must vary");
        }
        // h264ref has the Figure 2 phase schedule.
        assert_eq!(get("h264ref").phases.len(), 3);
    }
}
