//! Nested-zone locality sampling.
//!
//! A phase's reuse traffic is drawn from `Z` nested zones. Zone `j` spans
//! `size_j` blocks at a staggered base offset, with sizes interpolated
//! geometrically between `hot_blocks` and `ws_blocks`. The hot zone (j=0)
//! receives the phase's `hot_weight` probability mass (the L1-hit-rate
//! dial); the remaining `1 - hot_weight` is split over the outer zones
//! with weights decaying as `decay^j` (the L2 stack-depth dial). Sampling
//! picks a zone by weight, then a block uniformly within it.
//!
//! Two properties matter downstream:
//!
//! * **Stack-distance shape.** A uniform zone of `k` blocks-per-set
//!   produces hits spread over the first `k` LRU positions; the weighted
//!   superposition of nested zones therefore yields a *decaying*
//!   per-position histogram — exactly the structure ESTEEM's
//!   alpha-coverage rule exploits.
//! * **Module skew.** Each zone's base offset is derived from a stable
//!   per-benchmark hash, so small zones cover different slices of the set
//!   index space: different cache modules see different associativity
//!   pressure, giving ESTEEM's per-module reconfiguration something real
//!   to adapt to (Figure 2 of the paper).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::profile::PhaseSpec;
use crate::stable_hash;

/// Precomputed zone table for one phase.
#[derive(Debug, Clone)]
pub struct ZoneMixture {
    /// `(cumulative_weight, base_offset, size)` per zone; cumulative
    /// weights normalised to end at exactly 1.0.
    zones: Vec<(f64, u64, u64)>,
}

impl ZoneMixture {
    pub fn build(phase: &PhaseSpec, bench_name: &str) -> Self {
        let z = phase.zones.max(1) as usize;
        let hot = phase.hot_blocks.max(1) as f64;
        let ws = phase.ws_blocks.max(phase.hot_blocks) as f64;
        // Outer-zone decay weights, normalised to (1 - hot_weight).
        let outer_raw: Vec<f64> = (1..z)
            .map(|j| phase.locality_decay.powi(j as i32))
            .collect();
        let outer_sum: f64 = outer_raw.iter().sum();
        let outer_mass = if z > 1 { 1.0 - phase.hot_weight } else { 0.0 };

        let mut zones = Vec::with_capacity(z);
        let mut cum = 0.0;
        for j in 0..z {
            // Geometric size interpolation hot -> ws.
            let t = if z == 1 {
                1.0
            } else {
                j as f64 / (z - 1) as f64
            };
            let size = (hot * (ws / hot).powf(t)).round().max(1.0) as u64;
            // Staggered, deterministic base offset; kept within 4x the
            // working set so the reuse region stays bounded. Offsets are
            // quantized to 1024-block boundaries: with 4096-set caches and
            // typical module counts this aligns zone edges to (multiples
            // of) module boundaries, so associativity demand is *uniform
            // within* a module but *differs across* modules — per-module
            // skew without per-set thrash hotspots.
            let span = (phase.ws_blocks * 4).max(1);
            let offset = if j == 0 {
                0 // the hot zone sits at the region origin
            } else {
                (stable_hash(&[bench_name, "zone", &j.to_string()]) % span) & !1023u64
            };
            let weight = if j == 0 {
                if z > 1 {
                    phase.hot_weight
                } else {
                    1.0
                }
            } else {
                outer_mass * outer_raw[j - 1] / outer_sum
            };
            cum += weight;
            zones.push((cum, offset, size));
        }
        zones.last_mut().expect("at least one zone").0 = 1.0;
        Self { zones }
    }

    /// Draws one block index within the reuse region.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let r: f64 = rng.gen();
        // Zone counts are tiny (<= 8): linear scan beats binary search.
        let &(_, offset, size) = self
            .zones
            .iter()
            .find(|&&(c, _, _)| r <= c)
            .unwrap_or_else(|| self.zones.last().expect("non-empty"));
        offset + rng.gen_range(0..size)
    }

    /// The raw `(cumulative_weight, base_offset, size)` zone table (for
    /// the stream generator's precomputed integer-threshold fast path).
    pub(crate) fn entries(&self) -> &[(f64, u64, u64)] {
        &self.zones
    }

    /// Maximum block index reachable (exclusive); bounds the region.
    pub fn region_limit(&self) -> u64 {
        self.zones.iter().map(|&(_, o, s)| o + s).max().unwrap_or(1)
    }

    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::base_phase;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn sample_stays_in_region() {
        let zm = ZoneMixture::build(&base_phase(), "test");
        let limit = zm.region_limit();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(zm.sample(&mut r) < limit);
        }
    }

    #[test]
    fn hot_weight_controls_hot_fraction() {
        let mut p = base_phase();
        p.hot_weight = 0.95;
        p.hot_blocks = 64;
        p.ws_blocks = 1 << 16;
        let zm = ZoneMixture::build(&p, "hotness");
        let mut r = rng();
        let n = 20_000;
        let hot_hits = (0..n).filter(|_| zm.sample(&mut r) < 64).count();
        // hot_weight picks plus outer zones that happen to overlap [0,64).
        assert!(
            hot_hits as f64 / n as f64 > 0.90,
            "hot fraction {} too low",
            hot_hits as f64 / n as f64
        );
    }

    #[test]
    fn low_hot_weight_spreads_out() {
        let mut p = base_phase();
        p.hot_weight = 0.30;
        p.locality_decay = 1.0;
        p.hot_blocks = 64;
        p.ws_blocks = 1 << 16;
        let zm = ZoneMixture::build(&p, "flat");
        let mut r = rng();
        let n = 20_000;
        let hot_hits = (0..n).filter(|_| zm.sample(&mut r) < 64).count();
        assert!((hot_hits as f64 / n as f64) < 0.45);
    }

    #[test]
    fn offsets_deterministic_per_benchmark() {
        let a = ZoneMixture::build(&base_phase(), "mcf");
        let b = ZoneMixture::build(&base_phase(), "mcf");
        let c = ZoneMixture::build(&base_phase(), "gcc");
        assert_eq!(a.region_limit(), b.region_limit());
        // Different benchmarks stagger differently (statistically certain).
        assert_ne!(a.region_limit(), c.region_limit());
    }

    #[test]
    fn single_zone_degenerates_to_uniform() {
        let mut p = base_phase();
        p.zones = 1;
        p.hot_blocks = 100;
        p.ws_blocks = 100;
        let zm = ZoneMixture::build(&p, "uni");
        assert_eq!(zm.zone_count(), 1);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(zm.sample(&mut r) < 100);
        }
    }
}
