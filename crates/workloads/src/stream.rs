//! The access-stream generator.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::profile::BenchmarkProfile;
use crate::stable_hash;
use crate::zones::ZoneMixture;

/// One memory reference, block-granular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    pub block: u64,
    pub write: bool,
}

/// A bundle of `instrs` retired instructions whose last instruction is the
/// memory reference `mem`. (The generator emits exactly one memory
/// reference per bundle; the bundle size realises the phase's memory
/// intensity.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bundle {
    pub instrs: u32,
    pub mem: MemRef,
}

/// Address-space layout: each core's stream lives in a disjoint region
/// (multiprogrammed workloads share no data, paper §6.1), and within a
/// core's region the reuse/scan/stream components are disjoint.
const CORE_SHIFT: u32 = 52;
const REGION_SHIFT: u32 = 46;
const REGION_REUSE: u64 = 0;
const REGION_SCAN: u64 = 1;
const REGION_STREAM: u64 = 2;

/// Streaming accesses dwell on a block before advancing, mimicking
/// word-granular traversal of a line (8 x 8 B words per 64 B line; a bit
/// of the traversal is lost to the L1, hence 6).
const STREAM_DWELL: u32 = 6;
/// Cyclic scans also touch several words per line before moving on.
const SCAN_DWELL: u32 = 4;
/// Each scan lap covers between 2/3 and all of the scan region (the lap
/// length is re-drawn deterministically per lap). Real scan loops process
/// variable-length work lists; the varying depth also smears the scan's
/// LRU-position spike into a multi-position bump, which is what makes the
/// pattern detectably non-monotone ("non-LRU") at any cache geometry.
const SCAN_LAP_VARIATION: u64 = 2;

/// Per-phase constants precomputed for the per-bundle hot path.
///
/// The RNG draw `r = (u >> 11) as f64 * 2^-53` (the vendored `rand`'s
/// `Standard` f64, 53 high bits) is only ever *compared* against phase
/// fractions, so each comparison is translated once into an exact
/// integer threshold on `k = u >> 11`:
///
/// * `r < frac`  ⟺  `k < ceil(frac * 2^53)`  (and `frac * 2^53` is an
///   exponent shift of an f64, computed without rounding);
/// * `r <= cum`  ⟺  `k < floor(cum * 2^53) + 1`.
///
/// This removes every u64→f64 conversion and f64 compare from bundle
/// generation while keeping each decision bit-identical to the float
/// form — pinned by `fast_path_matches_float_path` below.
#[derive(Debug, Clone)]
struct PhaseFast {
    /// `ceil(stream_frac * 2^53)`: draws below this are stream refs.
    stream_t: u64,
    /// `ceil((stream_frac + scan_frac) * 2^53)` (the same f64 sum the
    /// float path computes): draws below this (and not stream) scan.
    source_t: u64,
    /// `ceil(write_ratio * 2^53)`: write-flag threshold.
    write_t: u64,
    /// `(floor(cum_weight * 2^53) + 1, base_offset, size)` per zone.
    zones_t: Vec<(u64, u64, u64)>,
    /// `1.0 / mem_ratio` (hoists the division; bit-identical).
    inv_mem_ratio: f64,
    duration_instrs: u64,
    /// `stream_blocks.max(1)` / `scan_blocks.max(1)`.
    stream_region: u64,
    scan_region: u64,
}

/// Exact integer threshold for `r < frac` (see `PhaseFast`).
fn lt_threshold(frac: f64) -> u64 {
    (frac * (1u64 << 53) as f64).ceil() as u64
}

/// Exact integer threshold for `r <= cum` (see `PhaseFast`).
fn le_threshold(cum: f64) -> u64 {
    (cum * (1u64 << 53) as f64).floor() as u64 + 1
}

impl PhaseFast {
    fn build(phase: &crate::profile::PhaseSpec, mixture: &ZoneMixture) -> Self {
        Self {
            stream_t: lt_threshold(phase.stream_frac),
            source_t: lt_threshold(phase.stream_frac + phase.scan_frac),
            write_t: lt_threshold(phase.write_ratio),
            zones_t: mixture
                .entries()
                .iter()
                .map(|&(cum, off, size)| (le_threshold(cum), off, size))
                .collect(),
            inv_mem_ratio: 1.0 / phase.mem_ratio,
            duration_instrs: phase.duration_instrs,
            stream_region: phase.stream_blocks.max(1),
            scan_region: phase.scan_blocks.max(1),
        }
    }
}

/// Deterministic, seeded generator of one benchmark's memory reference
/// stream. See the crate docs for the model.
#[derive(Debug, Clone)]
pub struct AccessStream {
    profile: BenchmarkProfile,
    rng: SmallRng,
    core_base: u64,
    /// Precomputed zone mixture per phase (float reference path).
    mixtures: Vec<ZoneMixture>,
    /// Precomputed per-phase hot-path constants (see `PhaseFast`).
    fast: Vec<PhaseFast>,
    phase_idx: usize,
    instrs_in_phase: u64,
    /// Fractional-instruction accumulator realising `mem_ratio` exactly.
    gap_credit: f64,
    stream_ptr: u64,
    stream_dwell: u32,
    scan_ptr: u64,
    scan_dwell: u32,
    scan_lap: u64,
    /// Current lap's wrap point (varies per lap, see `SCAN_LAP_VARIATION`).
    scan_limit: u64,
    total_instrs: u64,
    total_refs: u64,
}

impl AccessStream {
    pub fn new(profile: &BenchmarkProfile, core_id: u32, seed: u64) -> Self {
        profile.validate();
        let rng_seed = stable_hash(&[profile.name, &core_id.to_string(), &seed.to_string()]);
        let mixtures: Vec<ZoneMixture> = profile
            .phases
            .iter()
            .map(|ph| ZoneMixture::build(ph, profile.name))
            .collect();
        let fast = profile
            .phases
            .iter()
            .zip(&mixtures)
            .map(|(ph, zm)| PhaseFast::build(ph, zm))
            .collect();
        Self {
            profile: profile.clone(),
            rng: SmallRng::seed_from_u64(rng_seed),
            core_base: u64::from(core_id) << CORE_SHIFT,
            mixtures,
            fast,
            phase_idx: 0,
            instrs_in_phase: 0,
            gap_credit: 0.0,
            stream_ptr: 0,
            stream_dwell: 0,
            scan_ptr: 0,
            scan_dwell: 0,
            scan_lap: 0,
            scan_limit: u64::MAX, // set on first scan reference

            total_instrs: 0,
            total_refs: 0,
        }
    }

    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    pub fn total_instructions(&self) -> u64 {
        self.total_instrs
    }

    pub fn total_references(&self) -> u64 {
        self.total_refs
    }

    /// Current phase index (diagnostics).
    pub fn phase(&self) -> usize {
        self.phase_idx
    }

    /// Wrap point for the current scan lap: between 2/3 and all of the
    /// region, drawn deterministically from the lap number.
    fn next_scan_limit(&self, region: u64) -> u64 {
        scan_limit_for(self.profile.name, self.scan_lap, region)
    }

    /// Generates the next bundle.
    ///
    /// This is the *reference* implementation (per-call, f64 compares);
    /// the simulator's hot path is the batched [`Self::fill_encoded`],
    /// pinned bit-identical to this one by `fast_path_matches_reference`.
    pub fn next_bundle(&mut self) -> Bundle {
        let phase = &self.profile.phases[self.phase_idx];

        // Instructions carried by this bundle (>= 1, exact rate on average).
        self.gap_credit += self.fast[self.phase_idx].inv_mem_ratio;
        let instrs = (self.gap_credit.floor() as u32).max(1);
        self.gap_credit -= f64::from(instrs);

        // Reference source: stream | scan | zones.
        let r: f64 = self.rng.gen();
        let block = if r < phase.stream_frac {
            let b = self.core_base | (REGION_STREAM << REGION_SHIFT) | self.stream_ptr;
            self.stream_dwell += 1;
            if self.stream_dwell >= STREAM_DWELL {
                self.stream_dwell = 0;
                // Wrapping is rare (once per stream lap), so gate the
                // modulo behind a compare. The remainder (not plain zero)
                // matters when a phase switch shrinks the region.
                self.stream_ptr += 1;
                let region = phase.stream_blocks.max(1);
                if self.stream_ptr >= region {
                    self.stream_ptr %= region;
                }
            }
            b
        } else if r < phase.stream_frac + phase.scan_frac {
            let region = phase.scan_blocks.max(1);
            if self.scan_limit > region {
                self.scan_limit = self.next_scan_limit(region);
            }
            let b = self.core_base | (REGION_SCAN << REGION_SHIFT) | self.scan_ptr;
            self.scan_dwell += 1;
            if self.scan_dwell >= SCAN_DWELL {
                self.scan_dwell = 0;
                self.scan_ptr += 1;
                if self.scan_ptr >= self.scan_limit {
                    self.scan_ptr = 0;
                    self.scan_lap += 1;
                    self.scan_limit = self.next_scan_limit(region);
                }
            }
            b
        } else {
            let idx = self.mixtures[self.phase_idx].sample(&mut self.rng);
            self.core_base | (REGION_REUSE << REGION_SHIFT) | idx
        };
        let write = self.rng.gen_bool(phase.write_ratio);

        // Phase bookkeeping.
        self.total_instrs += u64::from(instrs);
        self.total_refs += 1;
        self.instrs_in_phase += u64::from(instrs);
        if self.instrs_in_phase >= phase.duration_instrs {
            self.instrs_in_phase = 0;
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
        }

        Bundle {
            instrs,
            mem: MemRef { block, write },
        }
    }

    /// Batch-generates bundles until `enc` holds `upto` entries, pushing
    /// the packed `(block << 1) | write` encoding (the layout
    /// `esteem_cache::encode_l1_access` produces — block addresses are
    /// far below 2^63) and the per-bundle instruction counts.
    ///
    /// Emits the exact same bundle sequence as repeated
    /// [`Self::next_bundle`] calls: same RNG draw order, with every f64
    /// comparison replaced by its precomputed exact integer threshold
    /// (see `PhaseFast`) and all generator state held in locals across
    /// the loop. This is the simulator front end's hot path.
    pub fn fill_encoded(&mut self, enc: &mut Vec<u64>, instrs_out: &mut Vec<u32>, upto: usize) {
        if enc.len() >= upto {
            return;
        }
        enc.reserve(upto - enc.len());
        instrs_out.reserve(upto - enc.len());
        let mut rng = self.rng.clone();
        let mut gap_credit = self.gap_credit;
        let mut stream_ptr = self.stream_ptr;
        let mut stream_dwell = self.stream_dwell;
        let mut scan_ptr = self.scan_ptr;
        let mut scan_dwell = self.scan_dwell;
        let mut scan_lap = self.scan_lap;
        let mut scan_limit = self.scan_limit;
        let mut instrs_in_phase = self.instrs_in_phase;
        let mut total_instrs = self.total_instrs;
        let mut total_refs = self.total_refs;
        let core_base = self.core_base;
        let nphases = self.profile.phases.len();
        'phase: while enc.len() < upto {
            let pf = &self.fast[self.phase_idx];
            loop {
                if enc.len() >= upto {
                    break 'phase;
                }
                gap_credit += pf.inv_mem_ratio;
                let instrs = (gap_credit.floor() as u32).max(1);
                gap_credit -= f64::from(instrs);

                let k = rng.next_u64() >> 11;
                let block = if k < pf.stream_t {
                    let b = core_base | (REGION_STREAM << REGION_SHIFT) | stream_ptr;
                    stream_dwell += 1;
                    if stream_dwell >= STREAM_DWELL {
                        stream_dwell = 0;
                        stream_ptr += 1;
                        if stream_ptr >= pf.stream_region {
                            stream_ptr %= pf.stream_region;
                        }
                    }
                    b
                } else if k < pf.source_t {
                    let region = pf.scan_region;
                    if scan_limit > region {
                        scan_limit = scan_limit_for(self.profile.name, scan_lap, region);
                    }
                    let b = core_base | (REGION_SCAN << REGION_SHIFT) | scan_ptr;
                    scan_dwell += 1;
                    if scan_dwell >= SCAN_DWELL {
                        scan_dwell = 0;
                        scan_ptr += 1;
                        if scan_ptr >= scan_limit {
                            scan_ptr = 0;
                            scan_lap += 1;
                            scan_limit = scan_limit_for(self.profile.name, scan_lap, region);
                        }
                    }
                    b
                } else {
                    let k2 = rng.next_u64() >> 11;
                    // First zone with `k2 < threshold`, computed branchlessly
                    // (thresholds are cumulative, hence monotonic): counting
                    // the thresholds at or below `k2` gives the same index
                    // without a data-dependent branch to mispredict.
                    let mut pick = 0usize;
                    for &(t, _, _) in pf.zones_t.iter() {
                        pick += usize::from(k2 >= t);
                    }
                    let pick = pick.min(pf.zones_t.len() - 1);
                    let (_, offset, size) = pf.zones_t[pick];
                    core_base | (REGION_REUSE << REGION_SHIFT) | (offset + rng.gen_range(0..size))
                };
                let write = (rng.next_u64() >> 11) < pf.write_t;
                enc.push((block << 1) | u64::from(write));
                instrs_out.push(instrs);

                total_instrs += u64::from(instrs);
                total_refs += 1;
                instrs_in_phase += u64::from(instrs);
                if instrs_in_phase >= pf.duration_instrs {
                    instrs_in_phase = 0;
                    // Single-phase profiles (duration 0) take this branch on
                    // every bundle; the advance is the identity for them, so
                    // skip the division and the outer-loop re-borrow.
                    if nphases > 1 {
                        self.phase_idx = (self.phase_idx + 1) % nphases;
                        continue 'phase;
                    }
                }
            }
        }
        self.rng = rng;
        self.gap_credit = gap_credit;
        self.stream_ptr = stream_ptr;
        self.stream_dwell = stream_dwell;
        self.scan_ptr = scan_ptr;
        self.scan_dwell = scan_dwell;
        self.scan_lap = scan_lap;
        self.scan_limit = scan_limit;
        self.instrs_in_phase = instrs_in_phase;
        self.total_instrs = total_instrs;
        self.total_refs = total_refs;
    }
}

/// Wrap point for scan lap `lap`: between 2/3 and all of the region,
/// drawn deterministically from the benchmark name and lap number.
fn scan_limit_for(bench_name: &str, lap: u64, region: u64) -> u64 {
    let span = (region / SCAN_LAP_VARIATION).max(1);
    let off = stable_hash(&[bench_name, "lap", &lap.to_string()]) % span;
    (region - off).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{base_phase, BenchmarkProfile, Suite};

    fn profile(phases: Vec<crate::profile::PhaseSpec>) -> BenchmarkProfile {
        BenchmarkProfile {
            name: "synthetic",
            acronym: "Sy",
            suite: Suite::Spec2006,
            cpi_base: 0.5,
            mlp: 1.5,
            phases,
        }
    }

    /// The batched integer-threshold path must emit the exact bundle
    /// sequence of the per-call f64 reference path — across phase
    /// switches, scan laps, and ragged batch boundaries.
    #[test]
    fn fast_path_matches_reference() {
        let mut a = base_phase();
        a.duration_instrs = 7_001;
        let mut b = base_phase();
        b.duration_instrs = 5_003;
        b.mem_ratio = 0.71;
        b.write_ratio = 0.45;
        b.stream_frac = 0.40;
        b.scan_frac = 0.35;
        b.scan_blocks = 97;
        let p = profile(vec![a, b]);
        let mut reference = AccessStream::new(&p, 0, 9);
        let mut fast = AccessStream::new(&p, 0, 9);
        let mut enc = Vec::new();
        let mut instrs = Vec::new();
        let mut consumed = 0usize;
        // Ragged batch sizes exercise mid-phase suspend/resume.
        for batch in [1usize, 2, 509, 1024, 3000, 777, 5000] {
            fast.fill_encoded(&mut enc, &mut instrs, consumed + batch);
            assert_eq!(enc.len(), consumed + batch);
            for i in consumed..enc.len() {
                let want = reference.next_bundle();
                let packed = (want.mem.block << 1) | u64::from(want.mem.write);
                assert_eq!(enc[i], packed, "block/write diverged at bundle {i}");
                assert_eq!(instrs[i], want.instrs, "instrs diverged at bundle {i}");
            }
            consumed = enc.len();
            assert_eq!(fast.total_instructions(), reference.total_instructions());
            assert_eq!(fast.total_references(), reference.total_references());
            assert_eq!(fast.phase(), reference.phase());
        }
    }

    /// Same pin across every real benchmark profile (covers all phase
    /// parameter corners that exist in the suite tables).
    #[test]
    fn fast_path_matches_reference_on_suite() {
        for p in crate::all_benchmarks() {
            let mut reference = AccessStream::new(&p, 1, 3);
            let mut fast = AccessStream::new(&p, 1, 3);
            let mut enc = Vec::new();
            let mut instrs = Vec::new();
            fast.fill_encoded(&mut enc, &mut instrs, 20_000);
            for i in 0..enc.len() {
                let want = reference.next_bundle();
                let packed = (want.mem.block << 1) | u64::from(want.mem.write);
                assert_eq!(enc[i], packed, "{}: diverged at bundle {i}", p.name);
                assert_eq!(instrs[i], want.instrs, "{}: instrs at {i}", p.name);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = profile(vec![base_phase()]);
        let mut a = AccessStream::new(&p, 0, 42);
        let mut b = AccessStream::new(&p, 0, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_bundle(), b.next_bundle());
        }
    }

    #[test]
    fn different_seeds_or_cores_diverge() {
        let p = profile(vec![base_phase()]);
        let mut a = AccessStream::new(&p, 0, 1);
        let mut b = AccessStream::new(&p, 0, 2);
        let mut c = AccessStream::new(&p, 1, 1);
        let bundles_a: Vec<_> = (0..100).map(|_| a.next_bundle()).collect();
        let bundles_b: Vec<_> = (0..100).map(|_| b.next_bundle()).collect();
        let bundles_c: Vec<_> = (0..100).map(|_| c.next_bundle()).collect();
        assert_ne!(bundles_a, bundles_b);
        assert_ne!(bundles_a, bundles_c);
        // Cores never share blocks.
        for (x, y) in bundles_a.iter().zip(&bundles_c) {
            assert_ne!(x.mem.block >> CORE_SHIFT, y.mem.block >> CORE_SHIFT);
        }
    }

    #[test]
    fn mem_ratio_realised() {
        let mut ph = base_phase();
        ph.mem_ratio = 0.25;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        for _ in 0..100_000 {
            s.next_bundle();
        }
        let ratio = s.total_references() as f64 / s.total_instructions() as f64;
        assert!(
            (ratio - 0.25).abs() < 0.01,
            "mem ratio {ratio} drifted from 0.25"
        );
    }

    #[test]
    fn write_ratio_realised() {
        let mut ph = base_phase();
        ph.write_ratio = 0.4;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        let writes = (0..50_000).filter(|_| s.next_bundle().mem.write).count();
        let ratio = writes as f64 / 50_000.0;
        assert!((ratio - 0.4).abs() < 0.02, "write ratio {ratio}");
    }

    #[test]
    fn phases_cycle() {
        let mut a = base_phase();
        a.duration_instrs = 1000;
        a.ws_blocks = 1 << 10;
        let mut b = a.clone();
        b.duration_instrs = 1000;
        b.ws_blocks = 1 << 15;
        let p = profile(vec![a, b]);
        let mut s = AccessStream::new(&p, 0, 0);
        let mut seen = [false, false];
        for _ in 0..5000 {
            s.next_bundle();
            seen[s.phase()] = true;
        }
        assert!(seen[0] && seen[1], "both phases must be visited");
    }

    #[test]
    fn streaming_advances_sequentially() {
        let mut ph = base_phase();
        ph.stream_frac = 1.0;
        ph.scan_frac = 0.0;
        ph.stream_blocks = 1 << 20;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        let blocks: Vec<u64> = (0..60).map(|_| s.next_bundle().mem.block).collect();
        // Dwell STREAM_DWELL times per block, then advance by one.
        let distinct: std::collections::BTreeSet<_> = blocks.iter().collect();
        assert_eq!(distinct.len(), 60 / STREAM_DWELL as usize);
        let mut sorted: Vec<u64> = distinct.iter().map(|&&b| b).collect();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_eq!(w[1] - w[0], 1, "stream must be sequential");
        }
    }

    #[test]
    fn scan_is_cyclic_with_varying_laps() {
        let mut ph = base_phase();
        ph.stream_frac = 0.0;
        ph.scan_frac = 1.0;
        ph.scan_blocks = 30;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        let blocks: Vec<u64> = (0..30 * SCAN_DWELL as usize * 6)
            .map(|_| s.next_bundle().mem.block)
            .collect();
        // Always ascending-from-zero sweeps over the scan region...
        let low = *blocks.iter().min().unwrap();
        let distinct: std::collections::BTreeSet<_> = blocks.iter().collect();
        assert!(distinct.len() <= 30);
        assert!(distinct.len() >= 20, "laps must cover most of the region");
        // ...restarting from the region base each lap.
        assert!(blocks.iter().filter(|&&b| b == low).count() >= 2);
        // Lap lengths vary: consecutive wrap distances are not all equal.
        let wraps: Vec<usize> = blocks
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == low)
            .map(|(i, _)| i)
            .collect();
        let gaps: std::collections::BTreeSet<usize> =
            wraps.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.len() >= 2, "lap lengths should vary, got {gaps:?}");
    }
}
