//! The access-stream generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::BenchmarkProfile;
use crate::stable_hash;
use crate::zones::ZoneMixture;

/// One memory reference, block-granular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    pub block: u64,
    pub write: bool,
}

/// A bundle of `instrs` retired instructions whose last instruction is the
/// memory reference `mem`. (The generator emits exactly one memory
/// reference per bundle; the bundle size realises the phase's memory
/// intensity.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bundle {
    pub instrs: u32,
    pub mem: MemRef,
}

/// Address-space layout: each core's stream lives in a disjoint region
/// (multiprogrammed workloads share no data, paper §6.1), and within a
/// core's region the reuse/scan/stream components are disjoint.
const CORE_SHIFT: u32 = 52;
const REGION_SHIFT: u32 = 46;
const REGION_REUSE: u64 = 0;
const REGION_SCAN: u64 = 1;
const REGION_STREAM: u64 = 2;

/// Streaming accesses dwell on a block before advancing, mimicking
/// word-granular traversal of a line (8 x 8 B words per 64 B line; a bit
/// of the traversal is lost to the L1, hence 6).
const STREAM_DWELL: u32 = 6;
/// Cyclic scans also touch several words per line before moving on.
const SCAN_DWELL: u32 = 4;
/// Each scan lap covers between 2/3 and all of the scan region (the lap
/// length is re-drawn deterministically per lap). Real scan loops process
/// variable-length work lists; the varying depth also smears the scan's
/// LRU-position spike into a multi-position bump, which is what makes the
/// pattern detectably non-monotone ("non-LRU") at any cache geometry.
const SCAN_LAP_VARIATION: u64 = 2;

/// Deterministic, seeded generator of one benchmark's memory reference
/// stream. See the crate docs for the model.
#[derive(Debug, Clone)]
pub struct AccessStream {
    profile: BenchmarkProfile,
    rng: SmallRng,
    core_base: u64,
    /// Precomputed zone mixture per phase.
    mixtures: Vec<ZoneMixture>,
    /// Precomputed `1.0 / mem_ratio` per phase (hoists an f64 division out
    /// of the per-bundle path; bit-identical to dividing inline).
    inv_mem_ratio: Vec<f64>,
    phase_idx: usize,
    instrs_in_phase: u64,
    /// Fractional-instruction accumulator realising `mem_ratio` exactly.
    gap_credit: f64,
    stream_ptr: u64,
    stream_dwell: u32,
    scan_ptr: u64,
    scan_dwell: u32,
    scan_lap: u64,
    /// Current lap's wrap point (varies per lap, see `SCAN_LAP_VARIATION`).
    scan_limit: u64,
    total_instrs: u64,
    total_refs: u64,
}

impl AccessStream {
    pub fn new(profile: &BenchmarkProfile, core_id: u32, seed: u64) -> Self {
        profile.validate();
        let rng_seed = stable_hash(&[profile.name, &core_id.to_string(), &seed.to_string()]);
        let mixtures = profile
            .phases
            .iter()
            .map(|ph| ZoneMixture::build(ph, profile.name))
            .collect();
        let inv_mem_ratio = profile.phases.iter().map(|ph| 1.0 / ph.mem_ratio).collect();
        Self {
            profile: profile.clone(),
            rng: SmallRng::seed_from_u64(rng_seed),
            core_base: u64::from(core_id) << CORE_SHIFT,
            mixtures,
            inv_mem_ratio,
            phase_idx: 0,
            instrs_in_phase: 0,
            gap_credit: 0.0,
            stream_ptr: 0,
            stream_dwell: 0,
            scan_ptr: 0,
            scan_dwell: 0,
            scan_lap: 0,
            scan_limit: u64::MAX, // set on first scan reference

            total_instrs: 0,
            total_refs: 0,
        }
    }

    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    pub fn total_instructions(&self) -> u64 {
        self.total_instrs
    }

    pub fn total_references(&self) -> u64 {
        self.total_refs
    }

    /// Current phase index (diagnostics).
    pub fn phase(&self) -> usize {
        self.phase_idx
    }

    /// Wrap point for the current scan lap: between 2/3 and all of the
    /// region, drawn deterministically from the lap number.
    fn next_scan_limit(&self, region: u64) -> u64 {
        let span = (region / SCAN_LAP_VARIATION).max(1);
        let off = stable_hash(&[self.profile.name, "lap", &self.scan_lap.to_string()]) % span;
        (region - off).max(1)
    }

    /// Generates the next bundle.
    pub fn next_bundle(&mut self) -> Bundle {
        let phase = &self.profile.phases[self.phase_idx];

        // Instructions carried by this bundle (>= 1, exact rate on average).
        self.gap_credit += self.inv_mem_ratio[self.phase_idx];
        let instrs = (self.gap_credit.floor() as u32).max(1);
        self.gap_credit -= f64::from(instrs);

        // Reference source: stream | scan | zones.
        let r: f64 = self.rng.gen();
        let block = if r < phase.stream_frac {
            let b = self.core_base | (REGION_STREAM << REGION_SHIFT) | self.stream_ptr;
            self.stream_dwell += 1;
            if self.stream_dwell >= STREAM_DWELL {
                self.stream_dwell = 0;
                // Wrapping is rare (once per stream lap), so gate the
                // modulo behind a compare. The remainder (not plain zero)
                // matters when a phase switch shrinks the region.
                self.stream_ptr += 1;
                let region = phase.stream_blocks.max(1);
                if self.stream_ptr >= region {
                    self.stream_ptr %= region;
                }
            }
            b
        } else if r < phase.stream_frac + phase.scan_frac {
            let region = phase.scan_blocks.max(1);
            if self.scan_limit > region {
                self.scan_limit = self.next_scan_limit(region);
            }
            let b = self.core_base | (REGION_SCAN << REGION_SHIFT) | self.scan_ptr;
            self.scan_dwell += 1;
            if self.scan_dwell >= SCAN_DWELL {
                self.scan_dwell = 0;
                self.scan_ptr += 1;
                if self.scan_ptr >= self.scan_limit {
                    self.scan_ptr = 0;
                    self.scan_lap += 1;
                    self.scan_limit = self.next_scan_limit(region);
                }
            }
            b
        } else {
            let idx = self.mixtures[self.phase_idx].sample(&mut self.rng);
            self.core_base | (REGION_REUSE << REGION_SHIFT) | idx
        };
        let write = self.rng.gen_bool(phase.write_ratio);

        // Phase bookkeeping.
        self.total_instrs += u64::from(instrs);
        self.total_refs += 1;
        self.instrs_in_phase += u64::from(instrs);
        if self.instrs_in_phase >= phase.duration_instrs {
            self.instrs_in_phase = 0;
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
        }

        Bundle {
            instrs,
            mem: MemRef { block, write },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{base_phase, BenchmarkProfile, Suite};

    fn profile(phases: Vec<crate::profile::PhaseSpec>) -> BenchmarkProfile {
        BenchmarkProfile {
            name: "synthetic",
            acronym: "Sy",
            suite: Suite::Spec2006,
            cpi_base: 0.5,
            mlp: 1.5,
            phases,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = profile(vec![base_phase()]);
        let mut a = AccessStream::new(&p, 0, 42);
        let mut b = AccessStream::new(&p, 0, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_bundle(), b.next_bundle());
        }
    }

    #[test]
    fn different_seeds_or_cores_diverge() {
        let p = profile(vec![base_phase()]);
        let mut a = AccessStream::new(&p, 0, 1);
        let mut b = AccessStream::new(&p, 0, 2);
        let mut c = AccessStream::new(&p, 1, 1);
        let bundles_a: Vec<_> = (0..100).map(|_| a.next_bundle()).collect();
        let bundles_b: Vec<_> = (0..100).map(|_| b.next_bundle()).collect();
        let bundles_c: Vec<_> = (0..100).map(|_| c.next_bundle()).collect();
        assert_ne!(bundles_a, bundles_b);
        assert_ne!(bundles_a, bundles_c);
        // Cores never share blocks.
        for (x, y) in bundles_a.iter().zip(&bundles_c) {
            assert_ne!(x.mem.block >> CORE_SHIFT, y.mem.block >> CORE_SHIFT);
        }
    }

    #[test]
    fn mem_ratio_realised() {
        let mut ph = base_phase();
        ph.mem_ratio = 0.25;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        for _ in 0..100_000 {
            s.next_bundle();
        }
        let ratio = s.total_references() as f64 / s.total_instructions() as f64;
        assert!(
            (ratio - 0.25).abs() < 0.01,
            "mem ratio {ratio} drifted from 0.25"
        );
    }

    #[test]
    fn write_ratio_realised() {
        let mut ph = base_phase();
        ph.write_ratio = 0.4;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        let writes = (0..50_000).filter(|_| s.next_bundle().mem.write).count();
        let ratio = writes as f64 / 50_000.0;
        assert!((ratio - 0.4).abs() < 0.02, "write ratio {ratio}");
    }

    #[test]
    fn phases_cycle() {
        let mut a = base_phase();
        a.duration_instrs = 1000;
        a.ws_blocks = 1 << 10;
        let mut b = a.clone();
        b.duration_instrs = 1000;
        b.ws_blocks = 1 << 15;
        let p = profile(vec![a, b]);
        let mut s = AccessStream::new(&p, 0, 0);
        let mut seen = [false, false];
        for _ in 0..5000 {
            s.next_bundle();
            seen[s.phase()] = true;
        }
        assert!(seen[0] && seen[1], "both phases must be visited");
    }

    #[test]
    fn streaming_advances_sequentially() {
        let mut ph = base_phase();
        ph.stream_frac = 1.0;
        ph.scan_frac = 0.0;
        ph.stream_blocks = 1 << 20;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        let blocks: Vec<u64> = (0..60).map(|_| s.next_bundle().mem.block).collect();
        // Dwell STREAM_DWELL times per block, then advance by one.
        let distinct: std::collections::BTreeSet<_> = blocks.iter().collect();
        assert_eq!(distinct.len(), 60 / STREAM_DWELL as usize);
        let mut sorted: Vec<u64> = distinct.iter().map(|&&b| b).collect();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert_eq!(w[1] - w[0], 1, "stream must be sequential");
        }
    }

    #[test]
    fn scan_is_cyclic_with_varying_laps() {
        let mut ph = base_phase();
        ph.stream_frac = 0.0;
        ph.scan_frac = 1.0;
        ph.scan_blocks = 30;
        let p = profile(vec![ph]);
        let mut s = AccessStream::new(&p, 0, 0);
        let blocks: Vec<u64> = (0..30 * SCAN_DWELL as usize * 6)
            .map(|_| s.next_bundle().mem.block)
            .collect();
        // Always ascending-from-zero sweeps over the scan region...
        let low = *blocks.iter().min().unwrap();
        let distinct: std::collections::BTreeSet<_> = blocks.iter().collect();
        assert!(distinct.len() <= 30);
        assert!(distinct.len() >= 20, "laps must cover most of the region");
        // ...restarting from the region base each lap.
        assert!(blocks.iter().filter(|&&b| b == low).count() >= 2);
        // Lap lengths vary: consecutive wrap distances are not all equal.
        let wraps: Vec<usize> = blocks
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == low)
            .map(|(i, _)| i)
            .collect();
        let gaps: std::collections::BTreeSet<usize> =
            wraps.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.len() >= 2, "lap lengths should vary, got {gaps:?}");
    }
}
