//! Sliding-window quantiles over [`Histogram`](crate::Histogram)
//! deltas.
//!
//! A [`Histogram`](crate::Histogram) accumulates forever, which is the
//! right shape for lifetime stage latencies but useless as a *control
//! signal*: admission control needs "queue-wait p95 over the last few
//! seconds", not since boot. [`SlidingWindow`] turns the cumulative
//! histogram into a windowed one without touching the record hot path:
//! the caller periodically [`rotate`](SlidingWindow::rotate)s in a
//! cumulative [`HistogramSnapshot`] (one per slot interval), the window
//! keeps the last `slots` boundaries, and
//! [`delta`](SlidingWindow::delta) answers with
//! `current - oldest_boundary` — exactly the samples recorded during
//! the window. Old load falls out of the signal as its boundary rotates
//! off the ring, which is what lets SLO shedding *disengage* after a
//! flood passes.
//!
//! Rotation cost is one snapshot (sparse copy of occupied buckets);
//! there is no per-record cost at all.

use std::collections::VecDeque;

use crate::HistogramSnapshot;

/// A bounded ring of cumulative snapshot boundaries; see module docs.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    slots: usize,
    boundaries: VecDeque<HistogramSnapshot>,
}

impl SlidingWindow {
    /// A window spanning `slots` rotation intervals (at least 1).
    pub fn new(slots: usize) -> Self {
        Self {
            slots: slots.max(1),
            boundaries: VecDeque::new(),
        }
    }

    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of boundaries currently held (saturates at `slots`).
    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// Pushes a cumulative snapshot as the newest slot boundary,
    /// dropping the oldest once `slots` are held. Call once per slot
    /// interval; calling with an identical snapshot simply ages the
    /// window (an idle period drains it to an empty delta).
    pub fn rotate(&mut self, cumulative: HistogramSnapshot) {
        self.boundaries.push_back(cumulative);
        while self.boundaries.len() > self.slots {
            self.boundaries.pop_front();
        }
    }

    /// Samples recorded since the oldest held boundary: the windowed
    /// histogram. Before the first rotation this is `current` itself
    /// (the window is "everything so far", which self-corrects after
    /// one slot interval).
    pub fn delta(&self, current: &HistogramSnapshot) -> HistogramSnapshot {
        match self.boundaries.front() {
            Some(oldest) => current.delta_since(oldest),
            None => current.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn window_sees_only_recent_samples() {
        let h = Histogram::new();
        let mut w = SlidingWindow::new(2);
        for _ in 0..100 {
            h.record(10_000); // old, slow samples
        }
        w.rotate(h.snapshot());
        for _ in 0..10 {
            h.record(100); // recent, fast samples
        }
        let d = w.delta(&h.snapshot());
        assert_eq!(d.count(), 10);
        assert!(d.quantile(0.95) < 1_000, "old samples leaked into window");
    }

    #[test]
    fn old_load_rotates_out() {
        let h = Histogram::new();
        let mut w = SlidingWindow::new(2);
        w.rotate(h.snapshot());
        for _ in 0..50 {
            h.record(1_000_000); // a flood during slot 1
        }
        w.rotate(h.snapshot());
        assert!(w.delta(&h.snapshot()).count() > 0);
        // Two idle rotations later the flood is outside the window.
        w.rotate(h.snapshot());
        w.rotate(h.snapshot());
        assert_eq!(w.delta(&h.snapshot()).count(), 0);
    }

    #[test]
    fn before_first_rotation_window_is_lifetime() {
        let h = Histogram::new();
        let w = SlidingWindow::new(4);
        h.record(42);
        assert_eq!(w.delta(&h.snapshot()).count(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let h = Histogram::new();
        let mut w = SlidingWindow::new(3);
        for _ in 0..10 {
            w.rotate(h.snapshot());
        }
        assert_eq!(w.len(), 3);
        assert_eq!(SlidingWindow::new(0).slots(), 1);
    }

    #[test]
    fn windowed_quantiles_track_the_delta() {
        let h = Histogram::new();
        let mut w = SlidingWindow::new(4);
        h.record(1);
        w.rotate(h.snapshot());
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        let d = w.delta(&h.snapshot());
        assert_eq!(d.count(), 4);
        assert!(d.quantile(0.5) >= 100);
        assert!(d.quantile(1.0) >= 390); // log-linear error ~1.6%
    }
}
