//! Per-interval observation: streaming records out of a running
//! simulation without touching its state.
//!
//! The system simulator emits one [`IntervalSample`] per observation
//! interval (the controller's reconfiguration interval when it has one,
//! otherwise one retention period). Counter fields are **deltas over the
//! interval** — together with `cycle` they are exactly the inputs of the
//! paper's energy model (eq. 2–8) at interval granularity; `ways` and
//! `active_fraction` capture the configuration the controller chose.

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

/// One observation interval's record (the `--interval-log` JSONL schema;
/// see DESIGN.md §"Interval log").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Cycle at the end of the observation interval.
    pub cycle: u64,
    /// Interval length in cycles (the first record also covers cycle 0).
    pub span_cycles: u64,
    /// Active ways per module at the end of the interval.
    pub ways: Vec<u8>,
    /// Powered-on fraction of the L2 at the end of the interval.
    pub active_fraction: f64,
    /// L2 demand hits in the interval.
    pub l2_hits: u64,
    /// L2 demand misses in the interval.
    pub l2_misses: u64,
    /// L2 dirty evictions in the interval.
    pub l2_writebacks: u64,
    /// Lines refreshed in the interval.
    pub refreshes: u64,
    /// Lines invalidated instead of refreshed (RPD, ECC scrubs).
    pub invalidations: u64,
    /// Main-memory reads (fills) in the interval.
    pub mem_reads: u64,
    /// Main-memory writes (write-backs) in the interval.
    pub mem_writes: u64,
    /// Slot power-state transitions (the paper's `N_L`) in the interval.
    pub slot_transitions: u64,
    /// Instructions retired across all cores in the interval.
    pub instructions: u64,
}

/// A sink for per-interval records. Observers are strictly read-only
/// taps: the simulator's behavior must be identical with or without one.
pub trait IntervalObserver: Send {
    fn on_interval(&mut self, sample: &IntervalSample);

    /// Flushes buffered records, surfacing any deferred I/O error. The
    /// simulator calls this once at the end of the run.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams every sample as one JSON object per line (JSON Lines).
pub struct JsonlSink<W: Write + Send> {
    out: W,
    records: u64,
    /// First I/O error, if any (subsequent writes are skipped).
    error: Option<std::io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        Self {
            out,
            records: 0,
            error: None,
        }
    }

    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the first write error, if one occurred.
    pub fn finish(mut self) -> std::io::Result<u64> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.records)
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    /// Best-effort flush so records survive even when the owner never
    /// calls [`flush`](IntervalObserver::flush) / [`finish`](Self::finish)
    /// (e.g. an early return unwinds the simulator). Errors are swallowed
    /// here — `finish`/`flush` are the error-surfacing paths.
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

impl<W: Write + Send> IntervalObserver for JsonlSink<W> {
    fn on_interval(&mut self, sample: &IntervalSample) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(sample).expect("sample serializes");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
            return;
        }
        self.records += 1;
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Reads an interval log back: the inverse of [`JsonlSink`]. Blank lines
/// are skipped; a malformed line fails with its 1-based line number.
pub fn read_interval_log<R: BufRead>(reader: R) -> std::io::Result<Vec<IntervalSample>> {
    let mut samples = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let sample = serde_json::from_str::<IntervalSample>(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("interval log line {}: {e}", idx + 1),
            )
        })?;
        samples.push(sample);
    }
    Ok(samples)
}

/// Collects samples in memory (tests and programmatic consumers).
#[derive(Debug, Default)]
pub struct VecSink {
    pub samples: Vec<IntervalSample>,
}

impl VecSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl IntervalObserver for VecSink {
    fn on_interval(&mut self, sample: &IntervalSample) {
        self.samples.push(sample.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64) -> IntervalSample {
        IntervalSample {
            cycle,
            span_cycles: 500,
            ways: vec![16, 3],
            active_fraction: 0.59375,
            l2_hits: 10,
            l2_misses: 2,
            l2_writebacks: 1,
            refreshes: 128,
            invalidations: 0,
            mem_reads: 2,
            mem_writes: 1,
            slot_transitions: 13,
            instructions: 1000,
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_sample() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_interval(&sample(500));
        sink.on_interval(&sample(1000));
        assert_eq!(sink.records_written(), 2);
        let text = String::from_utf8(sink.out.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            let m = v.as_map().expect("record is an object");
            assert!(serde::map_get(m, "cycle").is_ok());
            assert!(serde::map_get(m, "ways").is_ok());
            assert!(serde::map_get(m, "refreshes").is_ok());
        }
        assert_eq!(sink.finish().unwrap(), 2);
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink = VecSink::new();
        sink.on_interval(&sample(500));
        assert_eq!(sink.samples.len(), 1);
        assert_eq!(sink.samples[0].cycle, 500);
    }

    #[test]
    fn empty_run_finishes_with_zero_records_and_no_output() {
        // A run too short to complete a single observation interval must
        // still finish cleanly with an empty (but flushed) log.
        let mut sink = JsonlSink::new(Vec::new());
        IntervalObserver::flush(&mut sink).unwrap();
        assert_eq!(sink.records_written(), 0);
        assert!(sink.out.is_empty());
        assert_eq!(sink.finish().unwrap(), 0);
    }

    /// Writer that fails every write with `BrokenPipe`.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "boom"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_io_error_latches_and_propagates() {
        let mut sink = JsonlSink::new(FailingWriter);
        sink.on_interval(&sample(500));
        // The failed record is not counted and later records are skipped.
        sink.on_interval(&sample(1000));
        assert_eq!(sink.records_written(), 0);
        let err = IntervalObserver::flush(&mut sink).expect_err("first error surfaces");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // The error is surfaced once; a second flush succeeds (nothing new).
        IntervalObserver::flush(&mut sink).unwrap();
    }

    #[test]
    fn finish_reports_latched_write_error() {
        let mut sink = JsonlSink::new(FailingWriter);
        sink.on_interval(&sample(500));
        assert!(sink.finish().is_err());
    }

    /// Buffers writes internally and flushes into a shared sink, so a test
    /// can observe whether `drop` flushed.
    struct SharedWriter {
        buf: Vec<u8>,
        flushed: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
    }

    impl Write for SharedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushed.lock().unwrap().extend_from_slice(&self.buf);
            self.buf.clear();
            Ok(())
        }
    }

    #[test]
    fn dropping_the_sink_flushes_buffered_records() {
        let flushed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        {
            let mut sink = JsonlSink::new(SharedWriter {
                buf: Vec::new(),
                flushed: flushed.clone(),
            });
            sink.on_interval(&sample(500));
            assert!(
                flushed.lock().unwrap().is_empty(),
                "record still buffered before drop"
            );
        }
        let text = String::from_utf8(flushed.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "drop flushed the buffered record");
    }

    #[test]
    fn interval_log_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_interval(&sample(500));
        sink.on_interval(&sample(1000));
        let bytes = sink.out.clone();
        let back = read_interval_log(&bytes[..]).unwrap();
        assert_eq!(back, vec![sample(500), sample(1000)]);
    }

    #[test]
    fn interval_log_reader_skips_blanks_and_names_bad_lines() {
        let good = serde_json::to_string(&sample(500)).unwrap();
        let text = format!("\n{good}\n\nnot json\n");
        let err = read_interval_log(text.as_bytes()).expect_err("bad line fails");
        assert!(err.to_string().contains("line 4"), "got: {err}");
    }
}
