//! Unified statistics and observability for the ESTEEM simulator stack.
//!
//! Every simulated component (caches, refresh engine, bank contention,
//! main memory, cores, controllers) exposes its counters through one
//! mechanism instead of the system simulator hand-mirroring each one:
//!
//! * **Typed stats** — [`Counter`] (monotone event counts), [`Gauge`]
//!   (instantaneous values), and [`TimeWeighted`] (exact integer
//!   `value x cycles` integrals, replacing float accumulation whose
//!   summation order is a determinism hazard).
//! * **Distributions** — [`Histogram`], a lock-free log-linear (HDR
//!   style) bucketed histogram with ~1.6% bounded relative error,
//!   constant size, and no allocation on record; sparse
//!   [`HistogramSnapshot`]s are mergeable, delta-able, and answer
//!   quantile queries (the daemon's stage-latency p50/p95/p99).
//! * **Windowed quantiles** — [`SlidingWindow`] keeps a ring of
//!   cumulative snapshot boundaries and answers quantiles over the
//!   delta, turning a lifetime histogram into a recent-load control
//!   signal (the daemon's SLO-shedding input).
//! * **Hierarchical collection** — components implement [`StatsSource`]
//!   and write their stats into a [`Scope`]; nesting scopes yields
//!   slash-separated paths (`"l2/hits"`, `"cores/0/instructions"`).
//!   One full collection pass produces a [`StatsReading`].
//! * **Warm-up snapshot/delta** — [`StatsRegistry`] stores the reading
//!   taken at the end of warm-up and subtracts it from the final
//!   reading, so reports only ever see post-warm-up deltas. This
//!   replaces the simulator's hand-written `Snapshot` struct and its
//!   field-by-field subtraction code.
//! * **Interval observation** — an [`IntervalObserver`] sink receives
//!   one [`IntervalSample`] per observation interval (per-module way
//!   counts, refresh/hit counters, energy-model inputs);
//!   [`JsonlSink`] streams them as JSON Lines (the
//!   `esteem-sim --interval-log PATH` flag).
//!
//! Collection is pull-based and read-only: components keep their bare
//! `u64` fields on the hot path and only materialize [`StatValue`]s at
//! collection points (warm-up boundary, observation intervals, end of
//! run), so the registry adds zero per-access cost and cannot perturb
//! simulation determinism.

pub mod histogram;
pub mod observer;
pub mod registry;
pub mod window;

pub use histogram::{Histogram, HistogramSnapshot};
pub use observer::{read_interval_log, IntervalObserver, IntervalSample, JsonlSink};
pub use registry::{
    escape_label_value, labeled, Scope, StatValue, StatsReading, StatsRegistry, StatsSource,
};
pub use window::SlidingWindow;

/// A monotonically increasing event count.
///
/// A thin newtype over `u64` rather than an atomic: the simulator is
/// deterministic and single-threaded per run, and the wrapper exists to
/// mark intent (monotone; delta-meaningful) at collection boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    pub const fn new() -> Self {
        Counter(0)
    }

    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// An instantaneous value (no delta semantics; the latest sample wins).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Exact integral of an integer quantity over cycles (`sum value_i * dt_i`).
///
/// Accumulates in `u128`, so the sum is associative and overflow-free for
/// any realistic run (a 4 MB cache has 2^16 slots; even 2^64 cycles of
/// full activity stays below 2^80). Time-averaged fractions are then one
/// division at report time instead of a float sum whose rounding depends
/// on accumulation order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeWeighted(u128);

impl TimeWeighted {
    pub const fn new() -> Self {
        TimeWeighted(0)
    }

    /// Adds `value` held constant over `cycles` cycles.
    #[inline]
    pub fn accumulate(&mut self, value: u64, cycles: u64) {
        self.0 += u128::from(value) * u128::from(cycles);
    }

    /// The raw `value x cycles` integral.
    #[inline]
    pub fn integral(&self) -> u128 {
        self.0
    }

    /// Mean value over a span: `integral / span_cycles` in f64.
    pub fn mean_over(&self, span_cycles: u64) -> f64 {
        if span_cycles == 0 {
            0.0
        } else {
            self.0 as f64 / span_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_latest_wins() {
        let mut g = Gauge::new();
        g.set(1.5);
        g.set(0.25);
        assert_eq!(g.get(), 0.25);
    }

    #[test]
    fn time_weighted_is_exact_and_order_independent() {
        // Values chosen so naive f64 accumulation would round: u128 must
        // hold them exactly in any order.
        let mut a = TimeWeighted::new();
        let mut b = TimeWeighted::new();
        let items = [(u64::MAX / 4, 3u64), (1, 1), (1 << 40, 1 << 20)];
        for &(v, t) in &items {
            a.accumulate(v, t);
        }
        for &(v, t) in items.iter().rev() {
            b.accumulate(v, t);
        }
        assert_eq!(a, b);
        assert_eq!(
            a.integral(),
            items
                .iter()
                .map(|&(v, t)| u128::from(v) * u128::from(t))
                .sum::<u128>()
        );
    }

    #[test]
    fn time_weighted_mean() {
        let mut w = TimeWeighted::new();
        w.accumulate(10, 100);
        w.accumulate(20, 100);
        assert_eq!(w.mean_over(200), 15.0);
        assert_eq!(w.mean_over(0), 0.0);
    }
}
