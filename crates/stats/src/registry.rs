//! Hierarchical stat collection and warm-up delta handling.

use std::collections::BTreeMap;

use crate::histogram::HistogramSnapshot;

/// One collected stat value. Counters, time-weighted integrals and
/// histograms carry delta semantics (subtractable); gauges are
/// instantaneous.
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// Monotone event count ([`crate::Counter`]).
    Counter(u64),
    /// Instantaneous value ([`crate::Gauge`]).
    Gauge(f64),
    /// `value x cycles` integral ([`crate::TimeWeighted`]).
    Weighted(u128),
    /// Latency/size distribution ([`crate::Histogram`] snapshot).
    Histogram(HistogramSnapshot),
}

/// Escapes a label value for the text exposition: backslash, double
/// quote, and newline become `\\`, `\"`, `\n` (the Prometheus text
/// format's escaping rules), so arbitrary client-supplied strings
/// cannot break line or label framing.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds `name{k1="v1",k2="v2"}` with escaped label values. An empty
/// label set returns the bare name.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a stat path into `(base, labels)` where `labels` includes the
/// braces (`"lat{client=\"a\"}"` -> `("lat", "{client=\"a\"}")`).
fn split_labels(path: &str) -> (&str, &str) {
    match path.find('{') {
        Some(i) => path.split_at(i),
        None => (path, ""),
    }
}

/// A component that can report its statistics into a [`Scope`].
///
/// Implementations must be read-only: collection happens at observation
/// boundaries and must never perturb simulation state.
pub trait StatsSource {
    fn collect(&self, out: &mut Scope<'_>);
}

/// One full hierarchical sample of every registered component, keyed by
/// slash-separated paths (`"l2/hits"`). Ordered (BTreeMap) so iteration
/// and rendering are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReading {
    values: BTreeMap<String, StatValue>,
}

impl StatsReading {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named scope at the root and lets `f` populate it. Nested
    /// groups are opened with [`Scope::scope`].
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Scope<'_>) -> R) -> R {
        let mut s = Scope {
            prefix: format!("{name}/"),
            values: &mut self.values,
        };
        f(&mut s)
    }

    /// Collects `source` under `name` (convenience over [`Self::scope`]).
    pub fn register(&mut self, name: &str, source: &dyn StatsSource) {
        self.scope(name, |s| source.collect(s));
    }

    /// Counter value at `path` (0 when absent — an empty reading behaves
    /// like the all-zero snapshot it replaces).
    pub fn counter(&self, path: &str) -> u64 {
        match self.values.get(path) {
            Some(StatValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    pub fn gauge(&self, path: &str) -> f64 {
        match self.values.get(path) {
            Some(StatValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    pub fn weighted(&self, path: &str) -> u128 {
        match self.values.get(path) {
            Some(StatValue::Weighted(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot at `path` (None when absent or non-histogram).
    pub fn histogram(&self, path: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(path) {
            Some(StatValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Iterates `(path, value)` in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the reading as plain text (the `/metrics` wire format of
    /// the `esteem-serve` daemon): one `path value` line per scalar
    /// stat in path order, gauges with shortest-round-trip formatting
    /// so parsing the line back recovers the exact value. Histograms
    /// expand Prometheus-style into cumulative `path_bucket{le="..."}`
    /// lines (inclusive upper bounds, closed by `le="+Inf"`) plus
    /// `path_count` and `path_sum`; label values are escaped via
    /// [`escape_label_value`] at construction ([`labeled`]), and the
    /// `le` label composes with any labels already on the path.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (path, value) in self.iter() {
            match value {
                StatValue::Counter(c) => writeln!(out, "{path} {c}"),
                StatValue::Gauge(g) => writeln!(out, "{path} {g:?}"),
                StatValue::Weighted(w) => writeln!(out, "{path} {w}"),
                StatValue::Histogram(h) => {
                    let (base, labels) = split_labels(path);
                    let with_le = |le: &str| -> String {
                        if labels.is_empty() {
                            format!("{{le=\"{le}\"}}")
                        } else {
                            // `{a="b"}` -> `{a="b",le="..."}`
                            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
                        }
                    };
                    let mut cum = 0u64;
                    for (_, upper, count) in h.iter_buckets() {
                        cum += count;
                        writeln!(out, "{base}_bucket{} {cum}", with_le(&upper.to_string()))
                            .expect("writing to String cannot fail");
                    }
                    writeln!(out, "{base}_bucket{} {}", with_le("+Inf"), h.count())
                        .and_then(|()| writeln!(out, "{base}_count{labels} {}", h.count()))
                        .and_then(|()| writeln!(out, "{base}_sum{labels} {}", h.sum()))
                }
            }
            .expect("writing to String cannot fail");
        }
        out
    }

    /// `self - base`, per path: counters and weighted integrals subtract
    /// (saturating — a component reset mid-run must not wrap), gauges
    /// pass through unchanged. Paths missing from `base` subtract zero.
    pub fn delta_since(&self, base: &StatsReading) -> StatsReading {
        let values = self
            .values
            .iter()
            .map(|(k, v)| {
                let d = match (v, base.values.get(k)) {
                    (StatValue::Counter(c), Some(StatValue::Counter(b))) => {
                        StatValue::Counter(c.saturating_sub(*b))
                    }
                    (StatValue::Weighted(w), Some(StatValue::Weighted(b))) => {
                        StatValue::Weighted(w.saturating_sub(*b))
                    }
                    (StatValue::Histogram(h), Some(StatValue::Histogram(b))) => {
                        StatValue::Histogram(h.delta_since(b))
                    }
                    // Gauges (and type-mismatched or missing bases) keep
                    // the current value.
                    _ => v.clone(),
                };
                (k.clone(), d)
            })
            .collect();
        StatsReading { values }
    }
}

/// A prefix-carrying view into a [`StatsReading`] under construction.
pub struct Scope<'a> {
    prefix: String,
    values: &'a mut BTreeMap<String, StatValue>,
}

impl Scope<'_> {
    pub fn counter(&mut self, name: &str, value: u64) {
        self.values
            .insert(format!("{}{name}", self.prefix), StatValue::Counter(value));
    }

    pub fn gauge(&mut self, name: &str, value: f64) {
        self.values
            .insert(format!("{}{name}", self.prefix), StatValue::Gauge(value));
    }

    pub fn weighted(&mut self, name: &str, value: u128) {
        self.values
            .insert(format!("{}{name}", self.prefix), StatValue::Weighted(value));
    }

    /// Records a histogram snapshot. `name` may carry labels built with
    /// [`labeled`] (`"latency_us{client=\"a\"}"`).
    pub fn histogram(&mut self, name: &str, snap: HistogramSnapshot) {
        self.values
            .insert(format!("{}{name}", self.prefix), StatValue::Histogram(snap));
    }

    /// Opens a nested scope (`"cores"` -> `"cores/0"` -> `"cores/0/l1"`).
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Scope<'_>) -> R) -> R {
        let mut s = Scope {
            prefix: format!("{}{name}/", self.prefix),
            values: self.values,
        };
        f(&mut s)
    }

    /// Collects a [`StatsSource`] under a nested scope.
    pub fn register(&mut self, name: &str, source: &dyn StatsSource) {
        self.scope(name, |s| source.collect(s));
    }
}

/// Warm-up bookkeeping over [`StatsReading`]s: stores the reading taken
/// at the end of warm-up, and turns a final reading into the measured
/// (post-warm-up) delta. The simulator owns one per run.
#[derive(Debug, Clone, Default)]
pub struct StatsRegistry {
    warmup: Option<StatsReading>,
}

impl StatsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the end-of-warm-up reading. Later calls overwrite (the
    /// simulator guards against that — it marks warm-up exactly once).
    pub fn mark_warmup(&mut self, reading: StatsReading) {
        self.warmup = Some(reading);
    }

    pub fn warmed(&self) -> bool {
        self.warmup.is_some()
    }

    /// The reading captured at warm-up (empty before [`Self::mark_warmup`],
    /// which subtracts as all-zero).
    pub fn warmup_reading(&self) -> StatsReading {
        self.warmup.clone().unwrap_or_default()
    }

    /// Measured-region view of `current`: `current - warmup_reading`.
    pub fn measured(&self, current: &StatsReading) -> StatsReading {
        match &self.warmup {
            Some(base) => current.delta_since(base),
            None => current.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        hits: u64,
    }

    impl StatsSource for Fake {
        fn collect(&self, out: &mut Scope<'_>) {
            out.counter("hits", self.hits);
            out.gauge("occupancy", 0.5);
            out.weighted("busy", u128::from(self.hits) * 10);
        }
    }

    #[test]
    fn paths_are_hierarchical() {
        let mut r = StatsReading::new();
        r.register("l2", &Fake { hits: 7 });
        r.scope("cores", |s| {
            s.register("0", &Fake { hits: 1 });
            s.scope("1", |s| s.counter("instructions", 42));
        });
        assert_eq!(r.counter("l2/hits"), 7);
        assert_eq!(r.counter("cores/0/hits"), 1);
        assert_eq!(r.counter("cores/1/instructions"), 42);
        assert_eq!(r.counter("missing/path"), 0);
        let paths: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert!(paths.windows(2).all(|w| w[0] < w[1]), "ordered iteration");
    }

    #[test]
    fn render_text_is_ordered_and_parseable() {
        let mut r = StatsReading::new();
        r.register("l2", &Fake { hits: 7 });
        r.scope("jobs", |s| s.counter("submitted", 3));
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "jobs/submitted 3",
                "l2/busy 70",
                "l2/hits 7",
                "l2/occupancy 0.5"
            ]
        );
        // Gauge lines round-trip through parse.
        let g: f64 = lines[3].rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(g, 0.5);
    }

    #[test]
    fn render_text_expands_histograms_with_labels() {
        use crate::Histogram;
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(10);
        let mut r = StatsReading::new();
        r.scope("serve", |s| {
            s.histogram("lat_us", h.snapshot());
            s.histogram(&labeled("lat_us", &[("client", "a\"b")]), h.snapshot());
        });
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                r#"serve/lat_us_bucket{le="3"} 2"#,
                r#"serve/lat_us_bucket{le="10"} 3"#,
                r#"serve/lat_us_bucket{le="+Inf"} 3"#,
                "serve/lat_us_count 3",
                "serve/lat_us_sum 16",
                r#"serve/lat_us_bucket{client="a\"b",le="3"} 2"#,
                r#"serve/lat_us_bucket{client="a\"b",le="10"} 3"#,
                r#"serve/lat_us_bucket{client="a\"b",le="+Inf"} 3"#,
                r#"serve/lat_us_count{client="a\"b"} 3"#,
                r#"serve/lat_us_sum{client="a\"b"} 16"#,
            ]
        );
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value(r"plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(labeled("m", &[("k", "v"), ("x", "y")]), r#"m{k="v",x="y"}"#);
    }

    #[test]
    fn histogram_reading_accessor_and_delta() {
        use crate::Histogram;
        let h = Histogram::new();
        h.record(5);
        let mut before = StatsReading::new();
        before.scope("x", |s| s.histogram("lat", h.snapshot()));
        h.record(100);
        let mut after = StatsReading::new();
        after.scope("x", |s| s.histogram("lat", h.snapshot()));
        assert_eq!(after.histogram("x/lat").unwrap().count(), 2);
        assert!(after.histogram("x/missing").is_none());
        let d = after.delta_since(&before);
        let dh = d.histogram("x/lat").unwrap();
        assert_eq!(dh.count(), 1);
        assert_eq!(dh.sum(), 100);
    }

    #[test]
    fn delta_subtracts_counters_and_weighted_keeps_gauges() {
        let mut before = StatsReading::new();
        before.register("x", &Fake { hits: 10 });
        let mut after = StatsReading::new();
        after.register("x", &Fake { hits: 25 });
        let d = after.delta_since(&before);
        assert_eq!(d.counter("x/hits"), 15);
        assert_eq!(d.weighted("x/busy"), 150);
        assert_eq!(d.gauge("x/occupancy"), 0.5, "gauges pass through");
    }

    #[test]
    fn delta_against_empty_base_is_identity() {
        let mut r = StatsReading::new();
        r.register("x", &Fake { hits: 3 });
        let d = r.delta_since(&StatsReading::new());
        assert_eq!(d, r);
    }

    #[test]
    fn registry_measured_region() {
        let mut reg = StatsRegistry::new();
        assert!(!reg.warmed());
        let mut warm = StatsReading::new();
        warm.register("x", &Fake { hits: 4 });
        reg.mark_warmup(warm);
        assert!(reg.warmed());
        let mut fin = StatsReading::new();
        fin.register("x", &Fake { hits: 9 });
        assert_eq!(reg.measured(&fin).counter("x/hits"), 5);
        // Unwarmed registry: measured == current (all-zero snapshot).
        let fresh = StatsRegistry::new();
        assert_eq!(fresh.measured(&fin).counter("x/hits"), 9);
    }
}
