//! Log-linear latency histograms (HDR-style).
//!
//! A [`Histogram`] records non-negative integer samples (the stack uses
//! microseconds) into a fixed set of buckets arranged log-linearly:
//! tier 0 holds one bucket per value in `[0, 64)` (exact), and each
//! tier `t >= 1` covers `[64 * 2^(t-1), 64 * 2^t)` with 64 linear
//! sub-buckets of width `2^(t-1)`. Reporting a bucket by its highest
//! contained value bounds the relative quantile error at `1/64`
//! (~1.6%) for every representable value, values below 64 are exact,
//! and values at or beyond [`Histogram::MAX_TRACKABLE`] saturate into
//! the top bucket (counted in `saturated`, never lost).
//!
//! Recording is one relaxed `fetch_add` into a preallocated
//! `AtomicU64` slab — no allocation, no lock, shareable across threads
//! behind a plain `Arc`. Collection points take a cheap sparse
//! [`HistogramSnapshot`] (only occupied buckets), which is the value
//! type that flows through [`crate::StatsReading`]: snapshots merge
//! bucket-wise (associative, commutative), subtract for warm-up
//! deltas, and answer quantile queries by cumulative rank walk.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two tier. 64 gives ~1.6% max relative
/// error; tier 0 then covers `[0, 64)` exactly.
const SUB: u64 = 64;
const SUB_BITS: u32 = 6;
/// Tiers beyond tier 0. Tier 33 tops out at `64 * 2^33 = 2^39`
/// (~6.4 days in microseconds) — far past any latency this stack can
/// legitimately report, while keeping a histogram at ~17 KiB.
const TIERS: u32 = 33;
const BUCKETS: usize = (SUB as usize) * (TIERS as usize + 1);

/// Bucket index for `v` (values >= MAX_TRACKABLE map to the top bucket).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // v >= 64: msb >= 6. Tier t = msb - 5 covers [2^(t+5), 2^(t+6)).
    let msb = 63 - v.leading_zeros();
    let tier = (msb - SUB_BITS + 1).min(TIERS);
    let sub = (v >> (tier - 1)).saturating_sub(SUB).min(SUB - 1);
    (tier as usize) * (SUB as usize) + sub as usize
}

/// Lowest value mapping into bucket `i`.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    let tier = (i as u64) >> SUB_BITS;
    let sub = (i as u64) & (SUB - 1);
    if tier == 0 {
        sub
    } else {
        (SUB + sub) << (tier - 1)
    }
}

/// Highest value mapping into bucket `i` (the reported representative:
/// quantiles never under-estimate).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    let tier = (i as u64) >> SUB_BITS;
    if tier == 0 {
        bucket_lower(i)
    } else {
        bucket_lower(i) + (1u64 << (tier - 1)) - 1
    }
}

/// Concurrent fixed-size log-linear histogram. See the module docs for
/// the bucket scheme; all methods take `&self` and are thread-safe.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    saturated: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Values `>= MAX_TRACKABLE` saturate into the top bucket.
    pub const MAX_TRACKABLE: u64 = SUB << TIERS;

    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            saturated: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: one relaxed `fetch_add` per
    /// atomic touched, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples (merge paths, weighted records).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if v >= Self::MAX_TRACKABLE {
            self.saturated.fetch_add(n, Ordering::Relaxed);
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds (the stack's canonical
    /// latency unit).
    #[inline]
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sparse point-in-time copy. Under concurrent recording the
    /// snapshot is "torn but sane": every bucket count is a valid past
    /// value and `count()` is recomputed from the buckets so the
    /// invariant `sum of buckets == count` always holds.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            saturated: self.saturated.load(Ordering::Relaxed),
        }
    }

    /// Folds a snapshot back in (cross-thread aggregation).
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for &(i, c) in &snap.buckets {
            self.buckets[i as usize].fetch_add(c, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
        self.saturated.fetch_add(snap.saturated, Ordering::Relaxed);
    }
}

/// Immutable sparse snapshot of a [`Histogram`]: only occupied buckets,
/// ordered by bucket index. This is the `StatValue::Histogram` payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket_index, count)`, ascending by index, counts > 0.
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum: u64,
    max: u64,
    saturated: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples that saturated at [`Histogram::MAX_TRACKABLE`].
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the highest value of the
    /// bucket containing the sample of rank `ceil(q * count)`. Exact
    /// for values < 64, within ~1.6% above (never an under-estimate
    /// of the bucketed sample). Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                // Never report past the true observed maximum.
                return bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }

    /// Bucket-wise sum. Associative and commutative; `max` takes the
    /// larger side.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    use std::cmp::Ordering::*;
                    match ia.cmp(&ib) {
                        Less => {
                            buckets.push((ia, ca));
                            a.next();
                        }
                        Greater => {
                            buckets.push((ib, cb));
                            b.next();
                        }
                        Equal => {
                            buckets.push((ia, ca + cb));
                            a.next();
                            b.next();
                        }
                    }
                }
                (Some(_), None) => {
                    buckets.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    buckets.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
            saturated: self.saturated + other.saturated,
        }
    }

    /// `self - base`, bucket-wise saturating (warm-up deltas; a reset
    /// histogram must not wrap). `max` passes through unchanged — a
    /// maximum cannot be un-observed.
    pub fn delta_since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut count = 0u64;
        let mut bi = base.buckets.iter().peekable();
        for &(i, c) in &self.buckets {
            while bi.peek().is_some_and(|&&(j, _)| j < i) {
                bi.next();
            }
            let b = match bi.peek() {
                Some(&&(j, bc)) if j == i => bc,
                _ => 0,
            };
            let d = c.saturating_sub(b);
            if d > 0 {
                buckets.push((i, d));
                count += d;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(base.sum),
            max: self.max,
            saturated: self.saturated.saturating_sub(base.saturated),
        }
    }

    /// Iterates occupied buckets as `(lower, upper, count)` with
    /// inclusive value bounds, ascending (the exposition and sparkline
    /// source).
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(i, c)| (bucket_lower(i as usize), bucket_upper(i as usize), c))
    }

    /// Collapses the occupied bucket range into at most `cells` groups
    /// of equal bucket-index width, returning each group's count — the
    /// input for a terminal sparkline. Empty snapshot -> empty vec.
    pub fn compact_cells(&self, cells: usize) -> Vec<u64> {
        if self.buckets.is_empty() || cells == 0 {
            return Vec::new();
        }
        let lo = self.buckets[0].0 as usize;
        let hi = self.buckets[self.buckets.len() - 1].0 as usize;
        let span = hi - lo + 1;
        let cells = cells.min(span);
        let mut out = vec![0u64; cells];
        for &(i, c) in &self.buckets {
            let cell = (i as usize - lo) * cells / span;
            out[cell] += c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_below_64_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), SUB);
        for (k, (lower, upper, c)) in s.iter_buckets().enumerate() {
            assert_eq!(lower, k as u64);
            assert_eq!(upper, k as u64, "tier-0 buckets hold exactly one value");
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Every tier boundary and its neighbours land in the right
        // bucket: index(lower) == index(upper) == i, and index(upper+1)
        // == i+1.
        for i in 0..BUCKETS - 1 {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1, "first value past bucket {i}");
            assert!(hi < bucket_lower(i + 1), "buckets are disjoint");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // For a wide spread of values, the reported bucket upper bound
        // is >= v and within 1/64 relative error.
        let mut v = 1u64;
        while v < Histogram::MAX_TRACKABLE {
            let i = bucket_index(v);
            let rep = bucket_upper(i);
            assert!(rep >= v);
            let err = (rep - v) as f64 / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} rep={rep} err={err}");
            v = v.saturating_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn saturation_at_representable_edge() {
        let h = Histogram::new();
        h.record(Histogram::MAX_TRACKABLE - 1);
        h.record(Histogram::MAX_TRACKABLE);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.saturated(), 2);
        assert_eq!(s.max(), u64::MAX);
        // All three land in representable buckets; nothing is lost.
        assert_eq!(s.iter_buckets().map(|(_, _, c)| c).sum::<u64>(), 3);
        // Quantiles cap at the representable edge (top bucket's upper
        // bound), the documented saturation semantics.
        assert_eq!(s.quantile(1.0), Histogram::MAX_TRACKABLE - 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        // A bimodal-ish spread.
        for v in [1u64, 2, 3, 50, 100, 1000, 1001, 5000, 100_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for step in 0..=100 {
            let q = step as f64 / 100.0;
            let v = s.quantile(q);
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }
        assert_eq!(s.quantile(1.0), 100_000.min(s.max()));
        assert!(s.quantile(0.0) >= 1);
        // p50 of 10 samples = rank 5 = value 100.
        assert_eq!(s.quantile(0.5), 100);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 2, 3, 70, 900]);
        let b = mk(&[3, 70, 100_000]);
        let c = mk(&[0, 64, 65, 1 << 30]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count(), 12);
        assert_eq!(all.sum(), a.sum() + b.sum() + c.sum());
        assert_eq!(all.max(), 1 << 30);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let (xs, ys) = ([5u64, 5, 900, 1 << 20], [0u64, 63, 64, 900]);
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        let all = Histogram::new();
        for &v in &xs {
            h1.record(v);
            all.record(v);
        }
        for &v in &ys {
            h2.record(v);
            all.record(v);
        }
        assert_eq!(h1.snapshot().merge(&h2.snapshot()), all.snapshot());
    }

    #[test]
    fn delta_since_subtracts_bucketwise() {
        let h = Histogram::new();
        h.record(10);
        h.record(500);
        let base = h.snapshot();
        h.record(10);
        h.record(7777);
        let d = h.snapshot().delta_since(&base);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 10 + 7777);
        let buckets: Vec<_> = d.iter_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (10, 10, 1));
        assert!(buckets[1].0 <= 7777 && 7777 <= buckets[1].1);
        // Delta against self is empty.
        let s = h.snapshot();
        assert!(s.delta_since(&s).is_empty());
        assert_eq!(s.delta_since(&s).count(), 0);
    }

    #[test]
    fn record_n_and_merge_snapshot_roundtrip() {
        let h = Histogram::new();
        h.record_n(42, 1000);
        let g = Histogram::new();
        g.merge_snapshot(&h.snapshot());
        g.record(42);
        let s = g.snapshot();
        assert_eq!(s.count(), 1001);
        assert_eq!(s.quantile(0.5), 42);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn compact_cells_preserves_total_count() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 200, 5000, 5001, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        for n in [1usize, 2, 8, 16, 1000] {
            let cells = s.compact_cells(n);
            assert!(cells.len() <= n);
            assert_eq!(cells.iter().sum::<u64>(), s.count(), "cells={n}");
        }
        assert!(s.compact_cells(0).is_empty());
        assert!(HistogramSnapshot::default().compact_cells(8).is_empty());
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + (i % 97));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        assert_eq!(s.iter_buckets().map(|(_, _, c)| c).sum::<u64>(), 40_000);
    }
}
