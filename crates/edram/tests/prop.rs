//! Property tests: refresh-safety invariants of the engine + cache
//! combination under arbitrary access streams.

use esteem_cache::{CacheGeometry, SetAssocCache};
use esteem_edram::{RefreshEngine, RefreshPolicy, RetentionSpec};
use proptest::prelude::*;

fn small_cache() -> SetAssocCache {
    // 16 sets x 4 ways, 2 banks.
    SetAssocCache::new(CacheGeometry::from_capacity(4 << 10, 4, 64, 2, 1), None)
}

const RETENTION: u64 = 1000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RPV safety: every *valid* line's charge age (now - last_update)
    /// never exceeds one retention period plus one phase of slack, no
    /// matter how accesses and engine advances interleave.
    #[test]
    fn rpv_never_violates_retention(
        steps in proptest::collection::vec((0u64..200, 1u64..40, any::<bool>()), 1..300),
    ) {
        let mut cache = small_cache();
        let mut eng = RefreshEngine::new(
            RefreshPolicy::RPV,
            RetentionSpec { period_cycles: RETENTION },
            &cache,
        );
        let phase = RETENTION / 4;
        let mut now = 0u64;
        for &(block, gap, write) in &steps {
            now += gap;
            eng.advance(&mut cache, now);
            let out = cache.access(block, write, now);
            eng.on_access(&out, now);
            // Check the invariant over all valid lines at this instant.
            // A line is due at phase_floor(last_update) + RETENTION, and
            // the engine may lag by the un-advanced gap; the bound below
            // holds because we advanced to `now` first.
            cache.for_each_valid(|set, way, line| {
                let age = now.saturating_sub(line.last_update);
                assert!(
                    age <= RETENTION + phase,
                    "line ({set},{way}) aged {age} > bound at {now}"
                );
            });
        }
    }

    /// Refresh-count agreement: for an idle (untouched) population of
    /// valid lines, RPV performs exactly one refresh per line per
    /// retention period — the same count periodic-valid produces.
    #[test]
    fn idle_rpv_matches_periodic_valid(
        nlines in 1u64..60,
        periods in 1u64..6,
    ) {
        let mut c1 = small_cache();
        let mut c2 = small_cache();
        let mut rpv = RefreshEngine::new(
            RefreshPolicy::RPV,
            RetentionSpec { period_cycles: RETENTION },
            &c1,
        );
        let mut pv = RefreshEngine::new(
            RefreshPolicy::PeriodicValid,
            RetentionSpec { period_cycles: RETENTION },
            &c2,
        );
        // Fill both with the same lines at cycle 0 (phase 0), then idle.
        for b in 0..nlines {
            let o1 = c1.access(b, false, 0);
            rpv.on_access(&o1, 0);
            let o2 = c2.access(b, false, 0);
            pv.on_access(&o2, 0);
        }
        let horizon = RETENTION * periods;
        let r1 = rpv.advance(&mut c1, horizon);
        let r2 = pv.advance(&mut c2, horizon);
        prop_assert_eq!(r1.refreshes, r2.refreshes);
        prop_assert_eq!(r1.refreshes, c1.valid_lines() * periods);
    }

    /// Under any stream, RPV refreshes no more than periodic-valid would
    /// (touch-skips only ever remove refreshes) and at least zero.
    #[test]
    fn rpv_refresh_count_bounded_by_periodic_valid(
        steps in proptest::collection::vec((0u64..100, 1u64..30), 10..200),
    ) {
        let run = |policy: RefreshPolicy| {
            let mut cache = small_cache();
            let mut eng = RefreshEngine::new(
                policy,
                RetentionSpec { period_cycles: RETENTION },
                &cache,
            );
            let mut now = 0u64;
            let mut total = 0u64;
            for &(block, gap) in &steps {
                now += gap;
                total += eng.advance(&mut cache, now).refreshes;
                let out = cache.access(block, false, now);
                eng.on_access(&out, now);
            }
            // Drain one final full period so pending refreshes land.
            total += eng.advance(&mut cache, now + 2 * RETENTION).refreshes;
            total
        };
        let rpv = run(RefreshPolicy::RPV);
        let pv = run(RefreshPolicy::PeriodicValid);
        // One period of slack: RPV's phase alignment may defer a refresh
        // into the drain window that periodic-valid already performed.
        prop_assert!(
            rpv <= pv + 64,
            "RPV refreshed {rpv} > periodic-valid {pv} + slack"
        );
    }
}
