//! Deterministic bank-contention timing model.
//!
//! The paper's performance effect of refresh flows through one mechanism:
//! refresh operations occupy L2 banks, delaying demand accesses ("the same
//! number of blocks need to be refreshed within smaller amount of time.
//! These refresh operations also make the cache unavailable, leading to
//! performance loss", §7.3). We model each bank as a deterministic server
//! and charge every demand access an *expected* extra wait derived from the
//! previous retention window's measured load:
//!
//! * **burst blocking** — hardware issues refreshes in short pipelined
//!   bursts of `burst_lines` back-to-back single-cycle line refreshes
//!   (DRAM-style tREFI batching). An access arriving during a burst waits
//!   for its remainder: `wait_burst = rho_refresh * burst_lines / 2`, where
//!   `rho_refresh` is the fraction of bank cycles spent refreshing.
//! * **queueing** — an M/D/1-shaped term for contention among demand
//!   accesses and refreshes: `wait_q = service * rho / (2 * (1 - rho))`
//!   with `rho` the total bank utilization, capped below 1.
//!
//! Using the previous window's utilization keeps the model causal and
//! deterministic (one-window lag; windows are one retention period, 100 us,
//! far shorter than program phases). The first window sees zero wait.

/// Per-bank contention state for one cache.
#[derive(Debug, Clone)]
pub struct BankContention {
    window_cycles: u64,
    /// Bank-busy cycles per demand access (tag + data array occupancy).
    access_occupancy: f64,
    /// Lines refreshed back-to-back per refresh burst.
    burst_lines: f64,
    /// Utilization cap to keep the queueing term finite.
    util_cap: f64,
    /// Demand accesses per bank in the current (accumulating) window.
    cur_accesses: Vec<u64>,
    /// Extra wait per access, per bank, derived from the last window.
    wait: Vec<f64>,
    /// Utilization per bank from the last window (diagnostics).
    last_util: Vec<f64>,
    next_boundary: u64,
}

impl BankContention {
    /// `window_cycles` is the measurement window — one retention period.
    pub fn new(banks: u8, window_cycles: u64) -> Self {
        assert!(window_cycles > 0);
        Self {
            window_cycles,
            access_occupancy: 2.0,
            burst_lines: 64.0,
            util_cap: 0.98,
            cur_accesses: vec![0; banks as usize],
            wait: vec![0.0; banks as usize],
            last_util: vec![0.0; banks as usize],
            next_boundary: window_cycles,
        }
    }

    /// Overrides the model's structural constants (exposed for ablations).
    pub fn with_params(mut self, access_occupancy: f64, burst_lines: f64) -> Self {
        assert!(access_occupancy > 0.0 && burst_lines >= 1.0);
        self.access_occupancy = access_occupancy;
        self.burst_lines = burst_lines;
        self
    }

    /// Records one demand access and returns the modelled extra wait (in
    /// cycles, possibly fractional) the access suffers at this bank.
    #[inline]
    pub fn access(&mut self, bank: u8) -> f64 {
        self.cur_accesses[bank as usize] += 1;
        self.wait[bank as usize]
    }

    /// Current modelled wait without recording an access.
    #[inline]
    pub fn peek_wait(&self, bank: u8) -> f64 {
        self.wait[bank as usize]
    }

    /// Batch counterpart of [`Self::access`]: folds a block's per-bank
    /// access counts in at once. The wait estimate is constant within a
    /// window (it only changes at [`Self::roll_window`]), so callers that
    /// read [`Self::peek_wait`] per access and defer the counting to an
    /// end-of-block drain observe exactly the per-access behaviour.
    pub fn record_accesses(&mut self, counts: &[u64]) {
        assert_eq!(counts.len(), self.cur_accesses.len());
        for (cur, &c) in self.cur_accesses.iter_mut().zip(counts) {
            *cur += c;
        }
    }

    /// Closes windows up to `now`, folding in the per-bank refresh counts
    /// accumulated over the same span (from
    /// [`RefreshEngine::drain_bank_refreshes`](crate::RefreshEngine::drain_bank_refreshes)).
    ///
    /// Call exactly once per window with `now` at (or past) the boundary.
    pub fn roll_window(&mut self, now: u64, bank_refreshes: &[u64]) {
        assert_eq!(bank_refreshes.len(), self.cur_accesses.len());
        if now < self.next_boundary {
            return;
        }
        // Windows elapsed since last roll (usually exactly 1).
        let mut windows = 0u64;
        while self.next_boundary <= now {
            self.next_boundary += self.window_cycles;
            windows += 1;
        }
        let span = (windows * self.window_cycles) as f64;
        for (b, &refreshes) in bank_refreshes.iter().enumerate() {
            let acc = self.cur_accesses[b] as f64;
            let refr = refreshes as f64;
            let rho_refresh = (refr / span).min(self.util_cap);
            let rho = ((acc * self.access_occupancy + refr) / span).min(self.util_cap);
            let wait_burst = rho_refresh * self.burst_lines / 2.0;
            // Effective service time seen by the queue: weighted mean of
            // access and (unit) refresh service.
            let total_ops = acc + refr;
            let service = if total_ops > 0.0 {
                (acc * self.access_occupancy + refr) / total_ops
            } else {
                self.access_occupancy
            };
            let wait_q = service * rho / (2.0 * (1.0 - rho));
            self.wait[b] = wait_burst + wait_q;
            self.last_util[b] = rho;
            self.cur_accesses[b] = 0;
        }
    }

    /// Mean bank utilization over the last closed window.
    pub fn mean_utilization(&self) -> f64 {
        self.last_util.iter().sum::<f64>() / self.last_util.len() as f64
    }

    /// Mean modelled wait across banks (diagnostics/reporting).
    pub fn mean_wait(&self) -> f64 {
        self.wait.iter().sum::<f64>() / self.wait.len() as f64
    }

    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }
}

impl esteem_stats::StatsSource for BankContention {
    /// Registers the contention model's diagnostic gauges (`mean_wait`,
    /// `mean_utilization` over the last closed window).
    fn collect(&self, out: &mut esteem_stats::Scope<'_>) {
        out.gauge("mean_wait", self.mean_wait());
        out.gauge("mean_utilization", self.mean_utilization());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_window_is_free() {
        let mut c = BankContention::new(4, 1000);
        assert_eq!(c.access(0), 0.0);
        assert_eq!(c.access(3), 0.0);
    }

    #[test]
    fn refresh_load_creates_wait() {
        let mut c = BankContention::new(1, 100_000);
        // 16384 refreshes in a 100k-cycle window (the paper's 4MB/4-bank
        // baseline at 50us): rho_refresh ~= 0.164.
        c.roll_window(100_000, &[16_384]);
        let w = c.peek_wait(0);
        // Burst term alone: 0.164 * 64 / 2 ~= 5.2 cycles.
        assert!(w > 4.0 && w < 8.0, "wait {w} out of expected band");
    }

    #[test]
    fn more_refreshes_more_wait() {
        let mut a = BankContention::new(1, 100_000);
        let mut b = BankContention::new(1, 100_000);
        a.roll_window(100_000, &[10_000]);
        b.roll_window(100_000, &[60_000]);
        assert!(b.peek_wait(0) > a.peek_wait(0) * 3.0);
    }

    #[test]
    fn utilization_capped() {
        let mut c = BankContention::new(1, 1000);
        c.roll_window(1000, &[10_000_000]); // impossible load
        assert!(c.mean_utilization() <= 0.98 + 1e-9);
        assert!(c.peek_wait(0).is_finite());
    }

    #[test]
    fn accesses_contribute_to_queueing() {
        let mut idle = BankContention::new(1, 10_000);
        let mut busy = BankContention::new(1, 10_000);
        for _ in 0..4000 {
            busy.access(0);
        }
        idle.roll_window(10_000, &[1000]);
        busy.roll_window(10_000, &[1000]);
        assert!(busy.peek_wait(0) > idle.peek_wait(0));
    }

    #[test]
    fn batched_counts_match_per_access_recording() {
        let mut scalar = BankContention::new(2, 10_000);
        let mut batched = BankContention::new(2, 10_000);
        for _ in 0..4000 {
            scalar.access(0);
        }
        for _ in 0..700 {
            scalar.access(1);
        }
        batched.record_accesses(&[4000, 700]);
        scalar.roll_window(10_000, &[1000, 1000]);
        batched.roll_window(10_000, &[1000, 1000]);
        assert_eq!(scalar.peek_wait(0), batched.peek_wait(0));
        assert_eq!(scalar.peek_wait(1), batched.peek_wait(1));
        assert_eq!(scalar.mean_utilization(), batched.mean_utilization());
    }

    #[test]
    fn window_resets_access_counts() {
        let mut c = BankContention::new(1, 1000);
        for _ in 0..900 {
            c.access(0);
        }
        c.roll_window(1000, &[0]);
        let w1 = c.peek_wait(0);
        assert!(w1 > 0.0);
        // No load in the second window: wait decays back to zero.
        c.roll_window(2000, &[0]);
        assert_eq!(c.peek_wait(0), 0.0);
    }

    #[test]
    fn multi_window_catchup() {
        let mut c = BankContention::new(2, 1000);
        c.access(0);
        // Roll across 3 windows at once; span normalisation keeps rho sane.
        c.roll_window(3000, &[300, 0]);
        assert!(c.peek_wait(0) >= 0.0);
        assert_eq!(c.window_cycles(), 1000);
    }

    #[test]
    fn early_roll_is_noop() {
        let mut c = BankContention::new(1, 1000);
        c.access(0);
        c.roll_window(500, &[100]);
        assert_eq!(c.peek_wait(0), 0.0); // window not yet closed
    }
}
