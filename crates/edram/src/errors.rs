//! Retention variation and ECC-based refresh-period extension.
//!
//! The paper's related work (§2) covers a second family of refresh-energy
//! techniques: "error-detection/correction based approaches [39, 45] which
//! allow increasing the refresh period by tolerating some failures". This
//! module models the substrate those approaches need:
//!
//! * **Retention variation.** eDRAM cells' retention times follow a
//!   heavy-tailed distribution; the array's nominal retention period is
//!   set by the *weakest* cells. Refreshing every `k` periods instead of
//!   every period exposes the fraction of lines whose weakest cell retains
//!   for less than `k` periods. We model that fraction with the standard
//!   power-law tail `fail(k) = weak_ppm * (k-1)^tail_exponent` parts per
//!   million, deterministic per line (a stable hash stands in for the
//!   per-die weak-cell map).
//! * **ECC.** An in-line SECDED/BCH code correcting `c` bits tolerates up
//!   to `c` weak cells per line; each correctable bit shifts the failure
//!   curve down by roughly the per-bit failure ratio (`ecc_shift`).
//!
//! The [`RefreshPolicy::MultiPeriodic`](crate::RefreshPolicy) policy uses
//! this model: it refreshes valid lines every `k` retention periods and
//! invalidates (scrubs) the lines whose data did not survive — trading
//! refresh energy for extra misses, exactly the trade-off the
//! ECC-refresh literature studies.

/// Failure model for refresh-period extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionVariation {
    /// Fraction (ppm) of lines whose weakest cell fails when the refresh
    /// interval is doubled (k = 2), with no ECC.
    pub weak_ppm: f64,
    /// Tail exponent of the failure curve in the period multiplier.
    pub tail_exponent: f64,
    /// Multiplicative reduction of the failure fraction per correctable
    /// bit (weak cells are rare and roughly independent).
    pub ecc_shift: f64,
}

impl Default for RetentionVariation {
    fn default() -> Self {
        Self {
            // ~300 ppm of lines fail at the first doubling — the order of
            // magnitude reported for eDRAM arrays at nominal periods.
            weak_ppm: 300.0,
            tail_exponent: 2.0,
            ecc_shift: 1.0 / 40.0,
        }
    }
}

impl RetentionVariation {
    /// Expected failing-line fraction (ppm) at period multiplier `k` with
    /// `ecc_bits` correctable bits per line.
    pub fn fail_ppm(&self, k: u8, ecc_bits: u8) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        let raw = self.weak_ppm * f64::from(k - 1).powf(self.tail_exponent);
        (raw * self.ecc_shift.powi(i32::from(ecc_bits))).min(1_000_000.0)
    }

    /// Deterministic per-line verdict: does `line` fail when refreshed
    /// every `k` periods with `ecc_bits` of correction? The per-line hash
    /// stands in for the die's fixed weak-cell map, so verdicts are
    /// *monotone in k* (a line that fails at k also fails at k+1) and
    /// monotone in ECC strength.
    pub fn line_fails(&self, line: u32, k: u8, ecc_bits: u8) -> bool {
        let ppm = self.fail_ppm(k, ecc_bits);
        // Stable per-line draw in [0, 1e6).
        let h = splitmix(u64::from(line) ^ 0x9e37_79b9_7f4a_7c15);
        let draw = (h % 1_000_000) as f64;
        draw < ppm
    }
}

/// SplitMix64 finaliser — a stable, well-mixed per-line hash.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_at_nominal_period() {
        let v = RetentionVariation::default();
        assert_eq!(v.fail_ppm(1, 0), 0.0);
        for line in 0..10_000u32 {
            assert!(!v.line_fails(line, 1, 0));
        }
    }

    #[test]
    fn failure_fraction_grows_with_k() {
        let v = RetentionVariation::default();
        assert!(v.fail_ppm(2, 0) < v.fail_ppm(3, 0));
        assert!(v.fail_ppm(3, 0) < v.fail_ppm(4, 0));
        // Power-law: quadrupling from k=2 to k=3 with exponent 2.
        assert!((v.fail_ppm(3, 0) / v.fail_ppm(2, 0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ecc_suppresses_failures() {
        let v = RetentionVariation::default();
        assert!(v.fail_ppm(4, 1) < v.fail_ppm(4, 0) / 10.0);
        assert!(v.fail_ppm(4, 2) < v.fail_ppm(4, 1) / 10.0);
    }

    #[test]
    fn verdicts_monotone_in_k_and_ecc() {
        let v = RetentionVariation {
            weak_ppm: 50_000.0, // exaggerated so the test sees failures
            ..Default::default()
        };
        let mut failures_by_k = Vec::new();
        for k in 1..=5u8 {
            let f = (0..50_000u32).filter(|&l| v.line_fails(l, k, 0)).count();
            failures_by_k.push(f);
        }
        assert!(failures_by_k.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(failures_by_k[0], 0);
        assert!(*failures_by_k.last().unwrap() > 0);
        // Per-line monotonicity: failing at k implies failing at k+1.
        for l in 0..50_000u32 {
            for k in 2..5u8 {
                if v.line_fails(l, k, 0) {
                    assert!(v.line_fails(l, k + 1, 0), "line {l} flipped at k={k}");
                }
            }
        }
        // ECC rescues lines.
        let with_ecc = (0..50_000u32).filter(|&l| v.line_fails(l, 5, 1)).count();
        assert!(with_ecc < *failures_by_k.last().unwrap());
    }

    #[test]
    fn measured_fraction_tracks_model() {
        let v = RetentionVariation {
            weak_ppm: 10_000.0,
            ..Default::default()
        };
        let n = 200_000u32;
        let fails = (0..n).filter(|&l| v.line_fails(l, 2, 0)).count() as f64;
        let expect = v.fail_ppm(2, 0) / 1e6 * f64::from(n);
        assert!(
            (fails - expect).abs() / expect < 0.1,
            "measured {fails} vs expected {expect}"
        );
    }
}
