//! The refresh engine: drives a [`RefreshPolicy`] against a cache array.
//!
//! The engine is advanced to the current cycle once per simulation quantum
//! (the system simulator's outer loop). Between advances, the simulator
//! reports every charge-restoring demand event via [`RefreshEngine::on_access`]
//! and every invalidation via [`RefreshEngine::on_invalidate`] so the
//! polyphase schedule stays consistent with the cache contents.
//!
//! Each bank refreshes one line per cycle (pipelined, paper §6.1), so a
//! refresh op costs the bank exactly one cycle of availability; the counts
//! produced here feed both the energy model (`N_R`) and the
//! [`BankContention`](crate::BankContention) timing model.

use esteem_cache::{AccessOutcome, SetAssocCache};

use crate::errors::RetentionVariation;
use crate::policy::RefreshPolicy;
use crate::retention::RetentionSpec;
use crate::scheduler::{DueAction, PolyphaseScheduler};

/// Refresh/invalidation work performed by one `advance` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdvanceReport {
    pub refreshes: u64,
    /// Lines invalidated instead of refreshed: RPD's eager invalidations
    /// and multi-periodic's uncorrectable-failure scrubs.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
pub struct RefreshEngine {
    policy: RefreshPolicy,
    retention: RetentionSpec,
    ways: u8,
    sched: Option<PolyphaseScheduler>,
    /// Retention-variation model (multi-periodic policy only).
    variation: RetentionVariation,
    /// Next period boundary (periodic policies).
    next_period_end: u64,
    /// Per-bank refresh ops since the last [`Self::drain_bank_refreshes`].
    bank_window: Vec<u64>,
    total_refreshes: u64,
    total_invalidations: u64,
    /// Reusable scrub-victim buffer (multi-periodic policy): avoids a
    /// Vec allocation per scrub pass.
    scratch_victims: Vec<(u32, u8)>,
}

impl RefreshEngine {
    pub fn new(policy: RefreshPolicy, retention: RetentionSpec, cache: &SetAssocCache) -> Self {
        let g = *cache.geometry();
        let sched = if policy.is_polyphase() {
            Some(PolyphaseScheduler::new(
                retention.period_cycles,
                policy.phases(),
                g.total_slots(),
            ))
        } else {
            None
        };
        let first_period = match policy {
            RefreshPolicy::MultiPeriodic { periods, .. } => {
                retention.period_cycles * u64::from(periods.max(1))
            }
            _ => retention.period_cycles,
        };
        Self {
            policy,
            retention,
            ways: g.ways,
            sched,
            variation: RetentionVariation::default(),
            next_period_end: first_period,
            bank_window: vec![0; g.banks as usize],
            total_refreshes: 0,
            total_invalidations: 0,
            scratch_victims: Vec::new(),
        }
    }

    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// Overrides the retention-variation model (multi-periodic policy).
    pub fn with_variation(mut self, variation: RetentionVariation) -> Self {
        self.variation = variation;
        self
    }

    #[inline]
    fn line_id(&self, set: u32, way: u8) -> u32 {
        set * u32::from(self.ways) + u32::from(way)
    }

    /// Reports a demand access (hit or fill): reads and writes restore the
    /// cell charge, which postpones the line's next polyphase refresh.
    #[inline]
    pub fn on_access(&mut self, outcome: &AccessOutcome, cycle: u64) {
        let id = self.line_id_outcome(outcome);
        if let Some(sched) = &mut self.sched {
            sched.touch(id, cycle);
        }
    }

    #[inline]
    fn line_id_outcome(&self, o: &AccessOutcome) -> u32 {
        o.set * u32::from(self.ways) + u32::from(o.way)
    }

    /// Whether [`Self::on_access`] has any effect under the active policy.
    /// Only the polyphase policies keep a per-line refresh schedule that
    /// demand accesses postpone; for the periodic policies the batched
    /// hot path can skip buffering access events entirely.
    #[inline]
    pub fn needs_access_feed(&self) -> bool {
        self.sched.is_some()
    }

    /// Batch counterpart of [`Self::on_access`]: replays a block's worth
    /// of `(outcome, cycle)` events in order. Because `on_access` only
    /// touches the polyphase schedule — which nothing reads until the next
    /// [`Self::advance`] — deferring the events to an end-of-block drain
    /// is observationally identical to feeding them per access.
    pub fn on_access_batch(&mut self, events: &[(AccessOutcome, u64)]) {
        let Some(sched) = &mut self.sched else {
            return;
        };
        for (o, cycle) in events {
            let id = o.set * u32::from(self.ways) + u32::from(o.way);
            sched.touch(id, *cycle);
        }
    }

    /// Reports an invalidation performed outside the engine (way turn-off
    /// during reconfiguration): the line no longer needs refreshing.
    #[inline]
    pub fn on_invalidate(&mut self, set: u32, way: u8) {
        let id = self.line_id(set, way);
        if let Some(sched) = &mut self.sched {
            sched.unschedule(id);
        }
    }

    /// Advances refresh processing to `to_cycle`, performing every due
    /// refresh. For periodic policies this fires at retention-period
    /// boundaries; for polyphase policies at phase boundaries.
    pub fn advance(&mut self, cache: &mut SetAssocCache, to_cycle: u64) -> AdvanceReport {
        let mut report = AdvanceReport::default();
        match self.policy {
            RefreshPolicy::NoRefresh => {}
            RefreshPolicy::PeriodicAll => {
                while self.next_period_end <= to_cycle {
                    // Every *active slot* is refreshed, valid or not.
                    // Active slots stripe uniformly over banks (modules are
                    // contiguous set ranges, banks stripe sets, and both
                    // counts are powers of two), so distribute evenly.
                    let slots = cache.active_slots();
                    self.add_uniform(slots);
                    report.refreshes += slots;
                    self.next_period_end += self.retention.period_cycles;
                }
            }
            RefreshPolicy::PeriodicValid => {
                while self.next_period_end <= to_cycle {
                    // Borrow the per-bank counts directly: `cache` and
                    // `self.bank_window` are disjoint, so no copy is needed.
                    for (w, n) in self
                        .bank_window
                        .iter_mut()
                        .zip(cache.valid_lines_per_bank())
                    {
                        *w += n;
                        report.refreshes += n;
                    }
                    self.next_period_end += self.retention.period_cycles;
                }
            }
            RefreshPolicy::MultiPeriodic { periods, ecc_bits } => {
                let k = periods.max(1);
                let stretch = self.retention.period_cycles * u64::from(k);
                // Reuse the scrub-victim buffer across periods and calls.
                let mut victims = std::mem::take(&mut self.scratch_victims);
                while self.next_period_end <= to_cycle {
                    // Scrub pass over valid lines: refresh the survivors,
                    // invalidate the (deterministic) uncorrectable ones.
                    let g = *cache.geometry();
                    victims.clear();
                    cache.for_each_valid(|set, way, _| {
                        let line = set * u32::from(g.ways) + u32::from(way);
                        if self.variation.line_fails(line, k, ecc_bits) {
                            victims.push((set, way));
                        } else {
                            self.bank_window[g.bank_of(set) as usize] += 1;
                            report.refreshes += 1;
                        }
                    });
                    for &(set, way) in &victims {
                        cache.invalidate_line(set, way);
                        report.invalidations += 1;
                    }
                    self.next_period_end += stretch;
                }
                self.scratch_victims = victims;
            }
            RefreshPolicy::PolyphaseValid { .. } => {
                let sched = self.sched.as_mut().expect("polyphase has a scheduler");
                let split = split_line(self.ways);
                let g = *cache.geometry();
                let banks = &mut self.bank_window;
                sched.advance(to_cycle, |line, boundary| {
                    let (set, way) = split(line);
                    if !cache.refresh_line(set, way, boundary) {
                        return DueAction::Drop;
                    }
                    banks[g.bank_of(set) as usize] += 1;
                    report.refreshes += 1;
                    DueAction::Refreshed
                });
            }
            RefreshPolicy::PolyphaseDirty { .. } => {
                let sched = self.sched.as_mut().expect("polyphase has a scheduler");
                let split = split_line(self.ways);
                let g = *cache.geometry();
                let banks = &mut self.bank_window;
                sched.advance(to_cycle, |line, boundary| {
                    let (set, way) = split(line);
                    let l = cache.line(set, way);
                    if !l.valid {
                        return DueAction::Drop;
                    }
                    if l.dirty {
                        cache.refresh_line(set, way, boundary);
                        banks[g.bank_of(set) as usize] += 1;
                        report.refreshes += 1;
                        DueAction::Refreshed
                    } else {
                        // Clean and idle for a full period: drop it rather
                        // than spend a refresh — a later miss refetches it.
                        cache.invalidate_line(set, way);
                        report.invalidations += 1;
                        DueAction::Drop
                    }
                });
            }
        }
        self.total_refreshes += report.refreshes;
        self.total_invalidations += report.invalidations;
        report
    }

    fn add_uniform(&mut self, total: u64) {
        let b = self.bank_window.len() as u64;
        let base = total / b;
        let rem = (total % b) as usize;
        for (i, w) in self.bank_window.iter_mut().enumerate() {
            *w += base + u64::from(i < rem);
        }
    }

    /// Per-bank refresh ops since the previous drain; resets the window.
    /// The system simulator calls this at each contention-window boundary.
    pub fn drain_bank_refreshes(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        self.drain_bank_refreshes_into(&mut out);
        out
    }

    /// Allocation-free variant of [`Self::drain_bank_refreshes`]: copies
    /// the per-bank window into `out` (cleared first) and resets it. The
    /// hot simulator loop calls this with a reusable scratch buffer.
    pub fn drain_bank_refreshes_into(&mut self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.bank_window);
        self.bank_window.fill(0);
    }

    /// Lines still queued in the polyphase scheduler (zero for periodic
    /// policies, which keep no queue). Interval-boundary observability:
    /// a growing queue is the signature of a refresh storm building up.
    pub fn queued_lines(&self) -> u64 {
        self.sched.as_ref().map_or(0, |s| s.queued_entries() as u64)
    }

    /// Lifetime refresh count (`N_R` deltas are taken from this).
    pub fn total_refreshes(&self) -> u64 {
        self.total_refreshes
    }

    pub fn total_invalidations(&self) -> u64 {
        self.total_invalidations
    }

    pub fn retention(&self) -> RetentionSpec {
        self.retention
    }
}

impl esteem_stats::StatsSource for RefreshEngine {
    /// Registers lifetime refresh work (`refreshes`, `invalidations`)
    /// into the stats tree.
    fn collect(&self, out: &mut esteem_stats::Scope<'_>) {
        out.counter("refreshes", self.total_refreshes);
        out.counter("invalidations", self.total_invalidations);
    }
}

/// Decomposes a packed line id back into `(set, way)`. The polyphase drain
/// does this once per due line; every real geometry has power-of-two
/// associativity, so prefer shift/mask over two hardware divisions (the
/// branch is on a captured constant, predicted after the first entry).
#[inline]
fn split_line(ways: u8) -> impl Fn(u32) -> (u32, u8) {
    let w = u32::from(ways);
    let shift = w.trailing_zeros();
    move |line: u32| {
        if w.is_power_of_two() {
            (line >> shift, (line & (w - 1)) as u8)
        } else {
            (line / w, (line % w) as u8)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esteem_cache::CacheGeometry;

    fn cache() -> SetAssocCache {
        // 64 sets x 4 ways, 2 banks, 4 modules.
        let g = CacheGeometry::from_capacity(16 << 10, 4, 64, 2, 4);
        SetAssocCache::new(g, None)
    }

    fn ret(cycles: u64) -> RetentionSpec {
        RetentionSpec {
            period_cycles: cycles,
        }
    }

    #[test]
    fn periodic_all_refreshes_every_slot() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::PeriodicAll, ret(1000), &c);
        let r = e.advance(&mut c, 3000);
        // 3 periods x 256 slots.
        assert_eq!(r.refreshes, 3 * 256);
        let banks = e.drain_bank_refreshes();
        assert_eq!(banks, vec![384, 384]);
    }

    #[test]
    fn periodic_all_scales_with_active_slots() {
        let mut c = cache();
        for m in 0..4 {
            c.set_module_active_ways(m, 1, 0);
        }
        let mut e = RefreshEngine::new(RefreshPolicy::PeriodicAll, ret(1000), &c);
        let r = e.advance(&mut c, 1000);
        assert_eq!(r.refreshes, c.active_slots());
        assert_eq!(r.refreshes, 64); // 64 sets x 1 way, no leaders
    }

    #[test]
    fn periodic_valid_refreshes_only_valid() {
        let mut c = cache();
        // Fill 10 lines.
        for t in 0..10u64 {
            c.access(c.geometry().block_of(t + 1, (t % 64) as u32), false, 0);
        }
        let mut e = RefreshEngine::new(RefreshPolicy::PeriodicValid, ret(1000), &c);
        let r = e.advance(&mut c, 1000);
        assert_eq!(r.refreshes, 10);
    }

    #[test]
    fn access_feed_needed_only_for_polyphase() {
        let c = cache();
        for (policy, needed) in [
            (RefreshPolicy::NoRefresh, false),
            (RefreshPolicy::PeriodicAll, false),
            (RefreshPolicy::PeriodicValid, false),
            (RefreshPolicy::RPV, true),
        ] {
            let e = RefreshEngine::new(policy, ret(1000), &c);
            assert_eq!(e.needs_access_feed(), needed, "{policy:?}");
        }
    }

    #[test]
    fn batched_access_feed_matches_per_access_feed() {
        let mut c1 = cache();
        let mut c2 = c1.clone();
        let mut scalar = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c1);
        let mut batched = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c2);
        let mut events = Vec::new();
        for t in 0..200u64 {
            let b = c1.geometry().block_of(t % 9, (t * 7 % 64) as u32);
            let now = t * 37;
            let o1 = c1.access(b, t % 3 == 0, now);
            scalar.on_access(&o1, now);
            let o2 = c2.access(b, t % 3 == 0, now);
            assert_eq!(o1, o2);
            events.push((o2, now));
        }
        batched.on_access_batch(&events);
        let r1 = scalar.advance(&mut c1, 20_000);
        let r2 = batched.advance(&mut c2, 20_000);
        assert_eq!(r1, r2);
        assert_eq!(
            scalar.drain_bank_refreshes(),
            batched.drain_bank_refreshes()
        );
    }

    #[test]
    fn no_refresh_does_nothing() {
        let mut c = cache();
        c.access(42, true, 0);
        let mut e = RefreshEngine::new(RefreshPolicy::NoRefresh, ret(100), &c);
        assert_eq!(e.advance(&mut c, 1_000_000), AdvanceReport::default());
    }

    #[test]
    fn rpv_skips_retouched_lines() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c);
        let b = c.geometry().block_of(7, 3);
        let o = c.access(b, false, 10);
        e.on_access(&o, 10);
        // Keep touching the line every 400 cycles: it must never be
        // refreshed, because every touch restores the charge.
        let mut cycle = 10;
        for _ in 0..10 {
            cycle += 400;
            let r = e.advance(&mut c, cycle);
            assert_eq!(r.refreshes, 0, "retouched line refreshed at {cycle}");
            let o = c.access(b, false, cycle);
            e.on_access(&o, cycle);
        }
        // Stop touching: exactly one refresh per retention period follows.
        let r = e.advance(&mut c, cycle + 3000);
        assert!(r.refreshes >= 2 && r.refreshes <= 3, "got {}", r.refreshes);
    }

    #[test]
    fn rpv_refreshes_idle_valid_line_each_period() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c);
        let o = c.access(c.geometry().block_of(9, 1), true, 0);
        e.on_access(&o, 0);
        let r = e.advance(&mut c, 5000);
        assert_eq!(r.refreshes, 5);
        // last_update advanced by the refreshes.
        assert!(c.line(o.set, o.way).last_update >= 4000);
    }

    #[test]
    fn rpv_drops_evicted_lines() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c);
        let set = 5u32;
        // Fill the set's 4 ways then evict the first by a 5th block.
        for t in 1..=5u64 {
            let o = c.access(c.geometry().block_of(t, set), false, t);
            e.on_access(&o, t);
        }
        // 4 valid lines remain; one refresh each per period.
        let r = e.advance(&mut c, 1100);
        assert_eq!(r.refreshes, 4);
    }

    #[test]
    fn rpd_invalidates_clean_refreshes_dirty() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::RPD, ret(1000), &c);
        let clean = c.access(c.geometry().block_of(1, 0), false, 0);
        let dirty = c.access(c.geometry().block_of(1, 1), true, 0);
        e.on_access(&clean, 0);
        e.on_access(&dirty, 0);
        let r = e.advance(&mut c, 1000);
        assert_eq!(r.refreshes, 1);
        assert_eq!(r.invalidations, 1);
        assert!(!c.line(clean.set, clean.way).valid);
        assert!(c.line(dirty.set, dirty.way).valid);
        // The dirty line keeps being refreshed each period.
        let r = e.advance(&mut c, 3000);
        assert_eq!(r.refreshes, 2);
        assert_eq!(r.invalidations, 0);
    }

    #[test]
    fn reconfig_invalidation_unschedules() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c);
        let o = c.access(c.geometry().block_of(3, 9), false, 0);
        e.on_access(&o, 0);
        c.invalidate_line(o.set, o.way);
        e.on_invalidate(o.set, o.way);
        assert_eq!(e.advance(&mut c, 10_000).refreshes, 0);
    }

    #[test]
    fn multi_periodic_stretches_interval_and_scrubs() {
        let mut c = cache();
        // Fill 200 lines.
        for t in 0..200u64 {
            c.access(c.geometry().block_of(t / 64 + 1, (t % 64) as u32), false, 0);
        }
        let mut e = RefreshEngine::new(
            RefreshPolicy::MultiPeriodic {
                periods: 4,
                ecc_bits: 0,
            },
            ret(1000),
            &c,
        )
        .with_variation(crate::errors::RetentionVariation {
            weak_ppm: 100_000.0, // exaggerated so scrubs occur in 200 lines
            ..Default::default()
        });
        // Nothing happens for the first 3 nominal periods.
        assert_eq!(e.advance(&mut c, 3999), AdvanceReport::default());
        // At 4 periods: survivors refreshed, weak lines scrubbed.
        let r = e.advance(&mut c, 4000);
        assert!(r.refreshes > 0);
        assert!(r.invalidations > 0, "exaggerated variation must scrub");
        assert_eq!(r.refreshes + r.invalidations, 200);
        // Scrubbed lines are genuinely invalid now.
        assert_eq!(c.valid_lines(), r.refreshes);
        // A full cycle refreshes 4x less often than periodic-valid would.
        let r2 = e.advance(&mut c, 8000);
        assert_eq!(r2.refreshes + r2.invalidations, c.valid_lines());
    }

    #[test]
    fn queued_lines_reflects_polyphase_backlog() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::RPV, ret(1000), &c);
        assert_eq!(e.queued_lines(), 0);
        for t in 0..5u64 {
            let o = c.access(c.geometry().block_of(t + 1, t as u32), false, 0);
            e.on_access(&o, 0);
        }
        assert_eq!(e.queued_lines(), 5);
        // Periodic policies keep no queue at all.
        let p = RefreshEngine::new(RefreshPolicy::PeriodicAll, ret(1000), &c);
        assert_eq!(p.queued_lines(), 0);
    }

    #[test]
    fn bank_window_drains() {
        let mut c = cache();
        let mut e = RefreshEngine::new(RefreshPolicy::PeriodicAll, ret(1000), &c);
        e.advance(&mut c, 1000);
        let w1 = e.drain_bank_refreshes();
        assert_eq!(w1.iter().sum::<u64>(), 256);
        let w2 = e.drain_bank_refreshes();
        assert_eq!(w2.iter().sum::<u64>(), 0);
        assert_eq!(e.total_refreshes(), 256);
    }
}
