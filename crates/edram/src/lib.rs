//! Embedded-DRAM retention and refresh modelling for the ESTEEM (HPDC'14)
//! reproduction.
//!
//! eDRAM cells store data as charge and must be *refreshed* before their
//! retention period expires (tens of microseconds — roughly 1000x shorter
//! than commodity DRAM). The paper's evaluation hinges on three properties
//! this crate models:
//!
//! 1. **Refresh volume** — how many line refreshes each policy performs per
//!    retention window ([`RefreshEngine`], [`RefreshPolicy`]). This drives
//!    the refresh-energy term `RE_L2 = N_R * E_dyn` and the RPKI metric.
//! 2. **Refresh interference** — refresh operations occupy cache banks and
//!    delay demand accesses ("these refresh operations also make the cache
//!    unavailable, leading to performance loss", paper §7.3). Modelled by
//!    [`BankContention`] as deterministic burst-blocking + queueing.
//! 3. **Retention physics** — the retention period's exponential dependence
//!    on temperature ([`retention`]), anchored at the paper's data points
//!    (40 us at 105 C from Barth et al.; 50 us assumed at 60 C).
//!
//! Policies implemented (paper §6.2 and Refrint, HPCA'13):
//! * `PeriodicAll` — the paper's **baseline**: every active line slot is
//!   refreshed every retention period, valid or not.
//! * `PeriodicValid` — only valid lines are refreshed each period. This is
//!   what ESTEEM uses inside the active portion of the cache.
//! * `PolyphaseValid` (**RPV**) — the retention period is divided into `P`
//!   phases; a block's refresh is aligned to the phase of its last update
//!   and skipped entirely while the block keeps getting accessed (an eDRAM
//!   read/write internally restores the charge).
//! * `PolyphaseDirty` (**RPD**) — like RPV, but when a *clean* block comes
//!   due it is invalidated instead of refreshed (described in the paper,
//!   excluded from its evaluation; we implement it for completeness).
//! * `NoRefresh` — ideal lower bound, for ablation only.
//! * `MultiPeriodic` — ECC-assisted refresh-period extension (the paper's
//!   related-work family [39, 45]); see [`errors`].

pub mod contention;
pub mod engine;
pub mod errors;
pub mod policy;
pub mod retention;
pub mod scheduler;

pub use contention::BankContention;
pub use engine::{AdvanceReport, RefreshEngine};
pub use errors::RetentionVariation;
pub use policy::RefreshPolicy;
pub use retention::RetentionSpec;
