//! Refresh policy taxonomy.

/// Which lines get refreshed, and when (see the crate docs for the policy
/// semantics and their provenance in the paper / Refrint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// No refresh at all. Ideal lower bound used only in ablations — a real
    /// eDRAM cache would lose data.
    NoRefresh,
    /// Refresh every *active slot* every retention period, valid or not.
    /// The paper's baseline.
    PeriodicAll,
    /// Refresh every *valid line* every retention period. Used by ESTEEM
    /// within the active portion of the cache.
    PeriodicValid,
    /// Refrint polyphase-valid (RPV): per-line refresh aligned to the phase
    /// of the line's last update, skipped while the line keeps being
    /// accessed. `phases` is the paper's `P` (4 in the evaluation).
    PolyphaseValid { phases: u8 },
    /// Refrint polyphase-dirty (RPD): like RPV, but a *clean* line due for
    /// refresh is invalidated instead of refreshed.
    PolyphaseDirty { phases: u8 },
    /// ECC-assisted refresh-period extension (related-work family \[39,45\]):
    /// valid lines are refreshed every `periods` retention periods, with
    /// `ecc_bits` of per-line correction; lines whose weak cells don't
    /// survive the stretched interval are invalidated at scrub time (see
    /// [`crate::errors`]).
    MultiPeriodic { periods: u8, ecc_bits: u8 },
}

impl RefreshPolicy {
    /// RPV with the paper's 4 phases.
    pub const RPV: RefreshPolicy = RefreshPolicy::PolyphaseValid { phases: 4 };
    /// RPD with 4 phases.
    pub const RPD: RefreshPolicy = RefreshPolicy::PolyphaseDirty { phases: 4 };

    /// Whether the policy needs per-line due tracking (a scheduler).
    pub fn is_polyphase(&self) -> bool {
        matches!(
            self,
            RefreshPolicy::PolyphaseValid { .. } | RefreshPolicy::PolyphaseDirty { .. }
        )
    }

    pub fn phases(&self) -> u8 {
        match self {
            RefreshPolicy::PolyphaseValid { phases } | RefreshPolicy::PolyphaseDirty { phases } => {
                *phases
            }
            _ => 1,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            RefreshPolicy::NoRefresh => "no-refresh",
            RefreshPolicy::PeriodicAll => "periodic-all",
            RefreshPolicy::PeriodicValid => "periodic-valid",
            RefreshPolicy::PolyphaseValid { .. } => "polyphase-valid (RPV)",
            RefreshPolicy::PolyphaseDirty { .. } => "polyphase-dirty (RPD)",
            RefreshPolicy::MultiPeriodic { .. } => "multi-periodic (ECC)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy() {
        assert!(RefreshPolicy::RPV.is_polyphase());
        assert!(RefreshPolicy::RPD.is_polyphase());
        assert!(!RefreshPolicy::PeriodicAll.is_polyphase());
        assert!(!RefreshPolicy::MultiPeriodic {
            periods: 4,
            ecc_bits: 1
        }
        .is_polyphase());
        assert_eq!(RefreshPolicy::RPV.phases(), 4);
        assert_eq!(RefreshPolicy::PeriodicValid.phases(), 1);
        assert_eq!(RefreshPolicy::RPV.name(), "polyphase-valid (RPV)");
        assert_eq!(
            RefreshPolicy::MultiPeriodic {
                periods: 4,
                ecc_bits: 1
            }
            .name(),
            "multi-periodic (ECC)"
        );
    }
}
