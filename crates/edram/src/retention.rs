//! Retention period physics.

/// Retention specification of the eDRAM array, in core clock cycles.
///
/// The paper runs at 2 GHz, so 50 us = 100_000 cycles and 40 us = 80_000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionSpec {
    pub period_cycles: u64,
}

impl RetentionSpec {
    /// From a period in microseconds and a clock in GHz.
    pub fn from_micros(micros: f64, clock_ghz: f64) -> Self {
        match Self::try_from_micros(micros, clock_ghz) {
            Ok(spec) => spec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Non-panicking form of [`Self::from_micros`]: rejects periods that
    /// round below one cycle (zero, negative, or NaN inputs).
    pub fn try_from_micros(micros: f64, clock_ghz: f64) -> Result<Self, String> {
        let cycles = (micros * clock_ghz * 1000.0).round();
        if cycles.is_nan() || cycles < 1.0 {
            return Err("retention must be at least one cycle".into());
        }
        Ok(Self {
            period_cycles: cycles as u64,
        })
    }

    /// The paper's default: 50 us at 2 GHz.
    pub fn paper_default() -> Self {
        Self::from_micros(50.0, 2.0)
    }

    pub fn period_seconds(&self, clock_hz: f64) -> f64 {
        self.period_cycles as f64 / clock_hz
    }
}

/// Retention period (microseconds) as a function of die temperature, in
/// degrees Celsius.
///
/// Retention is exponentially dependent on temperature (paper §6.1, citing
/// Refrint). We anchor the exponential at the paper's two operating points:
/// 40 us at 105 C (Barth et al., measured) and 50 us at 60 C (the paper's
/// working assumption). Those anchors give
/// `t_ret(T) = 40us * exp(k * (105 - T))` with `k = ln(50/40)/45`.
pub fn retention_micros_at_temp(celsius: f64) -> f64 {
    let k = (50.0f64 / 40.0).ln() / 45.0;
    40.0 * (k * (105.0 - celsius)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_points() {
        assert!((retention_micros_at_temp(105.0) - 40.0).abs() < 1e-9);
        assert!((retention_micros_at_temp(60.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn colder_is_longer() {
        assert!(retention_micros_at_temp(30.0) > retention_micros_at_temp(90.0));
    }

    #[test]
    fn cycles_at_2ghz() {
        assert_eq!(RetentionSpec::from_micros(50.0, 2.0).period_cycles, 100_000);
        assert_eq!(RetentionSpec::from_micros(40.0, 2.0).period_cycles, 80_000);
        assert_eq!(RetentionSpec::paper_default().period_cycles, 100_000);
    }

    #[test]
    fn period_seconds() {
        let r = RetentionSpec::paper_default();
        assert!((r.period_seconds(2.0e9) - 50e-6).abs() < 1e-12);
    }
}
