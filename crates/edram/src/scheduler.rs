//! Lazy calendar queue for polyphase (per-line) refresh scheduling.
//!
//! Refrint's polyphase policies track, per line, the *phase* of the
//! retention period in which the line was last updated, and refresh the
//! line at the start of that phase in the next retention period. We
//! implement this with a ring of phase-boundary buckets holding line ids:
//!
//! * `touch(line, cycle)` computes the line's next due boundary
//!   (`phase_floor(cycle) + retention`) and pushes the line into that
//!   boundary's bucket;
//! * re-touching a line simply *overwrites* its authoritative due cycle;
//!   the superseded bucket entry becomes stale and is filtered when its
//!   bucket is drained (lazy deletion — O(1) per touch, no search);
//! * `advance(to)` drains every boundary bucket up to `to`, invoking the
//!   policy callback for entries whose due cycle still matches.
//!
//! All due cycles are multiples of the phase length, so a bucket maps to
//! exactly one boundary at a time as long as the ring spans more than one
//! retention period (`ring_len = 2 * phases + 2`).

/// What the policy callback decided for a due line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DueAction {
    /// The line was refreshed; reschedule one retention period later.
    Refreshed,
    /// The line no longer needs scheduling (invalid, invalidated by RPD,
    /// or superseded).
    Drop,
}

/// Sentinel meaning "not scheduled".
const UNSCHEDULED: u64 = u64::MAX;

#[derive(Debug, Clone)]
pub struct PolyphaseScheduler {
    phase_len: u64,
    retention: u64,
    ring: Vec<Vec<u32>>,
    /// Authoritative due cycle per line id (`UNSCHEDULED` if none).
    due: Vec<u64>,
    /// Next phase boundary not yet processed.
    next_boundary: u64,
}

impl PolyphaseScheduler {
    pub fn new(retention_cycles: u64, phases: u8, total_lines: u64) -> Self {
        assert!(phases >= 1, "at least one phase");
        assert!(
            retention_cycles.is_multiple_of(u64::from(phases)),
            "retention ({retention_cycles}) must be a multiple of the phase count ({phases})"
        );
        let phase_len = retention_cycles / u64::from(phases);
        let ring_len = (2 * phases as usize) + 2;
        Self {
            phase_len,
            retention: retention_cycles,
            ring: vec![Vec::new(); ring_len],
            due: vec![UNSCHEDULED; total_lines as usize],
            next_boundary: phase_len,
        }
    }

    #[inline]
    fn bucket_of(&self, due: u64) -> usize {
        ((due / self.phase_len) % self.ring.len() as u64) as usize
    }

    /// Records a charge-restoring event (fill, hit, refresh) on `line` at
    /// `cycle`; the line's next refresh is due at the start of this phase,
    /// one retention period later.
    pub fn touch(&mut self, line: u32, cycle: u64) {
        let due = (cycle / self.phase_len) * self.phase_len + self.retention;
        if self.due[line as usize] == due {
            return; // re-touched within the same phase: already queued
        }
        self.due[line as usize] = due;
        let b = self.bucket_of(due);
        self.ring[b].push(line);
    }

    /// Removes a line from consideration (it was invalidated). Lazy: the
    /// bucket entry stays and is filtered at drain time.
    pub fn unschedule(&mut self, line: u32) {
        self.due[line as usize] = UNSCHEDULED;
    }

    /// Currently scheduled due cycle of a line (for tests/invariants).
    pub fn due_of(&self, line: u32) -> Option<u64> {
        match self.due[line as usize] {
            UNSCHEDULED => None,
            d => Some(d),
        }
    }

    /// Processes all phase boundaries `<= to`, calling `on_due(line,
    /// boundary)` for every line genuinely due. A `Refreshed` answer
    /// reschedules the line one retention period later; `Drop` unschedules.
    pub fn advance(&mut self, to: u64, mut on_due: impl FnMut(u32, u64) -> DueAction) {
        while self.next_boundary <= to {
            let boundary = self.next_boundary;
            let b = self.bucket_of(boundary);
            let entries = std::mem::take(&mut self.ring[b]);
            for line in entries {
                if self.due[line as usize] != boundary {
                    continue; // stale (re-touched or unscheduled)
                }
                match on_due(line, boundary) {
                    DueAction::Refreshed => {
                        let due = boundary + self.retention;
                        self.due[line as usize] = due;
                        let nb = self.bucket_of(due);
                        self.ring[nb].push(line);
                    }
                    DueAction::Drop => {
                        self.due[line as usize] = UNSCHEDULED;
                    }
                }
            }
            self.next_boundary += self.phase_len;
        }
    }

    pub fn phase_len(&self) -> u64 {
        self.phase_len
    }

    /// Total queued entries including stale ones (memory watermark, tests).
    pub fn queued_entries(&self) -> usize {
        self.ring.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn collect_refreshes(sched: &mut PolyphaseScheduler, to: u64) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        sched.advance(to, |line, at| {
            out.push((line, at));
            DueAction::Refreshed
        });
        out
    }

    #[test]
    fn untouched_line_never_refreshed() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        let r = collect_refreshes(&mut s, 1000);
        assert!(r.is_empty());
    }

    #[test]
    fn touched_line_refreshed_once_per_period() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(3, 10); // phase 0 -> due at 100
        let r = collect_refreshes(&mut s, 350);
        // Due at 100, then rescheduled 200, 300.
        assert_eq!(r, vec![(3, 100), (3, 200), (3, 300)]);
    }

    #[test]
    fn phase_alignment() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(1, 60); // phase 2 (cycles 50..75) -> due at 150
        let r = collect_refreshes(&mut s, 160);
        assert_eq!(r, vec![(1, 150)]);
    }

    #[test]
    fn retouch_postpones_refresh() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(5, 10); // due 100
                        // Advance to 90, then re-touch at 95 (phase 3) -> due moves to 175.
        let r = collect_refreshes(&mut s, 90);
        assert!(r.is_empty());
        s.touch(5, 95);
        let r = collect_refreshes(&mut s, 174);
        assert!(r.is_empty(), "refresh at 100 must have been skipped");
        let r = collect_refreshes(&mut s, 175);
        assert_eq!(r, vec![(5, 175)]);
    }

    #[test]
    fn unschedule_cancels() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(2, 0);
        s.unschedule(2);
        assert!(collect_refreshes(&mut s, 500).is_empty());
        assert_eq!(s.due_of(2), None);
    }

    #[test]
    fn drop_action_stops_rescheduling() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(7, 0);
        let mut calls = 0;
        s.advance(400, |_, _| {
            calls += 1;
            DueAction::Drop
        });
        assert_eq!(calls, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the phase count")]
    fn rejects_indivisible_retention() {
        PolyphaseScheduler::new(101, 4, 8);
    }

    proptest! {
        /// Safety: with a Refreshed answer to every due event, the gap
        /// between consecutive charge-restoring events of a line never
        /// exceeds one retention period plus one phase (the worst-case
        /// deferral of phase-floor alignment is < one phase).
        #[test]
        fn retention_never_violated(
            touches in proptest::collection::vec((0u32..16, 0u64..5_000), 1..300),
        ) {
            let retention = 400u64;
            let phases = 4u64;
            let mut s = PolyphaseScheduler::new(retention, phases as u8, 16);
            let mut sorted = touches.clone();
            sorted.sort_by_key(|&(_, c)| c);
            let mut last_restore = [None::<u64>; 16];
            let mut max_gap = 0u64;
            let mut clock = 0u64;
            let final_cycle = sorted.last().map(|&(_, c)| c).unwrap_or(0) + 3 * retention;
            sorted.push((0, final_cycle)); // flush the schedule at the end
            for (line, cycle) in sorted {
                let cycle = cycle.max(clock);
                // Drain due refreshes before this touch.
                let lr = &mut last_restore;
                let mg = &mut max_gap;
                s.advance(cycle, |l, at| {
                    if let Some(prev) = lr[l as usize] {
                        *mg = (*mg).max(at - prev);
                    }
                    lr[l as usize] = Some(at);
                    DueAction::Refreshed
                });
                s.touch(line, cycle);
                last_restore[line as usize] = Some(cycle);
                clock = cycle;
            }
            // Worst-case deferral from phase-floor alignment is < 1 phase.
            prop_assert!(
                max_gap <= retention + retention / phases,
                "charge-restore gap {max_gap} exceeds retention bound"
            );
        }
    }
}
