//! Lazy calendar queue for polyphase (per-line) refresh scheduling.
//!
//! Refrint's polyphase policies track, per line, the *phase* of the
//! retention period in which the line was last updated, and refresh the
//! line at the start of that phase in the next retention period. We
//! implement this with a ring of phase-boundary buckets holding line ids:
//!
//! * `touch(line, cycle)` computes the line's next due boundary
//!   (`phase_floor(cycle) + retention`) and pushes the line into that
//!   boundary's bucket;
//! * re-touching a line simply *overwrites* its authoritative due cycle;
//!   the superseded bucket entry becomes stale and is filtered when its
//!   bucket is drained (lazy deletion — O(1) per touch, no search);
//! * `advance(to)` drains every boundary bucket up to `to`, invoking the
//!   policy callback for entries whose due cycle still matches.
//!
//! All due cycles are multiples of the phase length, so a bucket maps to
//! exactly one boundary at a time as long as the ring spans more than one
//! retention period (`ring_len = (2 * phases + 2).next_power_of_two()`;
//! rounding up to a power of two makes the bucket index a mask).
//!
//! `touch` sits on the L2 access hot path (every hit and fill of a
//! polyphase technique lands here), so the phase-floor computation avoids
//! hardware division: the phase length is inverted once at construction
//! into a 64-bit fixed-point reciprocal and each quotient is a widening
//! multiply plus shift (exact for the cycle ranges the simulator can
//! produce; see `PhaseDiv`).

use esteem_cache::{strict_assert, strict_assert_eq};

/// What the policy callback decided for a due line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DueAction {
    /// The line was refreshed; reschedule one retention period later.
    Refreshed,
    /// The line no longer needs scheduling (invalid, invalidated by RPD,
    /// or superseded).
    Drop,
}

/// Sentinel meaning "not scheduled".
const UNSCHEDULED: u32 = u32::MAX;

/// How many entries ahead the drain passes software-prefetch. Far enough
/// to cover an L3/memory load, near enough that the touched lines are
/// still cached when the walk arrives.
const DRAIN_LOOKAHEAD: usize = 8;

/// Division by a fixed phase length via a precomputed 64-bit reciprocal.
///
/// `magic = ceil(2^64 / d)`, so `(x * magic) >> 64 = floor(x/d)` whenever
/// `x * (magic*d - 2^64) < 2^64`; since the rounding excess is at most `d`,
/// gating on `d <= 2^20` makes the fast path exact for every `x < 2^44` —
/// far beyond any cycle count the simulator reaches (a full run is under
/// 2^40 cycles). Larger or unit divisors fall back to plain division.
#[derive(Debug, Clone, Copy)]
struct PhaseDiv {
    d: u64,
    /// `ceil(2^64 / d)` when the fast path applies, else 0.
    magic: u64,
}

impl PhaseDiv {
    fn new(d: u64) -> Self {
        assert!(d >= 1);
        let magic = if d > 1 && d <= (1 << 20) {
            (u128::from(u64::MAX) / u128::from(d) + 1) as u64
        } else {
            0
        };
        Self { d, magic }
    }

    /// `floor(x / d)`.
    #[inline]
    fn quot(&self, x: u64) -> u64 {
        let q = if self.d == 1 {
            x
        } else if self.magic != 0 {
            ((u128::from(x) * u128::from(self.magic)) >> 64) as u64
        } else {
            x / self.d
        };
        strict_assert_eq!(q, x / self.d, "reciprocal division wrong for x={x}");
        q
    }
}

#[derive(Debug, Clone)]
pub struct PolyphaseScheduler {
    phase_len: u64,
    /// Reciprocal divider for `phase_len` (the hot-path phase floor).
    phase_div: PhaseDiv,
    /// `retention / phase_len`: bucket distance of one retention period.
    phases: u64,
    ring: Vec<Vec<u32>>,
    /// `ring.len() - 1`; the ring length is a power of two.
    ring_mask: u64,
    /// Authoritative due boundary per line, stored as a phase index
    /// (`due_cycle / phase_len`, `UNSCHEDULED` if none). Touch and drain
    /// both hit this array at random line offsets, one entry per L2 line;
    /// u32 halves it so the working set stays cache-resident. Phase
    /// indices fit easily: a full run is under 2^40 cycles and the
    /// shortest real phase is tens of thousands of cycles.
    due: Vec<u32>,
    /// Next phase boundary not yet processed.
    next_boundary: u64,
    /// `next_boundary / phase_len`, maintained incrementally.
    next_boundary_quot: u64,
}

impl PolyphaseScheduler {
    pub fn new(retention_cycles: u64, phases: u8, total_lines: u64) -> Self {
        assert!(phases >= 1, "at least one phase");
        assert!(
            retention_cycles.is_multiple_of(u64::from(phases)),
            "retention ({retention_cycles}) must be a multiple of the phase count ({phases})"
        );
        let phase_len = retention_cycles / u64::from(phases);
        let ring_len = (2 * phases as usize + 2).next_power_of_two();
        Self {
            phase_len,
            phase_div: PhaseDiv::new(phase_len),
            phases: u64::from(phases),
            ring: vec![Vec::new(); ring_len],
            ring_mask: ring_len as u64 - 1,
            due: vec![UNSCHEDULED; total_lines as usize],
            next_boundary: phase_len,
            next_boundary_quot: 1,
        }
    }

    /// Bucket of a boundary given its phase index (`boundary / phase_len`).
    #[inline]
    fn bucket_of_quot(&self, quot: u64) -> usize {
        (quot & self.ring_mask) as usize
    }

    /// Records a charge-restoring event (fill, hit, refresh) on `line` at
    /// `cycle`; the line's next refresh is due at the start of this phase,
    /// one retention period later.
    pub fn touch(&mut self, line: u32, cycle: u64) {
        // due = phase_floor(cycle) + retention; since retention is exactly
        // `phases` phase lengths, the due boundary's phase index is the
        // cycle's quotient plus `phases` — one quotient, no second divide.
        let q = self.phase_div.quot(cycle);
        let due_q = q + self.phases;
        // Hard (not debug) assert: a due quotient that reaches the u32
        // sentinel would alias UNSCHEDULED and silently never refresh the
        // line. Unreachable for real runs (< 2^40 cycles, phase lengths in
        // the tens of thousands), so the predictable branch is free.
        assert!(due_q < u64::from(UNSCHEDULED), "phase index overflows u32");
        // Touches never trail the drain point: the simulator reports
        // accesses at cycles >= the last `advance` target, so the due
        // boundary is always still ahead of the next one to process.
        strict_assert!(
            due_q >= self.next_boundary_quot,
            "touch at cycle {cycle} schedules an already-drained boundary"
        );
        if self.due[line as usize] == due_q as u32 {
            return; // re-touched within the same phase: already queued
        }
        self.due[line as usize] = due_q as u32;
        let b = self.bucket_of_quot(due_q);
        self.ring[b].push(line);
    }

    /// Removes a line from consideration (it was invalidated). Lazy: the
    /// bucket entry stays and is filtered at drain time.
    pub fn unschedule(&mut self, line: u32) {
        self.due[line as usize] = UNSCHEDULED;
    }

    /// Currently scheduled due cycle of a line (for tests/invariants).
    pub fn due_of(&self, line: u32) -> Option<u64> {
        match self.due[line as usize] {
            UNSCHEDULED => None,
            d => Some(u64::from(d) * self.phase_len),
        }
    }

    /// Processes all phase boundaries `<= to`, calling `on_due(line,
    /// boundary)` for every line genuinely due. A `Refreshed` answer
    /// reschedules the line one retention period later; `Drop` unschedules.
    pub fn advance(&mut self, to: u64, mut on_due: impl FnMut(u32, u64) -> DueAction) {
        while self.next_boundary <= to {
            let boundary = self.next_boundary;
            let bq = self.next_boundary_quot;
            let b = self.bucket_of_quot(bq);
            // Swap the bucket out (not `mem::take`, which would free its
            // allocation: swapping back afterwards keeps the bucket's grown
            // capacity across ring revolutions instead of re-growing from
            // zero every period).
            let mut entries = Vec::new();
            std::mem::swap(&mut entries, &mut self.ring[b]);
            let mut kept = 0usize;
            for i in 0..entries.len() {
                // The due-cycle lookups hit `due` in schedule order —
                // random in memory; pull the entry a few iterations ahead
                // into cache while this one resolves.
                if let Some(&ahead) = entries.get(i + DRAIN_LOOKAHEAD) {
                    esteem_cache::prefetch_read(&self.due[ahead as usize]);
                }
                let line = entries[i];
                let d = self.due[line as usize];
                if d != bq as u32 {
                    // Not due at this boundary. Usually a stale entry
                    // (re-touched into another bucket, or unscheduled) to
                    // drop — but a line touched far enough ahead of the
                    // drain point wraps the ring and lands in this bucket
                    // for a *future* revolution; discarding it would lose
                    // its refresh entirely (found by the differential
                    // checker: repros div-0-{1,4,9}). Keep exactly the
                    // entries whose authoritative due still maps here.
                    if d != UNSCHEDULED && self.bucket_of_quot(u64::from(d)) == b {
                        strict_assert!(
                            u64::from(d) > bq,
                            "entry for a past boundary survived its drain"
                        );
                        entries[kept] = line;
                        kept += 1;
                    }
                    continue;
                }
                match on_due(line, boundary) {
                    DueAction::Refreshed => {
                        self.due[line as usize] = (bq + self.phases) as u32;
                        // One retention period is `phases` boundaries ahead;
                        // `phases < ring_len`, so never bucket `b` itself —
                        // the drained bucket stays empty while we iterate.
                        let nb = self.bucket_of_quot(bq + self.phases);
                        self.ring[nb].push(line);
                    }
                    DueAction::Drop => {
                        self.due[line as usize] = UNSCHEDULED;
                    }
                }
            }
            strict_assert!(self.ring[b].is_empty(), "drained bucket repopulated");
            entries.truncate(kept);
            std::mem::swap(&mut entries, &mut self.ring[b]);
            self.next_boundary += self.phase_len;
            self.next_boundary_quot += 1;
        }
    }

    pub fn phase_len(&self) -> u64 {
        self.phase_len
    }

    /// Total queued entries including stale ones (memory watermark, tests).
    pub fn queued_entries(&self) -> usize {
        self.ring.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn collect_refreshes(sched: &mut PolyphaseScheduler, to: u64) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        sched.advance(to, |line, at| {
            out.push((line, at));
            DueAction::Refreshed
        });
        out
    }

    #[test]
    fn untouched_line_never_refreshed() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        let r = collect_refreshes(&mut s, 1000);
        assert!(r.is_empty());
    }

    #[test]
    fn touched_line_refreshed_once_per_period() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(3, 10); // phase 0 -> due at 100
        let r = collect_refreshes(&mut s, 350);
        // Due at 100, then rescheduled 200, 300.
        assert_eq!(r, vec![(3, 100), (3, 200), (3, 300)]);
    }

    #[test]
    fn phase_alignment() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(1, 60); // phase 2 (cycles 50..75) -> due at 150
        let r = collect_refreshes(&mut s, 160);
        assert_eq!(r, vec![(1, 150)]);
    }

    #[test]
    fn retouch_postpones_refresh() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(5, 10); // due 100
                        // Advance to 90, then re-touch at 95 (phase 3) -> due moves to 175.
        let r = collect_refreshes(&mut s, 90);
        assert!(r.is_empty());
        s.touch(5, 95);
        let r = collect_refreshes(&mut s, 174);
        assert!(r.is_empty(), "refresh at 100 must have been skipped");
        let r = collect_refreshes(&mut s, 175);
        assert_eq!(r, vec![(5, 175)]);
    }

    #[test]
    fn unschedule_cancels() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(2, 0);
        s.unschedule(2);
        assert!(collect_refreshes(&mut s, 500).is_empty());
        assert_eq!(s.due_of(2), None);
    }

    #[test]
    fn drop_action_stops_rescheduling() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(7, 0);
        let mut calls = 0;
        s.advance(400, |_, _| {
            calls += 1;
            DueAction::Drop
        });
        assert_eq!(calls, 1);
    }

    #[test]
    #[should_panic(expected = "multiple of the phase count")]
    fn rejects_indivisible_retention() {
        PolyphaseScheduler::new(101, 4, 8);
    }

    /// Regression (differential checker, repros div-0-{1,4,9}): a touch
    /// more than `ring_len - phases` phases ahead of the drain point wraps
    /// the calendar ring into a bucket that is drained for an *earlier*
    /// boundary first; the drain used to discard the future-due entry,
    /// silently losing every subsequent refresh of the line.
    #[test]
    fn far_ahead_touch_survives_ring_wraparound() {
        // phases = 4 -> ring_len = 16, phase_len = 25. A touch at 505 is
        // due at 600 (phase index 24), which shares bucket 8 with the
        // boundary at 200 (phase index 8).
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(2, 505);
        let r = collect_refreshes(&mut s, 550);
        assert!(r.is_empty(), "nothing is due before 600, got {r:?}");
        let r = collect_refreshes(&mut s, 600);
        assert_eq!(
            r,
            vec![(2, 600)],
            "far-ahead entry was lost when bucket 8 drained at boundary 200"
        );
        // And the line keeps its periodic schedule afterwards.
        let r = collect_refreshes(&mut s, 800);
        assert_eq!(r, vec![(2, 700), (2, 800)]);
    }

    /// A touch exactly on a phase boundary belongs to the phase *starting*
    /// there: the refresh comes one full retention period later, not at
    /// the boundary one phase earlier.
    #[test]
    fn touch_exactly_on_boundary_schedules_full_period() {
        let mut s = PolyphaseScheduler::new(100, 4, 8);
        s.touch(6, 100);
        let r = collect_refreshes(&mut s, 199);
        assert!(r.is_empty());
        let r = collect_refreshes(&mut s, 200);
        assert_eq!(r, vec![(6, 200)]);
    }

    /// The largest phase index below the sentinel still schedules.
    #[test]
    fn touch_at_max_representable_phase_index_is_fine() {
        let mut s = PolyphaseScheduler::new(4, 4, 8); // phase_len = 1
        let cycle = u64::from(UNSCHEDULED) - 5; // due_q = u32::MAX - 1
        s.touch(0, cycle);
        assert_eq!(s.due_of(0), Some(u64::from(UNSCHEDULED) - 1));
    }

    /// One past it would alias UNSCHEDULED and silently drop the line —
    /// the guard must be a hard error, not a debug-only one.
    #[test]
    #[should_panic(expected = "overflows u32")]
    fn touch_one_past_max_phase_index_panics() {
        let mut s = PolyphaseScheduler::new(4, 4, 8);
        s.touch(0, u64::from(UNSCHEDULED) - 4); // due_q == the sentinel
    }

    proptest! {
        /// The fixed-point reciprocal agrees with hardware division across
        /// the divisor range it claims (including the gate boundaries).
        #[test]
        fn phase_div_matches_division(
            d in prop_oneof![1u64..=1 << 21, (1u64 << 20) - 2..(1 << 20) + 2, 1u64 << 20..1 << 32],
            x in 0u64..1 << 44,
        ) {
            let pd = PhaseDiv::new(d);
            prop_assert_eq!(pd.quot(x), x / d);
        }

        /// Safety: with a Refreshed answer to every due event, the gap
        /// between consecutive charge-restoring events of a line never
        /// exceeds one retention period plus one phase (the worst-case
        /// deferral of phase-floor alignment is < one phase).
        #[test]
        fn retention_never_violated(
            touches in proptest::collection::vec((0u32..16, 0u64..5_000), 1..300),
        ) {
            let retention = 400u64;
            let phases = 4u64;
            let mut s = PolyphaseScheduler::new(retention, phases as u8, 16);
            let mut sorted = touches.clone();
            sorted.sort_by_key(|&(_, c)| c);
            let mut last_restore = [None::<u64>; 16];
            let mut max_gap = 0u64;
            let mut clock = 0u64;
            let final_cycle = sorted.last().map(|&(_, c)| c).unwrap_or(0) + 3 * retention;
            sorted.push((0, final_cycle)); // flush the schedule at the end
            for (line, cycle) in sorted {
                let cycle = cycle.max(clock);
                // Drain due refreshes before this touch.
                let lr = &mut last_restore;
                let mg = &mut max_gap;
                s.advance(cycle, |l, at| {
                    if let Some(prev) = lr[l as usize] {
                        *mg = (*mg).max(at - prev);
                    }
                    lr[l as usize] = Some(at);
                    DueAction::Refreshed
                });
                s.touch(line, cycle);
                last_restore[line as usize] = Some(cycle);
                clock = cycle;
            }
            // Worst-case deferral from phase-floor alignment is < 1 phase.
            prop_assert!(
                max_gap <= retention + retention / phases,
                "charge-restore gap {max_gap} exceeds retention bound"
            );
        }
    }
}
