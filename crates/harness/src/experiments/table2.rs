//! Table 2: eDRAM cache energy constants (inputs, reproduced verbatim
//! with the interpolation the model applies to other sizes).

use esteem_energy::params::{table2_lookup, TABLE2};

use crate::tablefmt::{f, Table};

pub fn render() -> String {
    let mut t = Table::new(&["capacity", "E_dyn (nJ/access)", "P_leak (W)"]);
    for &(mb, d, l) in &TABLE2 {
        t.row(vec![format!("{mb} MB"), f(d, 3), f(l, 3)]);
    }
    // Show what the model interpolates for the sizes Table 3 sweeps use.
    for mb in [1.0, 6.0, 12.0] {
        let (d, l) = table2_lookup(mb);
        t.row(vec![format!("{mb} MB (interp)"), f(d, 3), f(l, 3)]);
    }
    format!(
        "== Table 2: 16-way eDRAM cache energy values ==\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn contains_paper_values() {
        let s = super::render();
        assert!(s.contains("0.212"));
        assert!(s.contains("1.056"));
        assert!(s.contains("interp"));
    }
}
