//! Figure 2: ESTEEM's reconfiguration trace for h264ref — per-interval
//! active ratio and per-module active way counts, showing both intra-
//! application variation and per-module divergence.

use esteem_core::{IntervalRecord, Simulator, Technique};
use esteem_workloads::benchmark_by_name;
use serde::{Deserialize, Serialize};

use crate::tablefmt::{f, Table};
use crate::{default_algo, single_core_cfg, Scale};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    pub workload: String,
    pub intervals: Vec<IntervalRecord>,
    /// Max spread (max - min active ways across modules) seen in any
    /// interval — nonzero demonstrates per-module divergence.
    pub max_module_spread: u8,
    /// Distinct active-ratio values over time — >1 demonstrates temporal
    /// adaptation.
    pub distinct_ratios: usize,
}

pub fn run(scale: Scale, benchmark: &str) -> Fig2Result {
    let profile =
        benchmark_by_name(benchmark).unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
    let mut algo = default_algo(1);
    algo.interval_cycles = scale.interval_cycles();
    let report = Simulator::single(
        single_core_cfg(Technique::Esteem(algo), scale, 50.0),
        &profile,
    )
    .run();
    let max_module_spread = report
        .intervals
        .iter()
        .map(|r| {
            let mx = r.ways.iter().copied().max().unwrap_or(0);
            let mn = r.ways.iter().copied().min().unwrap_or(0);
            mx - mn
        })
        .max()
        .unwrap_or(0);
    let distinct_ratios = {
        let mut v: Vec<u64> = report
            .intervals
            .iter()
            .map(|r| (r.active_fraction * 10_000.0) as u64)
            .collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    Fig2Result {
        workload: benchmark.to_owned(),
        intervals: report.intervals,
        max_module_spread,
        distinct_ratios,
    }
}

pub fn render(r: &Fig2Result) -> String {
    let modules = r.intervals.first().map(|i| i.ways.len()).unwrap_or(0);
    let mut header: Vec<String> = vec!["interval@Mcycles".into(), "active%".into()];
    for m in 0..modules {
        header.push(format!("m{m}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for rec in &r.intervals {
        let mut row = vec![
            format!("{:.0}", rec.cycle as f64 / 1.0e6),
            f(rec.active_fraction * 100.0, 1),
        ];
        row.extend(rec.ways.iter().map(|w| w.to_string()));
        t.row(row);
    }
    format!(
        "== Figure 2: ESTEEM reconfiguration over time ({}) ==\n\
         (per-interval active ratio and active ways per module)\n{}\n\
         max module spread: {} ways, distinct active ratios: {}\n",
        r.workload,
        t.render(),
        r.max_module_spread,
        r.distinct_ratios
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h264ref_reconfigures_over_time() {
        let r = run(Scale::Bench, "h264ref");
        assert!(!r.intervals.is_empty());
        let text = render(&r);
        assert!(text.contains("Figure 2"));
        assert!(text.contains("m0"));
    }
}
