//! Power-breakdown probe (not a paper artifact): per-component power for
//! one workload under every technique. Used for calibration and by the
//! `policy_explorer` example.

use esteem_core::{SimReport, Technique};
use esteem_workloads::benchmark_by_name;
use serde::{Deserialize, Serialize};

use crate::runcache::run_cached;
use crate::tablefmt::{f, Table};
use crate::{default_algo, single_core_cfg, Scale};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerRow {
    pub technique: String,
    pub seconds: f64,
    pub l2_leak_w: f64,
    pub l2_dyn_w: f64,
    pub refresh_w: f64,
    pub mm_leak_w: f64,
    pub mm_dyn_w: f64,
    pub total_w: f64,
    pub energy_j: f64,
    pub ipc: f64,
    pub active_pct: f64,
    pub a_mm: u64,
    pub l2_writebacks: u64,
    pub refreshes: u64,
    pub invalidations: u64,
}

impl PowerRow {
    pub fn from_report(r: &SimReport) -> Self {
        let e = &r.energy;
        let s = r.inputs.seconds.max(1e-12);
        Self {
            technique: r.technique.clone(),
            seconds: r.inputs.seconds,
            l2_leak_w: e.l2_leakage / s,
            l2_dyn_w: e.l2_dynamic / s,
            refresh_w: e.l2_refresh / s,
            mm_leak_w: e.mm_leakage / s,
            mm_dyn_w: e.mm_dynamic / s,
            total_w: e.total() / s,
            energy_j: e.total(),
            ipc: r.per_core[0].ipc,
            active_pct: r.active_ratio * 100.0,
            a_mm: r.mem_accesses,
            l2_writebacks: r.l2_writebacks,
            refreshes: r.refreshes,
            invalidations: r.refresh_invalidations,
        }
    }
}

/// Runs every technique (baseline, RPV, RPD, periodic-valid, ESTEEM) on
/// one benchmark and reports per-component power.
pub fn run(scale: Scale, benchmark: &str) -> Vec<PowerRow> {
    let b = benchmark_by_name(benchmark).unwrap_or_else(|| panic!("unknown benchmark {benchmark}"));
    let mut algo = default_algo(1);
    algo.interval_cycles = scale.interval_cycles();
    [
        Technique::Baseline,
        Technique::Rpv,
        Technique::Rpd,
        Technique::PeriodicValid,
        Technique::EccRefresh {
            periods: 4,
            ecc_bits: 1,
        },
        Technique::Esteem(algo),
    ]
    .iter()
    .map(|&t| {
        let r = run_cached(
            single_core_cfg(t, scale, 50.0),
            std::slice::from_ref(&b),
            benchmark,
        );
        PowerRow::from_report(&r)
    })
    .collect()
}

pub fn render(benchmark: &str, rows: &[PowerRow]) -> String {
    let mut t = Table::new(&[
        "technique",
        "T(s)",
        "L2leak",
        "L2dyn",
        "refresh",
        "MMleak",
        "MMdyn",
        "total W",
        "E (J)",
        "IPC",
        "Act%",
        "A_MM",
        "wb",
        "N_R",
    ]);
    for r in rows {
        t.row(vec![
            r.technique.clone(),
            f(r.seconds, 4),
            f(r.l2_leak_w, 3),
            f(r.l2_dyn_w, 3),
            f(r.refresh_w, 3),
            f(r.mm_leak_w, 3),
            f(r.mm_dyn_w, 3),
            f(r.total_w, 3),
            f(r.energy_j, 4),
            f(r.ipc, 3),
            f(r.active_pct, 1),
            r.a_mm.to_string(),
            r.l2_writebacks.to_string(),
            r.refreshes.to_string(),
        ]);
    }
    format!(
        "== Power breakdown: {benchmark} (single-core, 50us) ==\n{}",
        t.render()
    )
}
