//! Equation 1: ESTEEM's counter storage overhead.

use esteem_cache::CacheGeometry;

use crate::tablefmt::{f, Table};

pub fn render() -> String {
    let mut t = Table::new(&["configuration", "overhead % of L2"]);
    let cases = [
        (
            "4MB, 16-way, 16 modules (paper example)",
            4u64 << 20,
            16u8,
            16u16,
        ),
        ("4MB, 16-way, 8 modules (1-core default)", 4 << 20, 16, 8),
        ("8MB, 16-way, 16 modules (2-core default)", 8 << 20, 16, 16),
        ("8MB, 16-way, 64 modules (Table 3 extreme)", 8 << 20, 16, 64),
        ("4MB, 32-way, 8 modules", 4 << 20, 32, 8),
    ];
    for (label, cap, ways, modules) in cases {
        let g = CacheGeometry::from_capacity(cap, ways, 64, 4, modules);
        t.row(vec![
            label.to_string(),
            f(g.esteem_counter_overhead_percent(), 4),
        ]);
    }
    format!(
        "== Eq. 1: ESTEEM storage overhead (paper: 0.06% for 4MB/16-way/16 modules) ==\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_case_present() {
        let s = super::render();
        assert!(s.contains("0.06"), "paper's 0.06% must appear:\n{s}");
    }
}
