//! Calibration probe (not a paper artifact): per-benchmark behavioural
//! characteristics under the default single-core system, used to sanity
//! check the synthetic workload models against their real counterparts'
//! published classes (miss rates, IPC range, footprints).

use esteem_core::{Simulator, Technique};
use esteem_par::{parallel_map_with, ParConfig};
use esteem_workloads::all_benchmarks;
use serde::{Deserialize, Serialize};

use crate::tablefmt::{f, Table};
use crate::{default_algo, single_core_cfg, Scale};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibRow {
    pub name: String,
    pub base_ipc: f64,
    pub l1_miss_pct: f64,
    pub l2_mpki: f64,
    pub l2_miss_pct: f64,
    pub base_rpki: f64,
    pub valid_frac_pct: f64,
    pub esteem_active_pct: f64,
    pub esteem_saving_pct: f64,
    pub esteem_ws: f64,
    pub rpv_saving_pct: f64,
    pub esteem_mpki_inc: f64,
}

pub fn run(scale: Scale, threads: usize) -> Vec<CalibRow> {
    let benches = all_benchmarks();
    let cfg = ParConfig {
        threads,
        label: "calibration".into(),
        progress: false,
    };
    parallel_map_with(&cfg, &benches, |b| {
        let mut algo = default_algo(1);
        algo.interval_cycles = scale.interval_cycles();
        let base = Simulator::single(single_core_cfg(Technique::Baseline, scale, 50.0), b).run();
        let est = Simulator::single(single_core_cfg(Technique::Esteem(algo), scale, 50.0), b).run();
        let rpv = Simulator::single(single_core_cfg(Technique::Rpv, scale, 50.0), b).run();
        let l1 = &base.per_core[0];
        let l1_total = (l1.l1_hits + l1.l1_misses).max(1);
        let l2_total = (base.l2_hits + base.l2_misses).max(1);
        // Valid fraction at end of the baseline run ~= refresh volume of a
        // valid-only policy relative to capacity.
        let slots = rpv.inputs.seconds; // placeholder to silence unused warnings
        let _ = slots;
        CalibRow {
            name: b.name.to_owned(),
            base_ipc: l1.ipc,
            l1_miss_pct: l1.l1_misses as f64 / l1_total as f64 * 100.0,
            l2_mpki: base.mpki(),
            l2_miss_pct: base.l2_misses as f64 / l2_total as f64 * 100.0,
            base_rpki: base.rpki(),
            valid_frac_pct: rpv.refreshes as f64 / base.refreshes.max(1) as f64 * 100.0,
            esteem_active_pct: est.active_ratio * 100.0,
            esteem_saving_pct: esteem_energy::model::energy_saving_percent(
                base.energy.total(),
                est.energy.total(),
            ),
            esteem_ws: est.per_core[0].ipc / l1.ipc,
            rpv_saving_pct: esteem_energy::model::energy_saving_percent(
                base.energy.total(),
                rpv.energy.total(),
            ),
            esteem_mpki_inc: est.mpki() - base.mpki(),
        }
    })
}

pub fn render(rows: &[CalibRow]) -> String {
    let mut t = Table::new(&[
        "benchmark",
        "IPC",
        "L1miss%",
        "MPKI",
        "L2miss%",
        "RPKI",
        "RPVref%",
        "Act%",
        "E%sav",
        "WS",
        "RPV%sav",
        "dMPKI",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            f(r.base_ipc, 2),
            f(r.l1_miss_pct, 1),
            f(r.l2_mpki, 1),
            f(r.l2_miss_pct, 1),
            f(r.base_rpki, 0),
            f(r.valid_frac_pct, 0),
            f(r.esteem_active_pct, 1),
            f(r.esteem_saving_pct, 1),
            f(r.esteem_ws, 3),
            f(r.rpv_saving_pct, 1),
            f(r.esteem_mpki_inc, 2),
        ]);
    }
    t.render()
}
