//! Table 3: parameter-sensitivity study for ESTEEM.
//!
//! Each row changes exactly one parameter from the §7 defaults and re-runs
//! the full workload suite (single-core: 34 benchmarks; dual-core: 17
//! mixes) for both the baseline and ESTEEM — the baseline is re-run
//! because the cache-geometry rows (associativity, capacity) change it
//! too. Reported per row: average % energy saving, relative performance
//! (geometric-mean weighted speedup), RPKI decrease, MPKI increase, and
//! active ratio — the paper's exact columns.

use esteem_core::{SystemConfig, Technique};
use esteem_energy::metrics;
use esteem_par::{parallel_map_with, ParConfig};
use esteem_workloads::{all_benchmarks, dual_core_mixes, BenchmarkProfile};
use serde::{Deserialize, Serialize};

use crate::runcache::run_cached;
use crate::tablefmt::{f, Table};
use crate::{default_algo, dual_core_cfg, single_core_cfg, Scale};

/// One Table 3 row specification: the default config with one override.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Variant {
    pub label: String,
    pub a_min: Option<u8>,
    pub alpha: Option<f64>,
    pub modules: Option<u16>,
    /// Interval length as a multiple of the default (0.5 = the paper's
    /// 5 M-cycle row at paper scale).
    pub interval_factor: Option<f64>,
    pub rs: Option<u32>,
    pub l2_ways: Option<u8>,
    pub l2_capacity: Option<u64>,
}

impl Variant {
    fn new(label: &str) -> Self {
        Self {
            label: label.to_owned(),
            ..Self::default()
        }
    }
}

/// The paper's single-core variant list (first column of Table 3).
pub fn single_core_variants() -> Vec<Variant> {
    let mut v = vec![Variant::new("Default")];
    let mut add = |label: &str, edit: fn(&mut Variant)| {
        let mut x = Variant::new(label);
        edit(&mut x);
        v.push(x);
    };
    add("A_min=2", |x| x.a_min = Some(2));
    add("A_min=4", |x| x.a_min = Some(4));
    add("alpha=0.95", |x| x.alpha = Some(0.95));
    add("alpha=0.99", |x| x.alpha = Some(0.99));
    add("2 modules", |x| x.modules = Some(2));
    add("4 modules", |x| x.modules = Some(4));
    add("16 modules", |x| x.modules = Some(16));
    add("32 modules", |x| x.modules = Some(32));
    add("5M interval", |x| x.interval_factor = Some(0.5));
    add("15M interval", |x| x.interval_factor = Some(1.5));
    add("Rs=32", |x| x.rs = Some(32));
    add("Rs=128", |x| x.rs = Some(128));
    add("8-way L2", |x| x.l2_ways = Some(8));
    add("32-way L2", |x| x.l2_ways = Some(32));
    add("2MB L2", |x| x.l2_capacity = Some(2 << 20));
    add("8MB L2", |x| x.l2_capacity = Some(8 << 20));
    v
}

/// The paper's dual-core variant list (defaults differ: M=16, 8MB).
pub fn dual_core_variants() -> Vec<Variant> {
    let mut v = vec![Variant::new("Default")];
    let mut add = |label: &str, edit: fn(&mut Variant)| {
        let mut x = Variant::new(label);
        edit(&mut x);
        v.push(x);
    };
    add("A_min=2", |x| x.a_min = Some(2));
    add("A_min=4", |x| x.a_min = Some(4));
    add("alpha=0.95", |x| x.alpha = Some(0.95));
    add("alpha=0.99", |x| x.alpha = Some(0.99));
    add("4 modules", |x| x.modules = Some(4));
    add("8 modules", |x| x.modules = Some(8));
    add("32 modules", |x| x.modules = Some(32));
    add("64 modules", |x| x.modules = Some(64));
    add("5M interval", |x| x.interval_factor = Some(0.5));
    add("15M interval", |x| x.interval_factor = Some(1.5));
    add("Rs=32", |x| x.rs = Some(32));
    add("Rs=128", |x| x.rs = Some(128));
    add("8-way L2", |x| x.l2_ways = Some(8));
    add("32-way L2", |x| x.l2_ways = Some(32));
    add("4MB L2", |x| x.l2_capacity = Some(4 << 20));
    add("16MB L2", |x| x.l2_capacity = Some(16 << 20));
    v
}

/// One computed Table 3 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    pub label: String,
    pub energy_saving_pct: f64,
    pub rel_perf: f64,
    pub rpki_dec: f64,
    pub mpki_inc: f64,
    pub active_ratio_pct: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    pub cores: u32,
    pub scale_instructions: u64,
    pub rows: Vec<Row>,
}

fn apply_variant(cfg: &mut SystemConfig, v: &Variant, scale: Scale) {
    if let Some(w) = v.l2_ways {
        cfg.l2_ways = w;
    }
    if let Some(c) = v.l2_capacity {
        cfg.l2_capacity = c;
    }
    let algo = match &mut cfg.technique {
        Technique::Esteem(a) => a,
        _ => return,
    };
    algo.interval_cycles = scale.interval_cycles();
    if let Some(x) = v.a_min {
        algo.a_min = x;
    }
    if let Some(x) = v.alpha {
        algo.alpha = x;
    }
    if let Some(x) = v.modules {
        algo.modules = x;
    }
    if let Some(x) = v.interval_factor {
        algo.interval_cycles = (algo.interval_cycles as f64 * x) as u64;
    }
    if let Some(x) = v.rs {
        algo.rs = x;
    }
}

/// Per-(variant, workload) metric tuple.
#[derive(Debug, Clone, Copy)]
struct Cell {
    saving: f64,
    ws: f64,
    rpki_dec: f64,
    mpki_inc: f64,
    active: f64,
}

fn run_cell(
    cores: u32,
    scale: Scale,
    v: &Variant,
    profiles: &[BenchmarkProfile],
    label: &str,
) -> Cell {
    let make = |t: Technique| {
        let mut cfg = if cores == 1 {
            single_core_cfg(t, scale, 50.0)
        } else {
            dual_core_cfg(t, scale, 50.0)
        };
        apply_variant(&mut cfg, v, scale);
        cfg
    };
    // Memoized: most variants only perturb ESTEEM's parameters, so their
    // baseline configs are identical — the run cache collapses those
    // (and the "Default" row's runs, shared with the figures) to one
    // simulation each.
    let base = run_cached(make(Technique::Baseline), profiles, label);
    let mut algo = default_algo(cores);
    algo.interval_cycles = scale.interval_cycles();
    let est = run_cached(make(Technique::Esteem(algo)), profiles, label);
    Cell {
        saving: esteem_energy::model::energy_saving_percent(
            base.energy.total(),
            est.energy.total(),
        ),
        ws: metrics::weighted_speedup(&est.ipcs(), &base.ipcs()),
        rpki_dec: base.rpki() - est.rpki(),
        mpki_inc: est.mpki() - base.mpki(),
        active: est.active_ratio * 100.0,
    }
}

/// Runs the sensitivity table. `subset` restricts workloads (smoke tests).
pub fn run(cores: u32, scale: Scale, threads: usize, subset: Option<&[&str]>) -> Table3Result {
    let variants = if cores == 1 {
        single_core_variants()
    } else {
        dual_core_variants()
    };
    // Workload list.
    let workloads: Vec<(String, Vec<BenchmarkProfile>)> = if cores == 1 {
        all_benchmarks()
            .into_iter()
            .filter(|b| subset.is_none_or(|s| s.contains(&b.name)))
            .map(|b| (b.name.to_owned(), vec![b]))
            .collect()
    } else {
        dual_core_mixes()
            .into_iter()
            .filter(|mx| subset.is_none_or(|s| s.contains(&mx.acronym)))
            .map(|mx| (mx.acronym.to_owned(), vec![mx.a, mx.b]))
            .collect()
    };

    // Flatten (variant x workload) into one parallel job list.
    let jobs: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|vi| (0..workloads.len()).map(move |wi| (vi, wi)))
        .collect();
    let cfg = ParConfig {
        threads,
        label: format!("table3 {cores}-core"),
        progress: false,
    };
    let cells = parallel_map_with(&cfg, &jobs, |&(vi, wi)| {
        let (label, profiles) = &workloads[wi];
        run_cell(cores, scale, &variants[vi], profiles, label)
    });

    let rows = variants
        .iter()
        .enumerate()
        .map(|(vi, v)| {
            let vcells: Vec<&Cell> = jobs
                .iter()
                .zip(&cells)
                .filter(|((ji, _), _)| *ji == vi)
                .map(|(_, c)| c)
                .collect();
            let col = |g: fn(&Cell) -> f64| -> Vec<f64> { vcells.iter().map(|c| g(c)).collect() };
            Row {
                label: v.label.clone(),
                energy_saving_pct: metrics::arithmetic_mean(&col(|c| c.saving)),
                rel_perf: metrics::geometric_mean(&col(|c| c.ws)),
                rpki_dec: metrics::arithmetic_mean(&col(|c| c.rpki_dec)),
                mpki_inc: metrics::arithmetic_mean(&col(|c| c.mpki_inc)),
                active_ratio_pct: metrics::arithmetic_mean(&col(|c| c.active)),
            }
        })
        .collect();
    Table3Result {
        cores,
        scale_instructions: scale.instructions(),
        rows,
    }
}

pub fn render(r: &Table3Result) -> String {
    let mut t = Table::new(&[
        "variant",
        "%E saving",
        "Rel. Perf.",
        "RPKI dec.",
        "MPKI inc.",
        "Active%",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.label.clone(),
            f(row.energy_saving_pct, 2),
            f(row.rel_perf, 3),
            f(row.rpki_dec, 1),
            f(row.mpki_inc, 3),
            f(row.active_ratio_pct, 1),
        ]);
    }
    format!(
        "== Table 3: ESTEEM parameter sensitivity ({}-core, {} instrs/core) ==\n{}",
        r.cores,
        r.scale_instructions,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_lists_match_paper() {
        let s = single_core_variants();
        let d = dual_core_variants();
        assert_eq!(s.len(), 17); // default + 16 perturbations
        assert_eq!(d.len(), 17);
        assert!(s.iter().any(|v| v.label == "32 modules"));
        assert!(d.iter().any(|v| v.label == "64 modules"));
        assert!(d.iter().any(|v| v.label == "16MB L2"));
    }

    #[test]
    fn smoke_subset_run() {
        // One variant-compatible subset over two tiny workloads.
        let (hits_before, _) = crate::runcache::stats();
        let r = run(1, Scale::Bench, 2, Some(&["gamess", "hmmer"]));
        // 13 of the 17 variants share the default-geometry baseline per
        // workload, so the run cache must have served repeats.
        let (hits_after, _) = crate::runcache::stats();
        assert!(
            hits_after > hits_before,
            "table3 must dedup identical baseline runs"
        );
        assert_eq!(r.rows.len(), 17);
        let def = &r.rows[0];
        assert!(def.energy_saving_pct > 0.0, "{def:?}");
        let text = render(&r);
        assert!(text.contains("Default"));
        assert!(text.contains("32-way L2"));
    }
}
