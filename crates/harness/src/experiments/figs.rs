//! Figures 3–6: per-workload energy saving, relative performance, RPKI
//! decrease (ESTEEM and RPV), MPKI increase and active ratio (ESTEEM).
//!
//! Figure 3 = single-core @50 us, Figure 4 = dual-core @50 us,
//! Figure 5 = single-core @40 us, Figure 6 = dual-core @40 us.

use esteem_core::Technique;
use esteem_energy::metrics;
use esteem_par::{parallel_map_with, ParConfig};
use esteem_workloads::{all_benchmarks, dual_core_mixes, BenchmarkProfile};
use serde::{Deserialize, Serialize};

use crate::runcache::run_cached;
use crate::tablefmt::{f, Table};
use crate::{default_algo, dual_core_cfg, single_core_cfg, Scale};

/// One workload's results for a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigRow {
    pub workload: String,
    pub esteem_saving_pct: f64,
    pub rpv_saving_pct: f64,
    pub esteem_ws: f64,
    pub rpv_ws: f64,
    pub esteem_fs: f64,
    pub esteem_rpki_dec: f64,
    pub rpv_rpki_dec: f64,
    pub esteem_mpki_inc: f64,
    pub esteem_active_pct: f64,
    pub base_ipc: f64,
}

/// Figure-level aggregates (the averages quoted in the paper's text).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigAverages {
    pub esteem_saving_pct: f64,
    pub rpv_saving_pct: f64,
    /// Geometric means, per the paper's methodology.
    pub esteem_ws: f64,
    pub rpv_ws: f64,
    pub esteem_fs: f64,
    pub esteem_rpki_dec: f64,
    pub rpv_rpki_dec: f64,
    pub esteem_mpki_inc: f64,
    pub esteem_active_pct: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigResult {
    pub label: String,
    pub retention_us: f64,
    pub cores: u32,
    pub scale_instructions: u64,
    pub rows: Vec<FigRow>,
    pub avg: FigAverages,
}

/// One workload job: baseline + ESTEEM + RPV on identical streams.
fn run_workload(
    cores: u32,
    scale: Scale,
    retention_us: f64,
    profiles: &[BenchmarkProfile],
    label: &str,
) -> FigRow {
    let make = |t: Technique| {
        if cores == 1 {
            single_core_cfg(t, scale, retention_us)
        } else {
            dual_core_cfg(t, scale, retention_us)
        }
    };
    let mut algo = default_algo(cores);
    algo.interval_cycles = scale.interval_cycles();

    let base = run_cached(make(Technique::Baseline), profiles, label);
    let est = run_cached(make(Technique::Esteem(algo)), profiles, label);
    let rpv = run_cached(make(Technique::Rpv), profiles, label);

    let saving = |tech: &esteem_core::SimReport| {
        esteem_energy::model::energy_saving_percent(base.energy.total(), tech.energy.total())
    };
    FigRow {
        workload: label.to_owned(),
        esteem_saving_pct: saving(&est),
        rpv_saving_pct: saving(&rpv),
        esteem_ws: metrics::weighted_speedup(&est.ipcs(), &base.ipcs()),
        rpv_ws: metrics::weighted_speedup(&rpv.ipcs(), &base.ipcs()),
        esteem_fs: metrics::fair_speedup(&est.ipcs(), &base.ipcs()),
        esteem_rpki_dec: base.rpki() - est.rpki(),
        rpv_rpki_dec: base.rpki() - rpv.rpki(),
        esteem_mpki_inc: est.mpki() - base.mpki(),
        esteem_active_pct: est.active_ratio * 100.0,
        base_ipc: base.per_core[0].ipc,
    }
}

fn averages(rows: &[FigRow]) -> FigAverages {
    let col = |g: fn(&FigRow) -> f64| -> Vec<f64> { rows.iter().map(g).collect() };
    FigAverages {
        esteem_saving_pct: metrics::arithmetic_mean(&col(|r| r.esteem_saving_pct)),
        rpv_saving_pct: metrics::arithmetic_mean(&col(|r| r.rpv_saving_pct)),
        esteem_ws: metrics::geometric_mean(&col(|r| r.esteem_ws)),
        rpv_ws: metrics::geometric_mean(&col(|r| r.rpv_ws)),
        esteem_fs: metrics::geometric_mean(&col(|r| r.esteem_fs)),
        esteem_rpki_dec: metrics::arithmetic_mean(&col(|r| r.esteem_rpki_dec)),
        rpv_rpki_dec: metrics::arithmetic_mean(&col(|r| r.rpv_rpki_dec)),
        esteem_mpki_inc: metrics::arithmetic_mean(&col(|r| r.esteem_mpki_inc)),
        esteem_active_pct: metrics::arithmetic_mean(&col(|r| r.esteem_active_pct)),
    }
}

/// Single-core figure (Fig. 3 at 50 us, Fig. 5 at 40 us). `subset`
/// restricts the benchmark list (used by smoke tests and benches).
pub fn run_single_core(
    scale: Scale,
    retention_us: f64,
    threads: usize,
    subset: Option<&[&str]>,
) -> FigResult {
    let benches: Vec<BenchmarkProfile> = all_benchmarks()
        .into_iter()
        .filter(|b| subset.is_none_or(|s| s.contains(&b.name)))
        .collect();
    let cfg = ParConfig {
        threads,
        label: format!("single-core @{retention_us}us"),
        progress: false,
    };
    let rows = parallel_map_with(&cfg, &benches, |b| {
        run_workload(1, scale, retention_us, std::slice::from_ref(b), b.name)
    });
    let avg = averages(&rows);
    FigResult {
        label: format!("single-core {retention_us}us"),
        retention_us,
        cores: 1,
        scale_instructions: scale.instructions(),
        rows,
        avg,
    }
}

/// Dual-core figure (Fig. 4 at 50 us, Fig. 6 at 40 us).
pub fn run_dual_core(
    scale: Scale,
    retention_us: f64,
    threads: usize,
    subset: Option<&[&str]>,
) -> FigResult {
    let mixes: Vec<_> = dual_core_mixes()
        .into_iter()
        .filter(|m| subset.is_none_or(|s| s.contains(&m.acronym)))
        .collect();
    let cfg = ParConfig {
        threads,
        label: format!("dual-core @{retention_us}us"),
        progress: false,
    };
    let rows = parallel_map_with(&cfg, &mixes, |m| {
        let profiles = [m.a.clone(), m.b.clone()];
        run_workload(2, scale, retention_us, &profiles, m.acronym)
    });
    let avg = averages(&rows);
    FigResult {
        label: format!("dual-core {retention_us}us"),
        retention_us,
        cores: 2,
        scale_instructions: scale.instructions(),
        rows,
        avg,
    }
}

/// Exports a figure's rows as CSV (for external plotting).
pub fn to_csv(r: &FigResult) -> String {
    let mut c = crate::csv::Csv::new(&[
        "workload",
        "esteem_saving_pct",
        "rpv_saving_pct",
        "esteem_ws",
        "rpv_ws",
        "esteem_fs",
        "esteem_rpki_dec",
        "rpv_rpki_dec",
        "esteem_mpki_inc",
        "esteem_active_pct",
        "base_ipc",
    ]);
    for row in &r.rows {
        c.row(&[
            row.workload.clone(),
            format!("{:.4}", row.esteem_saving_pct),
            format!("{:.4}", row.rpv_saving_pct),
            format!("{:.4}", row.esteem_ws),
            format!("{:.4}", row.rpv_ws),
            format!("{:.4}", row.esteem_fs),
            format!("{:.2}", row.esteem_rpki_dec),
            format!("{:.2}", row.rpv_rpki_dec),
            format!("{:.4}", row.esteem_mpki_inc),
            format!("{:.2}", row.esteem_active_pct),
            format!("{:.4}", row.base_ipc),
        ]);
    }
    c.finish()
}

/// Renders a figure's data the way the paper reports it.
pub fn render(r: &FigResult) -> String {
    let mut t = Table::new(&[
        "workload",
        "ESTEEM %sav",
        "RPV %sav",
        "ESTEEM WS",
        "RPV WS",
        "ESTEEM dRPKI",
        "RPV dRPKI",
        "dMPKI",
        "Active%",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.workload.clone(),
            f(row.esteem_saving_pct, 2),
            f(row.rpv_saving_pct, 2),
            f(row.esteem_ws, 3),
            f(row.rpv_ws, 3),
            f(row.esteem_rpki_dec, 1),
            f(row.rpv_rpki_dec, 1),
            f(row.esteem_mpki_inc, 3),
            f(row.esteem_active_pct, 1),
        ]);
    }
    let a = &r.avg;
    t.row(vec![
        "AVERAGE".into(),
        f(a.esteem_saving_pct, 2),
        f(a.rpv_saving_pct, 2),
        f(a.esteem_ws, 3),
        f(a.rpv_ws, 3),
        f(a.esteem_rpki_dec, 1),
        f(a.rpv_rpki_dec, 1),
        f(a.esteem_mpki_inc, 3),
        f(a.esteem_active_pct, 1),
    ]);
    format!(
        "== {} (ESTEEM & RPV vs. baseline, {} instrs/core) ==\n{}",
        r.label,
        r.scale_instructions,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_single_core_smoke() {
        let r = run_single_core(Scale::Bench, 50.0, 2, Some(&["gamess", "milc"]));
        assert_eq!(r.rows.len(), 2);
        assert!(r.avg.esteem_saving_pct > 0.0, "{:?}", r.avg);
        assert!(r.avg.esteem_rpki_dec > r.avg.rpv_rpki_dec);
        let text = render(&r);
        assert!(text.contains("AVERAGE"));
        assert!(text.contains("gamess"));
        let csv = to_csv(&r);
        assert_eq!(csv.lines().count(), 3, "header + 2 rows");
        assert!(csv.starts_with("workload,"));
    }
}
