//! Extension study: ECC-assisted refresh-period extension.
//!
//! The paper's related work (§2) cites error-correction approaches that
//! "allow increasing the refresh period by tolerating some failures"
//! [39, 45] as the main alternative to reconfiguration. This experiment
//! quantifies that trade-off on our substrate: sweep the refresh-period
//! multiplier `k` and the ECC strength, and report energy saving,
//! performance, and the scrub-invalidation volume — then put ESTEEM's
//! operating point next to it.

use esteem_core::Technique;
use esteem_energy::metrics;
use esteem_par::{parallel_map_with, ParConfig};
use esteem_workloads::benchmark_by_name;
use serde::{Deserialize, Serialize};

use crate::runcache::run_cached;
use crate::tablefmt::{f, Table};
use crate::{default_algo, single_core_cfg, Scale};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccRow {
    pub benchmark: String,
    pub label: String,
    pub energy_saving_pct: f64,
    pub ws: f64,
    pub rpki_dec: f64,
    pub mpki_inc: f64,
    pub scrub_invalidations: u64,
}

/// Sweeps `k in {2,3,4,6}` x `ecc in {0,1,2}` plus ESTEEM, per benchmark.
pub fn run(scale: Scale, threads: usize, benchmarks: &[&str]) -> Vec<EccRow> {
    let mut jobs: Vec<(String, Technique, String)> = Vec::new();
    for &b in benchmarks {
        for periods in [2u8, 3, 4, 6] {
            for ecc_bits in [0u8, 1, 2] {
                jobs.push((
                    b.to_owned(),
                    Technique::EccRefresh { periods, ecc_bits },
                    format!("k={periods} ecc={ecc_bits}"),
                ));
            }
        }
        let mut algo = default_algo(1);
        algo.interval_cycles = scale.interval_cycles();
        jobs.push((b.to_owned(), Technique::Esteem(algo), "ESTEEM".into()));
    }
    let cfg = ParConfig {
        threads,
        label: "ecc sweep".into(),
        progress: false,
    };
    parallel_map_with(&cfg, &jobs, |(bench, tech, label)| {
        let p = benchmark_by_name(bench).expect("known benchmark");
        let ps = std::slice::from_ref(&p);
        // Memoized: the 13 sweep points per benchmark share one baseline.
        let base = run_cached(single_core_cfg(Technique::Baseline, scale, 50.0), ps, bench);
        let r = run_cached(single_core_cfg(*tech, scale, 50.0), ps, bench);
        EccRow {
            benchmark: bench.clone(),
            label: label.clone(),
            energy_saving_pct: esteem_energy::model::energy_saving_percent(
                base.energy.total(),
                r.energy.total(),
            ),
            ws: metrics::weighted_speedup(&r.ipcs(), &base.ipcs()),
            rpki_dec: base.rpki() - r.rpki(),
            mpki_inc: r.mpki() - base.mpki(),
            scrub_invalidations: r.refresh_invalidations,
        }
    })
}

pub fn render(rows: &[EccRow]) -> String {
    let mut t = Table::new(&[
        "benchmark",
        "policy",
        "%E saving",
        "WS",
        "dRPKI",
        "dMPKI",
        "scrubs",
    ]);
    for r in rows {
        t.row(vec![
            r.benchmark.clone(),
            r.label.clone(),
            f(r.energy_saving_pct, 2),
            f(r.ws, 3),
            f(r.rpki_dec, 1),
            f(r.mpki_inc, 3),
            r.scrub_invalidations.to_string(),
        ]);
    }
    format!(
        "== Extension: ECC-assisted refresh-period extension vs ESTEEM ==\n\
         (k = refresh-period multiplier; scrubs = uncorrectable lines invalidated)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape() {
        let rows = run(Scale::Bench, 1, &["hmmer"]);
        assert_eq!(rows.len(), 13); // 4k x 3ecc + ESTEEM
                                    // Larger k always cuts more refreshes (ecc fixed at 0).
        let k = |label: &str| rows.iter().find(|r| r.label == label).unwrap().rpki_dec;
        assert!(k("k=4 ecc=0") > k("k=2 ecc=0"));
        // ECC never increases scrub volume at fixed k.
        let scrub = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap()
                .scrub_invalidations
        };
        assert!(scrub("k=6 ecc=2") <= scrub("k=6 ecc=0"));
        let text = render(&rows);
        assert!(text.contains("ESTEEM"));
    }
}
