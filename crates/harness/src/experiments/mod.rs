//! One module per regenerated table/figure (DESIGN.md §5).

pub mod breakdown;
pub mod calib;
pub mod ecc;
pub mod fig2;
pub mod figs;
pub mod overhead;
pub mod table1;
pub mod table2;
pub mod table3;
