//! Table 1: the workload inventory.

use esteem_workloads::{all_benchmarks, dual_core_mixes, Suite};

pub fn render() -> String {
    let mut out =
        String::from("== Table 1: workloads ==\n\nSingle-core workloads — HPC in *italics*:\n");
    for b in all_benchmarks() {
        let name = if b.suite == Suite::Hpc {
            format!("*{}*", b.name)
        } else {
            b.name.to_owned()
        };
        out.push_str(&format!("  {}({})\n", b.acronym, name));
    }
    out.push_str("\nDual-core workloads\n");
    for m in dual_core_mixes() {
        out.push_str(&format!("  {}({}-{})\n", m.acronym, m.a.name, m.b.name));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn lists_everything() {
        let s = super::render();
        assert!(s.contains("Ga(gamess)"));
        assert!(s.contains("*xsbench*"));
        assert!(s.contains("GkNe(gobmk-nekbone)"));
        assert_eq!(s.matches('(').count(), 34 + 17);
    }
}
