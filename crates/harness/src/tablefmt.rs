//! Minimal aligned-column table printing for experiment output.

/// A text table with a header row and aligned columns.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with two-space gutters; first column left-aligned, the rest
    /// right-aligned (numeric convention).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    out.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Formats a float with fixed decimals (table cells).
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "x"]);
        t.row(vec!["alpha".into(), f(1.5, 2)]);
        t.row(vec!["b".into(), f(10.25, 2)]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("1.50"));
        assert!(lines[3].ends_with("10.25"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
