//! Regenerates the paper's tables and figures. See crate docs for usage.

use std::path::PathBuf;
use std::process::ExitCode;

use esteem_harness::experiments::{
    breakdown, calib, ecc, fig2, figs, overhead, table1, table2, table3,
};
use esteem_harness::{results, Scale};
use esteem_trace::{export, prof_span, TraceFilter, Tracer};

struct Args {
    scale: Scale,
    threads: usize,
    json_dir: Option<PathBuf>,
    trace: Option<PathBuf>,
    experiments: Vec<String>,
}

fn usage() -> &'static str {
    "usage: esteem-repro [--scale bench|quick|default|paper] [--threads N] [--json DIR] [--trace FILE] <experiment>...\n\
     experiments: table1 table2 overhead fig2 fig3 fig4 fig5 fig6 table3 table3-dual calib ecc breakdown:<bench> all\n\
     --trace FILE: harness self-trace (run-cache lookups + per-experiment wall-clock spans);\n\
                   .json -> Chrome trace-event JSON, else JSONL"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Default,
        threads: esteem_par::default_threads(),
        json_dir: None,
        trace: None,
        experiments: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or_else(|| format!("bad scale {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if args.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a directory")?;
                args.json_dir = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file")?;
                args.trace = Some(PathBuf::from(v));
            }
            "-h" | "--help" => return Err(usage().to_owned()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.experiments.push(other.to_owned()),
        }
    }
    if args.experiments.is_empty() {
        return Err(usage().to_owned());
    }
    Ok(args)
}

fn save<T: serde::Serialize>(args: &Args, name: &str, value: &T) {
    if let Some(dir) = &args.json_dir {
        match results::write_json(dir, name, value) {
            Ok(p) => eprintln!("wrote {}", p.display()),
            Err(e) => eprintln!("failed to write {name}.json: {e}"),
        }
    }
}

fn save_csv(args: &Args, name: &str, csv: String) {
    if let Some(dir) = &args.json_dir {
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, csv) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {name}.csv: {e}"),
        }
    }
}

fn run_one(args: &Args, tracer: &Tracer, name: &str) -> Result<(), String> {
    prof_span!(tracer, name);
    let (scale, threads) = (args.scale, args.threads);
    match name {
        "table1" => print!("{}", table1::render()),
        "table2" => print!("{}", table2::render()),
        "overhead" => print!("{}", overhead::render()),
        "fig2" => {
            let r = fig2::run(scale, "h264ref");
            print!("{}", fig2::render(&r));
            save(args, "fig2", &r);
        }
        "fig3" => {
            let r = figs::run_single_core(scale, 50.0, threads, None);
            print!("{}", figs::render(&r));
            save(args, "fig3_single_core_50us", &r);
            save_csv(args, "fig3_single_core_50us", figs::to_csv(&r));
        }
        "fig4" => {
            let r = figs::run_dual_core(scale, 50.0, threads, None);
            print!("{}", figs::render(&r));
            save(args, "fig4_dual_core_50us", &r);
            save_csv(args, "fig4_dual_core_50us", figs::to_csv(&r));
        }
        "fig5" => {
            let r = figs::run_single_core(scale, 40.0, threads, None);
            print!("{}", figs::render(&r));
            save(args, "fig5_single_core_40us", &r);
            save_csv(args, "fig5_single_core_40us", figs::to_csv(&r));
        }
        "fig6" => {
            let r = figs::run_dual_core(scale, 40.0, threads, None);
            print!("{}", figs::render(&r));
            save(args, "fig6_dual_core_40us", &r);
            save_csv(args, "fig6_dual_core_40us", figs::to_csv(&r));
        }
        "table3" => {
            let r = table3::run(1, scale, threads, None);
            print!("{}", table3::render(&r));
            save(args, "table3_single_core", &r);
        }
        "table3-dual" => {
            let r = table3::run(2, scale, threads, None);
            print!("{}", table3::render(&r));
            save(args, "table3_dual_core", &r);
        }
        "ecc" => {
            let rows = ecc::run(scale, threads, &["hmmer", "bzip2", "milc"]);
            print!("{}", ecc::render(&rows));
            save(args, "ecc_extension", &rows);
        }
        name if name.starts_with("breakdown:") => {
            let bench = &name["breakdown:".len()..];
            let rows = breakdown::run(scale, bench);
            print!("{}", breakdown::render(bench, &rows));
        }
        "calib" => {
            let rows = calib::run(scale, threads);
            print!("{}", calib::render(&rows));
            save(args, "calibration", &rows);
        }
        "all" => {
            for e in [
                "table1",
                "table2",
                "overhead",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "table3",
                "table3-dual",
            ] {
                println!();
                run_one(args, tracer, e)?;
            }
        }
        other => return Err(format!("unknown experiment {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "scale={} ({} instrs/core), threads={}",
        args.scale.name(),
        args.scale.instructions(),
        args.threads
    );
    let tracer = match &args.trace {
        // The harness self-trace is unbounded in principle but tiny in
        // practice (one event per cache lookup, one span per experiment);
        // a generous ring keeps worst-case memory bounded anyway.
        Some(_) => Tracer::ring(1 << 20, TraceFilter::all()),
        None => Tracer::off(),
    };
    if tracer.is_on() {
        esteem_harness::runcache::set_tracer(tracer.clone());
    }
    for e in &args.experiments.clone() {
        let started = std::time::Instant::now();
        if let Err(msg) = run_one(&args, &tracer, e) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        let (hits, misses) = esteem_harness::runcache::stats();
        eprintln!(
            "[{e}] finished in {:.1}s (run cache: {hits} hits, {misses} misses)",
            started.elapsed().as_secs_f64()
        );
    }
    if let Some(path) = &args.trace {
        match export::export_to_path(&tracer, path) {
            Ok(n) => eprintln!("wrote {n} trace events to {}", path.display()),
            Err(e) => {
                eprintln!("writing trace {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
