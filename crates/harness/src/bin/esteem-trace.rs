//! Offline trace analyzer: reads the event log written by
//! `esteem-sim --trace` (and/or an `--interval-log` file) and prints
//! way-occupancy timelines, reconfiguration churn, energy attribution
//! per event class, self-profile aggregates and anomaly findings
//! (refresh storms, way thrash, energy outliers).
//!
//! ```text
//! esteem-trace [--events FILE] [--interval-log FILE] [--json]
//!              [--thrash-k K] [--thrash-w W] [--sigma S]
//!              [--clock-hz HZ] [--l2-capacity BYTES]
//! ```
//!
//! `--events` accepts both trace formats: a `.json` file is validated as
//! Chrome trace-event JSON (parse + per-track timestamp monotonicity)
//! and summarized; any other extension is read as the compact JSONL log
//! and fully analyzed. At least one input file is required.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use esteem_harness::traceanalyze::{
    analyze, intervals_from_events, render, validate_chrome_trace, AnalyzerParams,
};
use esteem_stats::{read_interval_log, IntervalSample};
use esteem_trace::export;

struct Args {
    events: Option<PathBuf>,
    interval_log: Option<PathBuf>,
    json: bool,
    params: AnalyzerParams,
}

const HELP: &str = "usage: esteem-trace [--events FILE] [--interval-log FILE] [--json]\n\
                    \x20                   [--thrash-k K] [--thrash-w W] [--sigma S]\n\
                    \x20                   [--clock-hz HZ] [--l2-capacity BYTES]\n\
                    --events FILE: .json -> validate Chrome trace JSON; else compact JSONL log";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        events: None,
        interval_log: None,
        json: false,
        params: AnalyzerParams::default(),
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--events" => args.events = Some(PathBuf::from(next(&mut it, "--events")?)),
            "--interval-log" => {
                args.interval_log = Some(PathBuf::from(next(&mut it, "--interval-log")?))
            }
            "--json" => args.json = true,
            "--thrash-k" => {
                args.params.thrash_k = next(&mut it, "--thrash-k")?
                    .parse()
                    .map_err(|e| format!("bad --thrash-k: {e}"))?
            }
            "--thrash-w" => {
                args.params.thrash_w = next(&mut it, "--thrash-w")?
                    .parse()
                    .map_err(|e| format!("bad --thrash-w: {e}"))?;
                if args.params.thrash_w < 2 {
                    return Err("--thrash-w must be at least 2".into());
                }
            }
            "--sigma" => {
                args.params.sigma = next(&mut it, "--sigma")?
                    .parse()
                    .map_err(|e| format!("bad --sigma: {e}"))?
            }
            "--clock-hz" => {
                args.params.clock_hz = next(&mut it, "--clock-hz")?
                    .parse()
                    .map_err(|e| format!("bad --clock-hz: {e}"))?
            }
            "--l2-capacity" => {
                args.params.l2_capacity = next(&mut it, "--l2-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --l2-capacity: {e}"))?
            }
            "-h" | "--help" => return Err(HELP.into()),
            other => return Err(format!("unknown argument {other}\n{HELP}")),
        }
    }
    if args.events.is_none() && args.interval_log.is_none() {
        return Err(format!("need --events and/or --interval-log\n{HELP}"));
    }
    Ok(args)
}

fn is_chrome_json(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "json")
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Chrome-JSON mode: validate and summarize, no event-level analysis
    // (the export is one-way; the JSONL log is the analyzable format).
    if let Some(path) = args.events.as_ref().filter(|p| is_chrome_json(p)) {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let summary =
            validate_chrome_trace(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if summary.events == 0 {
            return Err(format!("{}: no trace events", path.display()));
        }
        if args.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&summary).expect("serializable")
            );
        } else {
            println!(
                "{}: valid Chrome trace ({} events, {} metadata records, {} tracks)",
                path.display(),
                summary.events,
                summary.metadata,
                summary.tracks
            );
        }
        return Ok(());
    }

    let events = match &args.events {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
            export::read_jsonl(BufReader::new(file))
                .map_err(|e| format!("reading {}: {e}", path.display()))?
        }
        None => Vec::new(),
    };
    let intervals: Vec<IntervalSample> = match &args.interval_log {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("opening {}: {e}", path.display()))?;
            read_interval_log(BufReader::new(file))
                .map_err(|e| format!("reading {}: {e}", path.display()))?
        }
        None => intervals_from_events(&events),
    };

    let analysis = analyze(&events, &intervals, &args.params);
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&analysis).expect("serializable")
        );
    } else {
        print!("{}", render(&analysis));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
