//! Dependency-free microbenchmarks for the simulator hot paths.
//!
//! Unlike the criterion benches in `crates/bench`, this binary uses plain
//! `std::time::Instant` so it runs anywhere (CI included) in seconds and
//! emits a single machine-readable JSON file. It measures the three layers
//! the sweeps spend their time in:
//!
//! 1. `cache_access_ns_per_op` — one `SetAssocCache::access` on the paper's
//!    4 MB 16-way L2 geometry, driven by a pre-generated workload stream;
//! 2. `batch_kernel_ns_per_access` — the compact L1 batch kernel
//!    `SetAssocCache::access_batch_l1` fed refill-sized blocks of
//!    pre-encoded accesses (the struct-of-arrays hot path every core
//!    bundle runs);
//! 3. `refresh_advance_ns_per_period` — one `RefreshEngine::advance` over a
//!    retention period (periodic-valid policy, the ESTEEM/baseline path);
//! 4. `histogram_record_ns` — one `esteem_stats::Histogram::record`, the
//!    per-event cost of every latency-metrics tap in the stack;
//! 5. `sim_minstr_per_s` — end-to-end simulated instructions per wall
//!    second on a small Figure-3 subset (baseline + ESTEEM + RPV), the
//!    number that bounds every figure/table sweep.
//!
//! ```text
//! esteem-microbench [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks iteration counts for CI smoke runs. The JSON report is
//! written to `BENCH_hotpath.json` in the current directory by default.

use std::process::ExitCode;
use std::time::Instant;

use esteem_cache::{CacheGeometry, SetAssocCache};
use esteem_core::{Simulator, Technique};
use esteem_edram::{RefreshEngine, RefreshPolicy, RetentionSpec};
use esteem_harness::{default_algo, single_core_cfg, Scale};
use esteem_workloads::{benchmark_by_name, AccessStream};

struct Args {
    quick: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "BENCH_hotpath.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "-h" | "--help" => {
                return Err("usage: esteem-microbench [--quick] [--out PATH]".to_owned())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// L2 cache-access latency: ns per `SetAssocCache::access` on the paper's
/// single-core L2 (4 MB, 16-way, 4 banks, 8 modules, leader stride 64),
/// with the address sequence generated up front so only the cache is timed.
fn bench_cache_access(ops: u64) -> f64 {
    let geom = CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 8);
    let mut cache = SetAssocCache::new(geom, Some(64));
    let profile = benchmark_by_name("gcc").expect("known benchmark");
    let mut stream = AccessStream::new(&profile, 0, 1);
    let blocks: Vec<(u64, bool)> = (0..ops)
        .map(|_| {
            let b = stream.next_bundle();
            (b.mem.block, b.mem.write)
        })
        .collect();
    let started = Instant::now();
    let mut hits = 0u64;
    for (i, &(block, write)) in blocks.iter().enumerate() {
        if cache.access(block, write, i as u64).hit {
            hits += 1;
        }
    }
    let elapsed = started.elapsed();
    assert!(hits > 0, "stream must hit the cache");
    elapsed.as_nanos() as f64 / ops as f64
}

/// Batch-kernel latency: ns per access through the compact L1 kernel
/// `SetAssocCache::access_batch_l1` — the struct-of-arrays hot path every
/// core bundle takes — on the simulator's L1 geometry (32 KB, 4-way,
/// single module), fed in refill-sized blocks of pre-encoded accesses.
fn bench_batch_kernel(ops: u64) -> f64 {
    use esteem_cache::{encode_l1_access, L1Rec};
    const BLOCK: usize = 256;
    let geom = CacheGeometry::from_capacity(32 << 10, 4, 64, 1, 1);
    let mut cache = SetAssocCache::new(geom, None);
    cache.set_retention_tracking(false);
    assert!(cache.supports_l1_batch(), "L1 must take the compact kernel");
    let profile = benchmark_by_name("gcc").expect("known benchmark");
    let mut stream = AccessStream::new(&profile, 0, 1);
    let encoded: Vec<u64> = (0..ops)
        .map(|_| {
            let b = stream.next_bundle();
            encode_l1_access(b.mem.block, b.mem.write)
        })
        .collect();
    let mut recs: Vec<L1Rec> = Vec::new();
    let mut wbs: Vec<u64> = Vec::new();
    let started = Instant::now();
    let mut hits = 0u64;
    for chunk in encoded.chunks(BLOCK) {
        cache.access_batch_l1(chunk, &mut recs, &mut wbs);
        // Consume and recycle the records each block, as the simulator
        // does, so the buffers stay cache-resident instead of growing.
        hits += recs.iter().filter(|r| r.hit()).count() as u64;
        recs.clear();
        wbs.clear();
    }
    let elapsed = started.elapsed();
    assert!(hits > 0, "stream must hit the L1");
    elapsed.as_nanos() as f64 / ops as f64
}

/// Refresh-engine advance cost: ns per retention period of periodic-valid
/// refresh over a warmed 4 MB L2 (the policy both the baseline-valid and
/// ESTEEM configurations run).
fn bench_refresh_advance(periods: u64) -> f64 {
    let geom = CacheGeometry::from_capacity(4 << 20, 16, 64, 4, 1);
    let mut cache = SetAssocCache::new(geom, None);
    let profile = benchmark_by_name("milc").expect("known benchmark");
    let mut stream = AccessStream::new(&profile, 0, 1);
    for i in 0..400_000u64 {
        let b = stream.next_bundle();
        cache.access(b.mem.block, b.mem.write, i);
    }
    let retention = RetentionSpec::from_micros(50.0, 2.0);
    let period = retention.period_cycles;
    let mut engine = RefreshEngine::new(RefreshPolicy::PeriodicValid, retention, &cache);
    let started = Instant::now();
    let mut total = 0u64;
    for p in 1..=periods {
        total += engine.advance(&mut cache, p * period).refreshes;
        if p.is_multiple_of(16) {
            // Keep the drain path (called once per contention window by the
            // system simulator) inside the measured loop.
            let _ = engine.drain_bank_refreshes();
        }
    }
    let elapsed = started.elapsed();
    assert!(total > 0, "a warmed cache must need refreshes");
    elapsed.as_nanos() as f64 / periods as f64
}

/// Histogram recording cost: ns per `Histogram::record` on the
/// log-linear latency histogram the daemon and simulator metrics taps
/// use. Values are LCG-spread across the full tier range so the bench
/// exercises the bucket-index path, not one hot cache line. This bounds
/// the per-event overhead of attaching metrics anywhere in the stack.
fn bench_histogram_record(ops: u64) -> f64 {
    let h = esteem_stats::Histogram::new();
    // Pre-generate the values so only `record` is timed.
    let mut x = 0x9E3779B97F4A7C15u64;
    let values: Vec<u64> = (0..ops)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread across ~6 decades of microseconds.
            x >> (24 + (x & 31))
        })
        .collect();
    let started = Instant::now();
    for &v in &values {
        h.record(v);
    }
    let elapsed = started.elapsed();
    let snap = h.snapshot();
    assert_eq!(snap.count(), ops, "every record lands");
    assert!(
        snap.quantile(0.5) > 0,
        "spread values have a nonzero median"
    );
    elapsed.as_nanos() as f64 / ops as f64
}

/// End-to-end simulator throughput in simulated Minstr per wall second on
/// a Figure-3 subset: each workload runs baseline, ESTEEM, and RPV —
/// exactly the per-row work of the figure sweeps. Runs fresh simulations
/// (never the run cache): this measures the simulator itself.
fn bench_end_to_end(benches: &[&str]) -> (f64, f64) {
    let scale = Scale::Bench;
    let mut algo = default_algo(1);
    algo.interval_cycles = scale.interval_cycles();
    let techniques = [Technique::Baseline, Technique::Esteem(algo), Technique::Rpv];
    let mut simulated_instructions = 0u64;
    let started = Instant::now();
    for &name in benches {
        let profile = benchmark_by_name(name).expect("known benchmark");
        for &t in &techniques {
            let cfg = single_core_cfg(t, scale, 50.0);
            let report = Simulator::single(cfg, &profile).run();
            simulated_instructions += report.total_instructions();
        }
    }
    let seconds = started.elapsed().as_secs_f64();
    let minstr_per_s = simulated_instructions as f64 / 1e6 / seconds;
    (minstr_per_s, seconds)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (cache_ops, refresh_periods, benches): (u64, u64, &[&str]) = if args.quick {
        (1_000_000, 500, &["gamess"])
    } else {
        (8_000_000, 5_000, &["gcc", "gamess", "milc"])
    };

    eprintln!("[1/5] cache access ({cache_ops} ops)...");
    let cache_ns = bench_cache_access(cache_ops);
    eprintln!("      {cache_ns:.1} ns/op");
    eprintln!("[2/5] batch kernel ({cache_ops} accesses)...");
    let batch_ns = bench_batch_kernel(cache_ops);
    eprintln!("      {batch_ns:.1} ns/access");
    eprintln!("[3/5] refresh advance ({refresh_periods} periods)...");
    let refresh_ns = bench_refresh_advance(refresh_periods);
    eprintln!("      {refresh_ns:.1} ns/period");
    eprintln!("[4/5] histogram record ({cache_ops} ops)...");
    let histogram_ns = bench_histogram_record(cache_ops);
    eprintln!("      {histogram_ns:.2} ns/record");
    eprintln!("[5/5] end-to-end sim throughput ({benches:?} x 3 techniques)...");
    let (minstr_per_s, e2e_seconds) = bench_end_to_end(benches);
    eprintln!("      {minstr_per_s:.1} Minstr/s ({e2e_seconds:.2}s wall)");

    // Hand-rolled JSON: this binary intentionally takes no serializer dep.
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"quick\": {},\n  \
         \"cache_access_ns_per_op\": {:.3},\n  \
         \"batch_kernel_ns_per_access\": {:.3},\n  \
         \"refresh_advance_ns_per_period\": {:.1},\n  \
         \"histogram_record_ns\": {:.3},\n  \
         \"sim_minstr_per_s\": {:.2},\n  \
         \"e2e_seconds\": {:.3}\n}}\n",
        args.quick, cache_ns, batch_ns, refresh_ns, histogram_ns, minstr_per_s, e2e_seconds
    );
    match std::fs::write(&args.out, &json) {
        Ok(()) => eprintln!("wrote {}", args.out),
        Err(e) => {
            eprintln!("writing {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
    }
    print!("{json}");
    ExitCode::SUCCESS
}
