//! Single-simulation CLI: run one workload under one technique and print
//! the full report. Also records synthetic access streams to `.estr`
//! trace files (see `esteem_workloads::trace`).
//!
//! ```text
//! esteem-sim [options] <benchmark | mix-acronym>
//!   --technique baseline|rpv|rpd|periodic-valid|esteem|ecc|static
//!                             (default esteem)
//!   --retention <us>          retention period (default 50)
//!   --instructions <N>        per-core instructions (default 10M)
//!   --alpha <f> --a-min <n> --modules <m> --interval <cycles> --rs <n>
//!   --ecc-periods <k> --ecc-bits <b>     (ecc technique)
//!   --ways <n>                fixed way count (static technique, default 4)
//!   --seed <n>
//!   --warmup <cycles>         warm-up cycles excluded from metrics
//!                             (default 35M, the paper stand-in; small
//!                             values make smoke runs cheap)
//!   --threads <n>             worker threads for the front-end refill
//!                             (default: ESTEEM_THREADS, else 1; reports
//!                             are byte-identical at any thread count)
//!   --json                    print the report as JSON
//!   --interval-log <file>     stream one JSONL record per interval
//!   --trace <file>            export a trace: .json -> Chrome trace-event
//!                             JSON (Perfetto/chrome://tracing), any other
//!                             extension -> compact JSONL for esteem-trace
//!   --trace-filter <kinds>    comma list of reconfig,refresh,bank,
//!                             runcache,interval,span (default all)
//!   --trace-buffer <N>        ring-buffer capacity in events (default 1M;
//!                             oldest events drop beyond it)
//!   --record <file.estr> <N>  record N bundles of the workload's stream
//! ```

use std::io::BufWriter;
use std::process::ExitCode;

use esteem_core::{AlgoParams, Simulator, SystemConfig, Technique};
use esteem_edram::RetentionSpec;
use esteem_stats::JsonlSink;
use esteem_trace::{export, TraceFilter, Tracer};
use esteem_workloads::{benchmark_by_name, mixes::mix_by_acronym, trace, AccessStream};

#[derive(Debug)]
struct Args {
    workload: String,
    technique: String,
    retention_us: f64,
    instructions: u64,
    alpha: f64,
    a_min: u8,
    modules: Option<u16>,
    interval: u64,
    rs: u32,
    ecc_periods: u8,
    ecc_bits: u8,
    ways: u8,
    seed: u64,
    warmup: Option<u64>,
    threads: usize,
    json: bool,
    interval_log: Option<String>,
    trace: Option<String>,
    trace_filter: TraceFilter,
    trace_buffer: usize,
    record: Option<(String, u64)>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            workload: String::new(),
            technique: "esteem".into(),
            retention_us: 50.0,
            instructions: 10_000_000,
            alpha: 0.97,
            a_min: 3,
            modules: None,
            interval: 10_000_000,
            rs: 64,
            ecc_periods: 4,
            ecc_bits: 1,
            ways: 4,
            seed: 1,
            warmup: None,
            threads: 0,
            json: false,
            interval_log: None,
            trace: None,
            trace_filter: TraceFilter::all(),
            trace_buffer: 1 << 20,
            record: None,
        }
    }
}

fn parse() -> Result<Args, String> {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--technique" => a.technique = next(&mut it, "--technique")?,
            "--retention" => {
                a.retention_us = next(&mut it, "--retention")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--instructions" => {
                a.instructions = next(&mut it, "--instructions")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--alpha" => {
                a.alpha = next(&mut it, "--alpha")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--a-min" => {
                a.a_min = next(&mut it, "--a-min")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--modules" => {
                a.modules = Some(
                    next(&mut it, "--modules")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--interval" => {
                a.interval = next(&mut it, "--interval")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--rs" => a.rs = next(&mut it, "--rs")?.parse().map_err(|e| format!("{e}"))?,
            "--ecc-periods" => {
                a.ecc_periods = next(&mut it, "--ecc-periods")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--ecc-bits" => {
                a.ecc_bits = next(&mut it, "--ecc-bits")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--ways" => {
                a.ways = next(&mut it, "--ways")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--seed" => {
                a.seed = next(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--warmup" => {
                a.warmup = Some(
                    next(&mut it, "--warmup")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--threads" => {
                a.threads = next(&mut it, "--threads")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if a.threads == 0 {
                    return Err("--threads must be positive".into());
                }
            }
            "--json" => a.json = true,
            "--interval-log" => a.interval_log = Some(next(&mut it, "--interval-log")?),
            "--trace" => a.trace = Some(next(&mut it, "--trace")?),
            "--trace-filter" => {
                a.trace_filter = TraceFilter::parse(&next(&mut it, "--trace-filter")?)?
            }
            "--trace-buffer" => {
                a.trace_buffer = next(&mut it, "--trace-buffer")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                if a.trace_buffer == 0 {
                    return Err("--trace-buffer must be positive".into());
                }
            }
            "--record" => {
                let path = next(&mut it, "--record")?;
                let n: u64 = next(&mut it, "--record")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                a.record = Some((path, n));
            }
            "-h" | "--help" => return Err(HELP.into()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}\n{HELP}")),
            other => a.workload = other.to_owned(),
        }
    }
    if a.workload.is_empty() {
        return Err(HELP.into());
    }
    Ok(a)
}

const HELP: &str = "usage: esteem-sim [options] <benchmark|mix>  (see source header for options)";

fn main() -> ExitCode {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Trace recording mode.
    if let Some((path, n)) = &args.record {
        let Some(profile) = benchmark_by_name(&args.workload) else {
            eprintln!("--record needs a single benchmark, not a mix");
            return ExitCode::FAILURE;
        };
        let mut stream = AccessStream::new(&profile, 0, args.seed);
        let img = trace::record_stream(&mut stream, *n);
        if let Err(e) = std::fs::write(path, &img) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "recorded {n} bundles of {} to {path} ({} bytes)",
            profile.name,
            img.len()
        );
        return ExitCode::SUCCESS;
    }

    // Resolve workload: single benchmark or dual mix.
    let (profiles, label, cores) = if let Some(b) = benchmark_by_name(&args.workload) {
        (vec![b], args.workload.clone(), 1)
    } else if let Some(m) = mix_by_acronym(&args.workload) {
        (vec![m.a, m.b], args.workload.clone(), 2)
    } else {
        eprintln!("unknown workload '{}'", args.workload);
        return ExitCode::FAILURE;
    };

    let algo = AlgoParams {
        alpha: args.alpha,
        a_min: args.a_min,
        modules: args.modules.unwrap_or(if cores == 1 { 8 } else { 16 }),
        interval_cycles: args.interval,
        rs: args.rs,
        max_step: None,
        non_lru_guard: true,
        shrink_confirm: true,
    };
    let technique = match args.technique.as_str() {
        "baseline" => Technique::Baseline,
        "rpv" => Technique::Rpv,
        "rpd" => Technique::Rpd,
        "periodic-valid" => Technique::PeriodicValid,
        "esteem" => Technique::Esteem(algo),
        "ecc" => Technique::EccRefresh {
            periods: args.ecc_periods,
            ecc_bits: args.ecc_bits,
        },
        "static" => Technique::StaticWays { ways: args.ways },
        other => {
            eprintln!("unknown technique '{other}'");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = if cores == 1 {
        SystemConfig::paper_single_core(technique)
    } else {
        SystemConfig::paper_dual_core(technique)
    };
    cfg.retention = match RetentionSpec::try_from_micros(args.retention_us, 2.0) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("--retention {}: {e}", args.retention_us);
            return ExitCode::FAILURE;
        }
    };
    cfg.sim_instructions = args.instructions;
    cfg.seed = args.seed;
    if let Some(w) = args.warmup {
        cfg.warmup_cycles = w;
    }
    // Reject impossible configurations with a one-line error instead of
    // letting a validation assert unwind with a backtrace.
    if let Err(e) = cfg.check() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::FAILURE;
    }

    // `--threads 0` is rejected at parse time, so 0 here means the flag
    // was absent: fall back to ESTEEM_THREADS (via esteem-par), keeping
    // serial the default when neither is given. Thread count is pure
    // throughput knob — the report is byte-identical either way.
    let threads = if args.threads > 0 {
        args.threads
    } else if std::env::var_os("ESTEEM_THREADS").is_some() {
        esteem_par::default_threads()
    } else {
        1
    };
    let mut sim = Simulator::new(cfg, &profiles, &label).with_threads(threads);
    if let Some(path) = &args.interval_log {
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        sim = sim.with_observer(Box::new(JsonlSink::new(BufWriter::new(file))));
    }
    let tracer = match &args.trace {
        Some(_) => Tracer::ring(args.trace_buffer, args.trace_filter),
        None => Tracer::off(),
    };
    if tracer.is_on() {
        sim = sim.with_tracer(tracer.clone());
    }
    let report = sim.run();
    if let Some(path) = &args.trace {
        match export::export_to_path(&tracer, std::path::Path::new(path)) {
            Ok(n) => eprintln!("wrote {n} trace events to {path}"),
            Err(e) => {
                eprintln!("writing trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        );
    } else {
        println!("workload:      {}", report.workload);
        println!("technique:     {}", report.technique);
        println!("cycles:        {}", report.cycles);
        for (i, c) in report.per_core.iter().enumerate() {
            println!(
                "core {i}:        IPC {:.3} ({} instrs, L1 miss {:.1}%)",
                c.ipc,
                c.instructions,
                c.l1_misses as f64 / (c.l1_hits + c.l1_misses).max(1) as f64 * 100.0
            );
        }
        println!(
            "L2:            {} hits, {} misses, {} writebacks",
            report.l2_hits, report.l2_misses, report.l2_writebacks
        );
        println!(
            "refreshes:     {} (RPKI {:.1})",
            report.refreshes,
            report.rpki()
        );
        println!("invalidations: {}", report.refresh_invalidations);
        println!("mem accesses:  {}", report.mem_accesses);
        println!("active ratio:  {:.1}%", report.active_ratio * 100.0);
        let e = &report.energy;
        println!(
            "energy:        {:.4} J = L2(leak {:.4} + dyn {:.4} + refresh {:.4}) + MM(leak {:.4} + dyn {:.4}) + algo {:.6}",
            e.total(), e.l2_leakage, e.l2_dynamic, e.l2_refresh, e.mm_leakage, e.mm_dynamic, e.algo
        );
    }
    ExitCode::SUCCESS
}
