//! Machine-readable experiment persistence.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Writes `value` as pretty JSON to `<dir>/<name>.json`, creating the
/// directory if needed. Returns the path written.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable experiment result");
    fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_is_valid_json() {
        let dir = std::env::temp_dir().join("esteem-results-test");
        let path = write_json(&dir, "probe", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&body).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::fs::remove_file(path).ok();
    }
}
