//! Simulation-length presets.

/// How many instructions each core retires before its IPC is recorded.
///
/// The paper simulates 400 M instructions per core after a 10 B fast
/// forward. Our synthetic streams are stationary-by-phase, so shorter runs
/// retain the qualitative results; `Paper` reproduces the full length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 2 M instructions — smoke tests and criterion benches.
    Bench,
    /// 10 M instructions — fast iteration.
    Quick,
    /// 60 M instructions — the default for reported results (enough for
    /// several 10 M-cycle reconfiguration intervals).
    Default,
    /// 400 M instructions — the paper's published length.
    Paper,
}

impl Scale {
    pub fn instructions(self) -> u64 {
        match self {
            Scale::Bench => 2_000_000,
            Scale::Quick => 10_000_000,
            Scale::Default => 60_000_000,
            Scale::Paper => 400_000_000,
        }
    }

    /// ESTEEM interval length appropriate for the scale: the paper's 10 M
    /// cycles for the realistic scales, shortened for the tiny ones so the
    /// algorithm still gets several intervals to act.
    pub fn interval_cycles(self) -> u64 {
        match self {
            Scale::Bench => 500_000,
            Scale::Quick => 2_000_000,
            Scale::Default | Scale::Paper => 10_000_000,
        }
    }

    /// Warm-up cycles (excluded from all metrics) — the stand-in for the
    /// paper's 10 B fast-forward. Covers at least two reconfiguration
    /// intervals so ESTEEM's damped convergence completes before
    /// measurement.
    pub fn warmup_cycles(self) -> u64 {
        match self {
            Scale::Bench => 2_200_000,
            Scale::Quick => 7_500_000,
            Scale::Default | Scale::Paper => 35_000_000,
        }
    }

    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "bench" => Some(Scale::Bench),
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Bench => "bench",
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in [Scale::Bench, Scale::Quick, Scale::Default, Scale::Paper] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn ordering_of_lengths() {
        assert!(Scale::Bench.instructions() < Scale::Quick.instructions());
        assert!(Scale::Quick.instructions() < Scale::Default.instructions());
        assert!(Scale::Default.instructions() < Scale::Paper.instructions());
        assert_eq!(Scale::Paper.instructions(), 400_000_000);
        assert_eq!(Scale::Paper.interval_cycles(), 10_000_000);
    }
}
