//! Minimal CSV writer for experiment exports (no quoting edge cases are
//! needed: all emitted fields are numbers or identifier-like labels).

use std::fmt::Write as _;

/// Builds a CSV document row by row.
#[derive(Debug, Default, Clone)]
pub struct Csv {
    out: String,
    columns: usize,
}

impl Csv {
    pub fn new(header: &[&str]) -> Self {
        let mut c = Csv {
            out: String::new(),
            columns: header.len(),
        };
        c.raw_row(header.iter().map(|s| s.to_string()));
        c
    }

    fn raw_row(&mut self, cells: impl Iterator<Item = String>) {
        let mut n = 0;
        for (i, cell) in cells.enumerate() {
            debug_assert!(
                !cell.contains(',') && !cell.contains('\n') && !cell.contains('"'),
                "cell {cell:?} needs quoting, which this writer does not do"
            );
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&cell);
            n += 1;
        }
        assert_eq!(n, self.columns, "row width mismatch");
        self.out.push('\n');
    }

    /// Appends a row of displayable cells.
    pub fn row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        let mut rendered = Vec::with_capacity(cells.len());
        for c in cells {
            let mut s = String::new();
            write!(s, "{c}").expect("write to String");
            rendered.push(s);
        }
        self.raw_row(rendered.into_iter());
    }

    /// Finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_csv() {
        let mut c = Csv::new(&["name", "x", "y"]);
        c.row(&["a".to_string(), "1".into(), "2.5".into()]);
        c.row(&["b".to_string(), "3".into(), "4.0".into()]);
        let s = c.finish();
        assert_eq!(s, "name,x,y\na,1,2.5\nb,3,4.0\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged() {
        let mut c = Csv::new(&["a", "b"]);
        c.row(&["only".to_string()]);
    }
}
