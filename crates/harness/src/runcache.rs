//! Content-addressed memoization of simulation runs.
//!
//! The experiment sweeps re-run identical simulations many times over: a
//! figure at 50 us and Table 3's "Default" variant share every baseline
//! run, and 13 of Table 3's 17 variants only perturb ESTEEM's algorithm
//! parameters, so their *baseline* runs are all the same simulation. A
//! run is fully determined by its [`SystemConfig`], its benchmark
//! profiles, and its workload label (the simulator is deterministic:
//! same config + same profiles + same seed => bit-identical
//! [`SimReport`]). This module keys finished reports by a stable
//! fingerprint of exactly those inputs and returns the memoized report
//! instead of re-simulating.
//!
//! The cache is process-wide and thread-safe. Simulations run *outside*
//! the lock: two threads racing on the same fingerprint may both
//! simulate, but both produce the identical report, so the second insert
//! is a harmless overwrite — never a wrong answer.
//!
//! Optional on-disk persistence: set `ESTEEM_RUN_CACHE_DIR` to a
//! directory (e.g. `results/cache/`) and every computed report is also
//! written there as `run-<fingerprint>.json`; later processes with the
//! same setting reload instead of re-simulating. Delete the directory
//! (or unset the variable) to drop the persisted entries. The
//! fingerprint embeds [`FINGERPRINT_VERSION`]; bump it whenever the
//! simulator's observable behavior changes so stale on-disk entries
//! can never be revived.
//!
//! The disk cache is bounded: `ESTEEM_RUN_CACHE_MAX_BYTES` (plain bytes
//! or with a `K`/`M`/`G` suffix) caps the total size of `run-*.json`
//! entries; after every store the oldest entries (by modification time)
//! are evicted until the directory fits. Unset means unbounded, matching
//! the previous behavior. Evictions are counted in [`cache_stats`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use esteem_core::{SimReport, Simulator, SystemConfig, Technique};
use esteem_trace::{EventKind, TraceEvent, Tracer};
use esteem_workloads::BenchmarkProfile;

/// Bump when simulator behavior changes (invalidates persisted entries).
pub const FINGERPRINT_VERSION: u32 = 1;

static CACHE: OnceLock<Mutex<HashMap<u64, SimReport>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static DISK_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static TRACER: OnceLock<Tracer> = OnceLock::new();

fn cache() -> &'static Mutex<HashMap<u64, SimReport>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Attaches a process-wide trace tap: every subsequent lookup emits one
/// [`TraceEvent::RunCache`] event. The cache is process-global state, so
/// its tap is too; first caller wins (later calls are ignored, matching
/// `OnceLock` semantics).
pub fn set_tracer(tracer: Tracer) {
    let _ = TRACER.set(tracer);
}

fn trace_lookup(fp: u64, was_hit: bool) {
    if let Some(t) = TRACER.get() {
        t.emit(EventKind::RunCache, || TraceEvent::RunCache {
            fingerprint: fp,
            hit: was_hit,
        });
    }
}

/// Locks the in-memory cache, recovering from poisoning: the map is
/// plain data and always consistent, and a panic on another sweep
/// thread (e.g. a failed assertion in one experiment) must not cascade
/// into every later lookup panicking too.
fn lock_cache() -> std::sync::MutexGuard<'static, HashMap<u64, SimReport>> {
    cache().lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a (64-bit): small, stable across platforms and runs — unlike
/// `DefaultHasher`, whose output the standard library does not fix.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable fingerprint of one simulation's inputs.
///
/// Hashes the `Debug` rendering of the config and profiles plus the
/// label. `SystemConfig` and `BenchmarkProfile` are plain data (every
/// field shows up in `Debug`, including `sim_instructions` and `seed`),
/// so two runs fingerprint equal iff they would simulate identically.
pub fn fingerprint(cfg: &SystemConfig, profiles: &[BenchmarkProfile], label: &str) -> u64 {
    let mut h = fnv1a(
        format!("v{FINGERPRINT_VERSION}|{label}|{cfg:?}").as_bytes(),
        FNV_OFFSET,
    );
    for p in profiles {
        h = fnv1a(format!("|{p:?}").as_bytes(), h);
    }
    h
}

fn disk_dir() -> Option<PathBuf> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| std::env::var_os("ESTEEM_RUN_CACHE_DIR").map(PathBuf::from))
        .clone()
}

fn disk_path(dir: &std::path::Path, fp: u64) -> PathBuf {
    dir.join(format!("run-{fp:016x}.json"))
}

fn load_from_disk(fp: u64) -> Option<SimReport> {
    let dir = disk_dir()?;
    let body = std::fs::read_to_string(disk_path(&dir, fp)).ok()?;
    serde_json::from_str(&body).ok()
}

/// Parses `ESTEEM_RUN_CACHE_MAX_BYTES`-style sizes: plain bytes or a
/// `K`/`M`/`G` suffix (binary multiples).
pub fn parse_size(s: &str) -> Option<u64> {
    let t = s.trim();
    let (digits, shift) = match t.as_bytes().last()? {
        b'k' | b'K' => (&t[..t.len() - 1], 10),
        b'm' | b'M' => (&t[..t.len() - 1], 20),
        b'g' | b'G' => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_shl(shift))
}

fn disk_max_bytes() -> Option<u64> {
    static MAX: OnceLock<Option<u64>> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("ESTEEM_RUN_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| parse_size(&v))
    })
}

/// Evicts oldest-first (by modification time) until the total size of
/// `run-*.json` entries in `dir` is at most `max_bytes`. Returns the
/// number of entries removed. Concurrent writers make the scan racy in
/// principle; a doomed entry that disappears first is simply skipped.
pub fn enforce_disk_cap(dir: &std::path::Path, max_bytes: u64) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if !(name.starts_with("run-") && name.ends_with(".json")) {
                return None;
            }
            let meta = e.metadata().ok()?;
            let mtime = meta.modified().ok()?;
            Some((mtime, meta.len(), e.path()))
        })
        .collect();
    let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
    if total <= max_bytes {
        return 0;
    }
    files.sort_by_key(|(mtime, _, _)| *mtime);
    let mut evicted = 0;
    for (_, len, path) in files {
        if total <= max_bytes {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
            evicted += 1;
        }
    }
    DISK_EVICTIONS.fetch_add(evicted, Ordering::Relaxed);
    evicted
}

fn store_to_disk(fp: u64, report: &SimReport) {
    let Some(dir) = disk_dir() else { return };
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(json) = serde_json::to_string(report) {
        // Write-then-rename so a concurrent reader never sees a torn file.
        let tmp = dir.join(format!("run-{fp:016x}.json.tmp{}", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() {
            let _ = std::fs::rename(&tmp, disk_path(&dir, fp));
        }
    }
    if let Some(max) = disk_max_bytes() {
        enforce_disk_cap(&dir, max);
    }
}

/// Cache lookup by fingerprint (memory first, then disk), counting and
/// tracing the outcome. A hit loaded from disk is promoted into memory.
///
/// This is the dedupe primitive of the `esteem-serve` job server: it
/// lets a caller that needs to *observe* a simulation (interval streams,
/// tracing) still short-circuit on a cached result, then publish its own
/// report with [`insert`].
pub fn lookup(fp: u64) -> Option<SimReport> {
    if let Some(hit) = lock_cache().get(&fp) {
        HITS.fetch_add(1, Ordering::Relaxed);
        trace_lookup(fp, true);
        return Some(hit.clone());
    }
    if let Some(hit) = load_from_disk(fp) {
        HITS.fetch_add(1, Ordering::Relaxed);
        trace_lookup(fp, true);
        lock_cache().insert(fp, hit.clone());
        return Some(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    trace_lookup(fp, false);
    None
}

/// Publishes a computed report under `fp` (memory + optional disk).
pub fn insert(fp: u64, report: &SimReport) {
    store_to_disk(fp, report);
    lock_cache().insert(fp, report.clone());
}

/// Runs the simulation described by `(cfg, profiles, label)`, memoized.
///
/// On a fingerprint hit the stored report is returned without
/// simulating; on a miss the simulation runs (outside the cache lock)
/// and the report is stored for subsequent callers.
pub fn run_cached(cfg: SystemConfig, profiles: &[BenchmarkProfile], label: &str) -> SimReport {
    let fp = fingerprint(&cfg, profiles, label);
    if let Some(hit) = lookup(fp) {
        return hit;
    }
    let report = Simulator::new(cfg, profiles, label).run();
    insert(fp, &report);
    report
}

/// Memoized baseline-vs-technique comparison (the shape every
/// experiment and ablation uses): both runs go through [`run_cached`],
/// so e.g. Table 3's per-variant baselines collapse to one simulation.
pub fn run_comparison_cached(
    make_cfg: impl Fn(Technique) -> SystemConfig,
    technique: Technique,
    profiles: &[BenchmarkProfile],
    label: &str,
) -> esteem_core::Comparison {
    let base = run_cached(make_cfg(Technique::Baseline), profiles, label);
    let tech = run_cached(make_cfg(technique), profiles, label);
    esteem_core::Comparison::from_reports(base, tech)
}

/// `(hits, misses)` since process start.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Full counter snapshot since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Disk entries evicted by the `ESTEEM_RUN_CACHE_MAX_BYTES` cap.
    pub disk_evictions: u64,
    /// Entries currently resident in memory.
    pub mem_entries: u64,
}

/// [`stats`] plus eviction and residency counts (the `/metrics` view).
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        disk_evictions: DISK_EVICTIONS.load(Ordering::Relaxed),
        mem_entries: lock_cache().len() as u64,
    }
}

/// Drops every in-memory entry (on-disk entries persist) and resets the
/// hit/miss counters. Tests use this for isolation.
pub fn clear() {
    lock_cache().clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{single_core_cfg, Scale};
    use esteem_workloads::benchmark_by_name;

    fn profile() -> BenchmarkProfile {
        benchmark_by_name("gamess").unwrap()
    }

    #[test]
    fn cached_report_is_identical_to_fresh() {
        let p = profile();
        let cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
        let fresh = Simulator::new(cfg.clone(), std::slice::from_ref(&p), "gamess").run();
        let first = run_cached(cfg.clone(), std::slice::from_ref(&p), "gamess");
        let second = run_cached(cfg, std::slice::from_ref(&p), "gamess");
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&first).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        let (hits, _) = stats();
        assert!(hits >= 1, "second lookup must hit");
    }

    #[test]
    fn distinct_inputs_get_distinct_fingerprints() {
        let p = profile();
        let ps = std::slice::from_ref(&p);
        let cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
        let base = fingerprint(&cfg, ps, "gamess");
        // Different label.
        assert_ne!(base, fingerprint(&cfg, ps, "gamess2"));
        // Different retention period.
        let cfg40 = single_core_cfg(Technique::Baseline, Scale::Bench, 40.0);
        assert_ne!(base, fingerprint(&cfg40, ps, "gamess"));
        // Different seed.
        let mut seeded = cfg.clone();
        seeded.seed ^= 1;
        assert_ne!(base, fingerprint(&seeded, ps, "gamess"));
        // Different instruction budget.
        let mut longer = cfg.clone();
        longer.sim_instructions += 1;
        assert_ne!(base, fingerprint(&longer, ps, "gamess"));
        // Different technique.
        let rpv = single_core_cfg(Technique::Rpv, Scale::Bench, 50.0);
        assert_ne!(base, fingerprint(&rpv, ps, "gamess"));
        // Different profile.
        let q = benchmark_by_name("milc").unwrap();
        assert_ne!(base, fingerprint(&cfg, std::slice::from_ref(&q), "gamess"));
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        // Poison the global cache mutex from a panicking closure, as a
        // failed assertion on a sweep thread would; every later lookup
        // must recover the lock instead of cascading the panic.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache().lock().unwrap();
            panic!("poison the run-cache lock");
        }));
        assert!(cache().is_poisoned());
        let p = profile();
        let mut cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
        cfg.seed ^= 0xfeed; // unique fingerprint for this test
        let a = run_cached(cfg.clone(), std::slice::from_ref(&p), "poison-test");
        let b = run_cached(cfg, std::slice::from_ref(&p), "poison-test");
        assert_eq!(a, b);
    }

    #[test]
    fn lookups_emit_trace_events() {
        use esteem_trace::{TraceFilter, Tracer};
        let tracer = Tracer::ring(1 << 12, TraceFilter::all());
        set_tracer(tracer.clone());
        let p = profile();
        let mut cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
        cfg.seed ^= 0xbead; // unique fingerprint for this test
        let fp = fingerprint(&cfg, std::slice::from_ref(&p), "trace-test");
        run_cached(cfg.clone(), std::slice::from_ref(&p), "trace-test");
        run_cached(cfg, std::slice::from_ref(&p), "trace-test");
        // Other tests in this process share the global tap; look only at
        // this test's fingerprint.
        let mine: Vec<bool> = tracer
            .drain()
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::RunCache { fingerprint, hit } if fingerprint == fp => Some(hit),
                _ => None,
            })
            .collect();
        assert_eq!(mine, vec![false, true], "one miss then one hit");
    }

    #[test]
    fn parse_size_accepts_suffixes() {
        assert_eq!(parse_size("1024"), Some(1024));
        assert_eq!(parse_size("4K"), Some(4 << 10));
        assert_eq!(parse_size("2m"), Some(2 << 20));
        assert_eq!(parse_size("1G"), Some(1 << 30));
        assert_eq!(parse_size(" 8M "), Some(8 << 20));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("-1"), None);
    }

    #[test]
    fn disk_cap_evicts_oldest_first() {
        let dir = std::env::temp_dir().join(format!("esteem-cap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Four 100-byte entries with strictly increasing mtimes.
        for i in 0..4u64 {
            let p = dir.join(format!("run-{i:016x}.json"));
            std::fs::write(&p, vec![b'x'; 100]).unwrap();
            let mtime = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i * 60);
            let f = std::fs::File::options().write(true).open(&p).unwrap();
            f.set_modified(mtime).unwrap();
        }
        // Unrelated files are never touched.
        std::fs::write(dir.join("README.txt"), b"keep me").unwrap();
        let evicted = enforce_disk_cap(&dir, 250);
        assert_eq!(evicted, 2, "two entries must go to fit 250 bytes");
        let mut left: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        left.sort();
        assert_eq!(
            left,
            vec![
                "README.txt".to_owned(),
                format!("run-{:016x}.json", 2),
                format!("run-{:016x}.json", 3),
            ],
            "oldest two evicted, newest two and unrelated files kept"
        );
        // Under the cap: nothing further happens.
        assert_eq!(enforce_disk_cap(&dir, 250), 0);
        assert!(cache_stats().disk_evictions >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_insert_roundtrip() {
        let p = profile();
        let mut cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
        cfg.seed ^= 0xcafe; // unique fingerprint for this test
        let fp = fingerprint(&cfg, std::slice::from_ref(&p), "lookup-test");
        assert_eq!(lookup(fp), None, "cold lookup misses");
        let report = Simulator::new(cfg, std::slice::from_ref(&p), "lookup-test").run();
        insert(fp, &report);
        assert_eq!(lookup(fp), Some(report), "published report is returned");
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let p = profile();
        let ps = std::slice::from_ref(&p);
        let cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
        assert_eq!(
            fingerprint(&cfg, ps, "gamess"),
            fingerprint(&cfg.clone(), ps, "gamess")
        );
    }
}
