//! Offline trace analysis for the `esteem-trace` binary.
//!
//! Consumes the compact JSONL event log written by `esteem-sim --trace`
//! (and/or an `--interval-log` file) and produces:
//!
//! - per-module way-occupancy timelines and reconfiguration churn,
//! - energy attribution per interval through the paper's eq. (2)–(8),
//! - span aggregation for the self-profiler,
//! - run-cache hit/miss totals,
//! - anomaly findings: refresh storms, way-allocation thrash, and
//!   intervals whose energy sits more than Nσ from the run mean.
//!
//! It also validates Chrome trace-event JSON exports (event counts and
//! per-track timestamp monotonicity) so CI can smoke-test `--trace`
//! output without a browser.

use serde::{map_get, Serialize, Value};

use esteem_energy::{EnergyBreakdown, EnergyInputs, EnergyParams};
use esteem_stats::IntervalSample;
use esteem_trace::TraceEvent;

/// Knobs for the anomaly detectors.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AnalyzerParams {
    /// Way-thrash: flag a module whose applied way count flips at least
    /// this many times...
    pub thrash_k: u32,
    /// ...within this many consecutive controller intervals.
    pub thrash_w: usize,
    /// Z-score threshold for refresh storms and energy outliers.
    pub sigma: f64,
    /// Core clock for cycle → seconds conversion (paper: 2 GHz).
    pub clock_hz: f64,
    /// L2 capacity for Table 2 energy constants (paper: 4 MB single-core).
    pub l2_capacity: u64,
}

impl Default for AnalyzerParams {
    fn default() -> Self {
        Self {
            thrash_k: 4,
            thrash_w: 8,
            sigma: 3.0,
            clock_hz: 2.0e9,
            l2_capacity: 4 << 20,
        }
    }
}

/// One step of a module's way-occupancy timeline (a change point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WayStep {
    pub cycle: u64,
    pub ways: u8,
}

/// Per-module reconfiguration history.
#[derive(Debug, Clone, Serialize)]
pub struct ModuleTimeline {
    pub module: u16,
    /// Way-count change points, starting with the first decision seen.
    pub timeline: Vec<WayStep>,
    /// Decisions observed for this module.
    pub decisions: u64,
    /// Applied way-count changes (the module's churn).
    pub flips: u64,
    /// Decisions deferred by shrink confirmation.
    pub deferred: u64,
    /// Decisions limited by the non-LRU anomaly guard.
    pub non_lru: u64,
    /// Mean applied ways across decisions.
    pub mean_ways: f64,
}

/// A module whose allocation flipped >= K times within W intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ThrashFinding {
    pub module: u16,
    /// Flips in the worst window.
    pub flips: u32,
    /// Window length in controller intervals.
    pub window: usize,
    /// Cycle of the last decision in the worst window.
    pub end_cycle: u64,
}

/// An interval whose refresh count sits far above the run mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RefreshStorm {
    pub cycle: u64,
    pub refreshes: u64,
    pub z: f64,
}

/// Refresh activity rollup (batch events + storm detection).
#[derive(Debug, Clone, Default, Serialize)]
pub struct RefreshSummary {
    pub batches: u64,
    pub refreshes: u64,
    pub invalidations: u64,
    /// Largest polyphase backlog observed after any batch.
    pub max_pending: u64,
    /// Intervals with refresh z-score >= sigma (needs interval samples).
    pub storms: Vec<RefreshStorm>,
}

/// An interval whose modelled energy sits > sigma σ from the run mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyOutlier {
    pub cycle: u64,
    pub total_j: f64,
    pub z: f64,
}

/// Energy attribution over the interval series (eq. 2–8 per interval).
#[derive(Debug, Clone, Serialize)]
pub struct EnergyAttribution {
    pub intervals: u64,
    /// Summed per-class energy across intervals.
    pub breakdown: EnergyBreakdown,
    pub total_j: f64,
    pub mean_interval_j: f64,
    pub outliers: Vec<EnergyOutlier>,
}

/// Wall-clock profiler spans aggregated by name.
#[derive(Debug, Clone, Serialize)]
pub struct SpanAgg {
    pub name: String,
    pub count: u64,
    pub total_us: f64,
    pub mean_us: f64,
    pub max_us: f64,
}

/// Bank-contention window rollup.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct BankSummary {
    pub windows: u64,
    pub mean_wait_cycles: f64,
    pub mean_utilization: f64,
}

/// Run-cache lookup totals.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RunCacheSummary {
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
}

/// Everything the analyzer extracts from one trace.
#[derive(Debug, Clone, Serialize)]
pub struct Analysis {
    pub params: AnalyzerParams,
    pub events: u64,
    /// `(kind name, count)` in filter-name order, zero counts omitted.
    pub event_counts: Vec<(String, u64)>,
    pub modules: Vec<ModuleTimeline>,
    /// Applied reconfigurations (all modules merged).
    pub reconfig_applies: u64,
    pub reconfig_writebacks: u64,
    pub reconfig_discards: u64,
    pub reconfig_slot_transitions: u64,
    pub thrash: Vec<ThrashFinding>,
    pub refresh: RefreshSummary,
    pub bank: BankSummary,
    pub runcache: RunCacheSummary,
    pub energy: Option<EnergyAttribution>,
    pub spans: Vec<SpanAgg>,
}

/// Population mean and standard deviation; `(0, 0)` for empty input.
fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Rebuilds interval samples from `Interval` trace events, for analyses
/// that were run without a separate `--interval-log` file. Fields the
/// trace does not carry (`ways`, `l2_writebacks`) are left empty.
pub fn intervals_from_events(events: &[TraceEvent]) -> Vec<IntervalSample> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::Interval {
                cycle,
                span_cycles,
                active_fraction,
                l2_hits,
                l2_misses,
                refreshes,
                invalidations,
                mem_reads,
                mem_writes,
                slot_transitions,
                instructions,
            } => Some(IntervalSample {
                cycle,
                span_cycles,
                ways: Vec::new(),
                active_fraction,
                l2_hits,
                l2_misses,
                l2_writebacks: 0,
                refreshes,
                invalidations,
                mem_reads,
                mem_writes,
                slot_transitions,
                instructions,
            }),
            _ => None,
        })
        .collect()
}

fn module_timelines(events: &[TraceEvent]) -> Vec<ModuleTimeline> {
    let mut modules: Vec<ModuleTimeline> = Vec::new();
    for ev in events {
        let &TraceEvent::ReconfigDecision {
            cycle,
            module,
            applied_ways,
            non_lru,
            deferred,
            ..
        } = ev
        else {
            continue;
        };
        let entry = match modules.iter_mut().find(|m| m.module == module) {
            Some(m) => m,
            None => {
                modules.push(ModuleTimeline {
                    module,
                    timeline: Vec::new(),
                    decisions: 0,
                    flips: 0,
                    deferred: 0,
                    non_lru: 0,
                    mean_ways: 0.0,
                });
                modules.last_mut().expect("just pushed")
            }
        };
        entry.decisions += 1;
        entry.deferred += u64::from(deferred);
        entry.non_lru += u64::from(non_lru);
        entry.mean_ways += f64::from(applied_ways);
        match entry.timeline.last() {
            Some(last) if last.ways == applied_ways => {}
            Some(_) => {
                entry.flips += 1;
                entry.timeline.push(WayStep {
                    cycle,
                    ways: applied_ways,
                });
            }
            None => entry.timeline.push(WayStep {
                cycle,
                ways: applied_ways,
            }),
        }
    }
    for m in &mut modules {
        m.mean_ways /= m.decisions.max(1) as f64;
    }
    modules.sort_by_key(|m| m.module);
    modules
}

/// Sliding-window thrash detection over each module's decision sequence:
/// the worst window of `thrash_w` consecutive decisions with at least
/// `thrash_k` applied-way flips.
fn detect_thrash(events: &[TraceEvent], params: &AnalyzerParams) -> Vec<ThrashFinding> {
    // Per module: (cycle, applied_ways) in trace order.
    let mut series: Vec<(u16, Vec<(u64, u8)>)> = Vec::new();
    for ev in events {
        let &TraceEvent::ReconfigDecision {
            cycle,
            module,
            applied_ways,
            ..
        } = ev
        else {
            continue;
        };
        match series.iter_mut().find(|(m, _)| *m == module) {
            Some((_, s)) => s.push((cycle, applied_ways)),
            None => series.push((module, vec![(cycle, applied_ways)])),
        }
    }
    let mut findings = Vec::new();
    for (module, s) in &series {
        // flips[i] = 1 iff decision i changed the way count.
        let flips: Vec<u32> = s.windows(2).map(|w| u32::from(w[0].1 != w[1].1)).collect();
        let mut worst: Option<ThrashFinding> = None;
        // A window of W decisions spans W-1 potential flips.
        let span = params.thrash_w.saturating_sub(1).max(1);
        for start in 0..flips.len() {
            let end = (start + span).min(flips.len());
            let count: u32 = flips[start..end].iter().sum();
            if count >= params.thrash_k && worst.is_none_or(|w| count > w.flips) {
                worst = Some(ThrashFinding {
                    module: *module,
                    flips: count,
                    window: params.thrash_w,
                    end_cycle: s[end].0,
                });
            }
        }
        findings.extend(worst);
    }
    findings.sort_by_key(|f| (std::cmp::Reverse(f.flips), f.module));
    findings
}

fn refresh_summary(
    events: &[TraceEvent],
    intervals: &[IntervalSample],
    params: &AnalyzerParams,
) -> RefreshSummary {
    let mut out = RefreshSummary::default();
    for ev in events {
        let &TraceEvent::RefreshBatch {
            refreshes,
            invalidations,
            pending,
            ..
        } = ev
        else {
            continue;
        };
        out.batches += 1;
        out.refreshes += refreshes;
        out.invalidations += invalidations;
        out.max_pending = out.max_pending.max(pending);
    }
    let series: Vec<f64> = intervals.iter().map(|s| s.refreshes as f64).collect();
    let (mean, std) = mean_std(&series);
    if std > 0.0 {
        for s in intervals {
            let z = (s.refreshes as f64 - mean) / std;
            if z >= params.sigma {
                out.storms.push(RefreshStorm {
                    cycle: s.cycle,
                    refreshes: s.refreshes,
                    z,
                });
            }
        }
    }
    out
}

fn energy_attribution(
    intervals: &[IntervalSample],
    params: &AnalyzerParams,
) -> Option<EnergyAttribution> {
    if intervals.is_empty() {
        return None;
    }
    let ep = EnergyParams::for_l2_capacity(params.l2_capacity);
    let mut breakdown = EnergyBreakdown::default();
    let mut totals = Vec::with_capacity(intervals.len());
    for s in intervals {
        let b = EnergyBreakdown::compute(
            &ep,
            &EnergyInputs {
                seconds: s.span_cycles as f64 / params.clock_hz,
                active_fraction: s.active_fraction,
                l2_hits: s.l2_hits,
                l2_misses: s.l2_misses,
                refreshes: s.refreshes,
                mem_accesses: s.mem_reads + s.mem_writes,
                block_transitions: s.slot_transitions,
            },
        );
        totals.push(b.total());
        breakdown.add(&b);
    }
    let (mean, std) = mean_std(&totals);
    let mut outliers = Vec::new();
    if std > 0.0 {
        for (s, &t) in intervals.iter().zip(&totals) {
            let z = (t - mean) / std;
            if z.abs() >= params.sigma {
                outliers.push(EnergyOutlier {
                    cycle: s.cycle,
                    total_j: t,
                    z,
                });
            }
        }
    }
    Some(EnergyAttribution {
        intervals: intervals.len() as u64,
        total_j: breakdown.total(),
        mean_interval_j: mean,
        breakdown,
        outliers,
    })
}

fn span_aggregation(events: &[TraceEvent]) -> Vec<SpanAgg> {
    let mut aggs: Vec<SpanAgg> = Vec::new();
    for ev in events {
        let TraceEvent::Span { name, dur_us, .. } = ev else {
            continue;
        };
        let entry = match aggs.iter_mut().find(|a| &a.name == name) {
            Some(a) => a,
            None => {
                aggs.push(SpanAgg {
                    name: name.clone(),
                    count: 0,
                    total_us: 0.0,
                    mean_us: 0.0,
                    max_us: 0.0,
                });
                aggs.last_mut().expect("just pushed")
            }
        };
        entry.count += 1;
        entry.total_us += dur_us;
        entry.max_us = entry.max_us.max(*dur_us);
    }
    for a in &mut aggs {
        a.mean_us = a.total_us / a.count.max(1) as f64;
    }
    aggs.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    aggs
}

/// Runs every analysis over one event log. `intervals` is the interval
/// series to use for refresh-storm and energy analysis; pass the
/// `--interval-log` contents when available, otherwise
/// [`intervals_from_events`].
pub fn analyze(
    events: &[TraceEvent],
    intervals: &[IntervalSample],
    params: &AnalyzerParams,
) -> Analysis {
    let mut event_counts = Vec::new();
    for kind in esteem_trace::EventKind::ALL {
        let n = events.iter().filter(|e| e.kind() == kind).count() as u64;
        if n > 0 {
            event_counts.push((kind.name().to_owned(), n));
        }
    }
    let (mut applies, mut writebacks, mut discards, mut transitions) = (0, 0, 0, 0);
    let mut runcache = RunCacheSummary::default();
    let mut bank = BankSummary::default();
    for ev in events {
        match *ev {
            TraceEvent::ReconfigApply {
                slot_transitions,
                writebacks: wb,
                discards: d,
                ..
            } => {
                applies += 1;
                writebacks += wb;
                discards += d;
                transitions += slot_transitions;
            }
            TraceEvent::RunCache { hit, .. } => {
                runcache.lookups += 1;
                if hit {
                    runcache.hits += 1;
                } else {
                    runcache.misses += 1;
                }
            }
            TraceEvent::BankWindow {
                mean_wait,
                utilization,
                ..
            } => {
                bank.windows += 1;
                bank.mean_wait_cycles += mean_wait;
                bank.mean_utilization += utilization;
            }
            _ => {}
        }
    }
    if bank.windows > 0 {
        bank.mean_wait_cycles /= bank.windows as f64;
        bank.mean_utilization /= bank.windows as f64;
    }
    Analysis {
        params: *params,
        events: events.len() as u64,
        event_counts,
        modules: module_timelines(events),
        reconfig_applies: applies,
        reconfig_writebacks: writebacks,
        reconfig_discards: discards,
        reconfig_slot_transitions: transitions,
        thrash: detect_thrash(events, params),
        refresh: refresh_summary(events, intervals, params),
        bank,
        runcache,
        energy: energy_attribution(intervals, params),
        spans: span_aggregation(events),
    }
}

/// Human-readable report (the binary's default output).
pub fn render(a: &Analysis) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let counts: Vec<String> = a
        .event_counts
        .iter()
        .map(|(k, n)| format!("{k}={n}"))
        .collect();
    let _ = writeln!(s, "events: {} ({})", a.events, counts.join(", "));
    if !a.modules.is_empty() {
        let _ = writeln!(s, "\nway occupancy (per module):");
        for m in &a.modules {
            let last = m.timeline.last().map_or(0, |w| w.ways);
            let _ = writeln!(
                s,
                "  module {:>2}: {:>4} decisions, {:>3} flips, mean {:.2} ways, \
                 last {:>2}, deferred {}, non-LRU-guarded {}",
                m.module, m.decisions, m.flips, m.mean_ways, last, m.deferred, m.non_lru
            );
        }
        let _ = writeln!(
            s,
            "reconfig churn: {} applies, {} writebacks, {} discards, {} slot transitions",
            a.reconfig_applies,
            a.reconfig_writebacks,
            a.reconfig_discards,
            a.reconfig_slot_transitions
        );
    }
    if a.refresh.batches > 0 {
        let _ = writeln!(
            s,
            "\nrefresh: {} batches, {} refreshes, {} invalidations, max backlog {}",
            a.refresh.batches, a.refresh.refreshes, a.refresh.invalidations, a.refresh.max_pending
        );
    }
    if a.bank.windows > 0 {
        let _ = writeln!(
            s,
            "bank contention: {} windows, mean wait {:.3} cycles, utilization {:.3}",
            a.bank.windows, a.bank.mean_wait_cycles, a.bank.mean_utilization
        );
    }
    if a.runcache.lookups > 0 {
        let _ = writeln!(
            s,
            "run cache: {} lookups ({} hits, {} misses)",
            a.runcache.lookups, a.runcache.hits, a.runcache.misses
        );
    }
    if let Some(e) = &a.energy {
        let b = &e.breakdown;
        let _ = writeln!(
            s,
            "\nenergy over {} intervals: {:.4} J = L2(leak {:.4} + dyn {:.4} + refresh {:.4}) \
             + MM(leak {:.4} + dyn {:.4}) + algo {:.6}",
            e.intervals,
            e.total_j,
            b.l2_leakage,
            b.l2_dynamic,
            b.l2_refresh,
            b.mm_leakage,
            b.mm_dynamic,
            b.algo
        );
    }
    if !a.spans.is_empty() {
        let _ = writeln!(s, "\nself-profile (wall clock):");
        for sp in &a.spans {
            let _ = writeln!(
                s,
                "  {:<24} {:>6} calls  total {:>10.1} us  mean {:>9.1} us  max {:>9.1} us",
                sp.name, sp.count, sp.total_us, sp.mean_us, sp.max_us
            );
        }
    }
    let _ = writeln!(s, "\nanomalies:");
    let mut any = false;
    for t in &a.thrash {
        any = true;
        let _ = writeln!(
            s,
            "  way thrash: module {} flipped {} times within {} intervals (ending cycle {})",
            t.module, t.flips, t.window, t.end_cycle
        );
    }
    for st in &a.refresh.storms {
        any = true;
        let _ = writeln!(
            s,
            "  refresh storm: cycle {} refreshed {} lines (z = {:.2})",
            st.cycle, st.refreshes, st.z
        );
    }
    if let Some(e) = &a.energy {
        for o in &e.outliers {
            any = true;
            let _ = writeln!(
                s,
                "  energy outlier: cycle {} used {:.6} J (z = {:+.2})",
                o.cycle, o.total_j, o.z
            );
        }
    }
    if !any {
        let _ = writeln!(s, "  none");
    }
    s
}

/// Summary of a validated Chrome trace-event JSON export.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ChromeSummary {
    /// Non-metadata events.
    pub events: u64,
    /// Metadata records (`ph == "M"`).
    pub metadata: u64,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: u64,
}

/// Validates a Chrome trace-event JSON document: it must parse, carry a
/// `traceEvents` array, and every track's timestamps must be monotonic
/// non-decreasing in file order (what Perfetto relies on).
pub fn validate_chrome_trace(json: &str) -> Result<ChromeSummary, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let root = doc.as_map().ok_or("root is not an object")?;
    let events = map_get(root, "traceEvents")
        .map_err(|e| e.to_string())?
        .as_seq()
        .ok_or("traceEvents is not an array")?;
    let num = |v: &Value| -> Result<f64, String> {
        match *v {
            Value::I64(i) => Ok(i as f64),
            Value::U64(u) => Ok(u as f64),
            Value::F64(f) => Ok(f),
            _ => Err("expected a number".into()),
        }
    };
    let mut summary = ChromeSummary::default();
    // (pid, tid) -> last ts seen, in file order.
    let mut tracks: Vec<((i64, i64), f64)> = Vec::new();
    for (idx, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{idx}]: {msg}");
        let m = ev.as_map().ok_or_else(|| at("not an object"))?;
        let ph = map_get(m, "ph")
            .map_err(|e| at(&e.to_string()))?
            .as_str()
            .ok_or_else(|| at("ph is not a string"))?;
        if ph == "M" {
            summary.metadata += 1;
            continue;
        }
        summary.events += 1;
        let pid =
            num(map_get(m, "pid").map_err(|e| at(&e.to_string()))?).map_err(|e| at(&e))? as i64;
        let tid =
            num(map_get(m, "tid").map_err(|e| at(&e.to_string()))?).map_err(|e| at(&e))? as i64;
        let ts = num(map_get(m, "ts").map_err(|e| at(&e.to_string()))?).map_err(|e| at(&e))?;
        match tracks.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(at(&format!(
                        "track ({pid}, {tid}) timestamps not monotonic: {ts} after {last}"
                    )));
                }
                *last = ts;
            }
            None => tracks.push(((pid, tid), ts)),
        }
    }
    summary.tracks = tracks.len() as u64;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(cycle: u64, module: u16, ways: u8) -> TraceEvent {
        TraceEvent::ReconfigDecision {
            cycle,
            module,
            prev_ways: 16,
            want_ways: ways,
            applied_ways: ways,
            total_hits: 100,
            anomalies: 0,
            non_lru: false,
            deferred: false,
            valid_lines: 64,
        }
    }

    fn interval(cycle: u64, refreshes: u64, hits: u64) -> IntervalSample {
        IntervalSample {
            cycle,
            span_cycles: 1_000_000,
            ways: vec![16],
            active_fraction: 1.0,
            l2_hits: hits,
            l2_misses: 10,
            l2_writebacks: 1,
            refreshes,
            invalidations: 0,
            mem_reads: 5,
            mem_writes: 5,
            slot_transitions: 0,
            instructions: 1_000_000,
        }
    }

    #[test]
    fn timelines_track_flips_and_means() {
        let events = [
            decision(10, 0, 16),
            decision(20, 0, 8),
            decision(30, 0, 8),
            decision(40, 0, 12),
            decision(10, 1, 4),
        ];
        let modules = module_timelines(&events);
        assert_eq!(modules.len(), 2);
        let m0 = &modules[0];
        assert_eq!((m0.module, m0.decisions, m0.flips), (0, 4, 2));
        assert_eq!(
            m0.timeline,
            vec![
                WayStep {
                    cycle: 10,
                    ways: 16
                },
                WayStep { cycle: 20, ways: 8 },
                WayStep {
                    cycle: 40,
                    ways: 12
                },
            ]
        );
        assert!((m0.mean_ways - 11.0).abs() < 1e-12);
        assert_eq!(modules[1].module, 1);
    }

    #[test]
    fn thrash_detected_only_above_threshold() {
        // Module 0 oscillates every interval; module 1 is stable.
        let mut events = Vec::new();
        for i in 0..10u64 {
            let ways = if i % 2 == 0 { 4 } else { 12 };
            events.push(decision(i * 100, 0, ways));
            events.push(decision(i * 100, 1, 8));
        }
        let params = AnalyzerParams::default();
        let findings = detect_thrash(&events, &params);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].module, 0);
        assert!(findings[0].flips >= params.thrash_k);

        // A stricter K silences it.
        let strict = AnalyzerParams {
            thrash_k: 20,
            ..params
        };
        assert!(detect_thrash(&events, &strict).is_empty());
    }

    #[test]
    fn refresh_storm_flags_the_spike() {
        let mut intervals: Vec<IntervalSample> =
            (0..20).map(|i| interval(i * 1_000_000, 1000, 50)).collect();
        intervals.push(interval(20_000_000, 50_000, 50));
        let summary = refresh_summary(&[], &intervals, &AnalyzerParams::default());
        assert_eq!(summary.storms.len(), 1);
        assert_eq!(summary.storms[0].cycle, 20_000_000);
        assert!(summary.storms[0].z > 3.0);
    }

    #[test]
    fn energy_attribution_finds_outliers_and_sums_classes() {
        let mut intervals: Vec<IntervalSample> =
            (0..20).map(|i| interval(i * 1_000_000, 1000, 50)).collect();
        // One interval with a huge memory-traffic spike.
        let mut hot = interval(20_000_000, 1000, 50);
        hot.mem_reads = 2_000_000;
        intervals.push(hot);
        let e = energy_attribution(&intervals, &AnalyzerParams::default()).unwrap();
        assert_eq!(e.intervals, 21);
        assert!((e.total_j - e.breakdown.total()).abs() < 1e-12);
        assert_eq!(e.outliers.len(), 1);
        assert_eq!(e.outliers[0].cycle, 20_000_000);
        assert!(e.outliers[0].z > 3.0);
        // Uniform series -> no outliers.
        let flat = energy_attribution(&intervals[..20], &AnalyzerParams::default()).unwrap();
        assert!(flat.outliers.is_empty());
    }

    #[test]
    fn span_aggregation_sorts_by_total() {
        let events = [
            TraceEvent::Span {
                name: "a".into(),
                start_us: 0.0,
                dur_us: 1.0,
            },
            TraceEvent::Span {
                name: "b".into(),
                start_us: 0.0,
                dur_us: 10.0,
            },
            TraceEvent::Span {
                name: "a".into(),
                start_us: 2.0,
                dur_us: 3.0,
            },
        ];
        let aggs = span_aggregation(&events);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].name, "b");
        assert_eq!(aggs[1].count, 2);
        assert!((aggs[1].total_us - 4.0).abs() < 1e-12);
        assert!((aggs[1].mean_us - 2.0).abs() < 1e-12);
        assert!((aggs[1].max_us - 3.0).abs() < 1e-12);
    }

    #[test]
    fn analyze_end_to_end_counts_and_renders() {
        let mut events = vec![
            decision(10_000_000, 0, 8),
            TraceEvent::ReconfigApply {
                cycle: 10_000_000,
                slot_transitions: 16,
                writebacks: 3,
                discards: 1,
            },
            TraceEvent::RefreshBatch {
                cycle: 100_000,
                refreshes: 500,
                invalidations: 2,
                pending: 40,
            },
            TraceEvent::BankWindow {
                cycle: 100_000,
                refreshes: 500,
                mean_wait: 1.5,
                utilization: 0.25,
            },
            TraceEvent::RunCache {
                fingerprint: 7,
                hit: true,
            },
            TraceEvent::RunCache {
                fingerprint: 8,
                hit: false,
            },
            TraceEvent::Span {
                name: "sim.run".into(),
                start_us: 0.0,
                dur_us: 100.0,
            },
        ];
        events.push(TraceEvent::Interval {
            cycle: 10_000_000,
            span_cycles: 10_000_000,
            active_fraction: 0.5,
            l2_hits: 100,
            l2_misses: 10,
            refreshes: 500,
            invalidations: 2,
            mem_reads: 10,
            mem_writes: 5,
            slot_transitions: 16,
            instructions: 9_000_000,
        });
        let intervals = intervals_from_events(&events);
        assert_eq!(intervals.len(), 1);
        assert_eq!(intervals[0].refreshes, 500);
        let a = analyze(&events, &intervals, &AnalyzerParams::default());
        assert_eq!(a.events, 8);
        assert_eq!(a.reconfig_applies, 1);
        assert_eq!(a.reconfig_writebacks, 3);
        assert_eq!(a.refresh.batches, 1);
        assert_eq!(a.runcache.hits, 1);
        assert_eq!(a.runcache.misses, 1);
        assert_eq!(a.bank.windows, 1);
        let e = a.energy.as_ref().unwrap();
        assert!(e.total_j > 0.0);
        let text = render(&a);
        assert!(text.contains("module  0"), "got:\n{text}");
        assert!(text.contains("run cache: 2 lookups"), "got:\n{text}");
        assert!(text.contains("sim.run"), "got:\n{text}");
        assert!(text.contains("none"), "got:\n{text}");
        // The analysis serializes (for --json).
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("\"events\":8"));
    }

    #[test]
    fn chrome_validation_accepts_exporter_output_and_rejects_regressions() {
        let events = [
            TraceEvent::RefreshBatch {
                cycle: 2_000,
                refreshes: 10,
                invalidations: 0,
                pending: 0,
            },
            TraceEvent::RefreshBatch {
                cycle: 1_000,
                refreshes: 5,
                invalidations: 0,
                pending: 0,
            },
        ];
        let json = esteem_trace::export::chrome_trace(&events);
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.events, 2);
        assert!(summary.metadata > 0);
        assert_eq!(summary.tracks, 1);

        // Hand-built non-monotonic track fails.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"i","pid":0,"tid":1,"ts":5.0,"s":"t"},
            {"name":"b","ph":"i","pid":0,"tid":1,"ts":4.0,"s":"t"}]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("not monotonic"), "got: {err}");
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }
}
