//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §5 for the experiment index).
//!
//! The `esteem-repro` binary is the entry point:
//!
//! ```text
//! esteem-repro [--scale quick|default|paper] [--threads N] [--json DIR] <experiment>
//!   experiments: table1 table2 overhead fig2 fig3 fig4 fig5 fig6 table3 calib all
//! ```
//!
//! Every experiment prints the same rows/series the paper reports and can
//! persist machine-readable JSON next to the text output. Runs are
//! deterministic; `--scale` trades simulation length for fidelity
//! (`paper` = the full 400 M instructions per core).

pub mod csv;
pub mod experiments;
pub mod results;
pub mod runcache;
pub mod scale;
pub mod tablefmt;
pub mod traceanalyze;

pub use scale::Scale;

use esteem_core::{AlgoParams, SystemConfig, Technique};
use esteem_edram::RetentionSpec;

/// Builds the paper's single-core config for a technique at a scale and
/// retention period.
pub fn single_core_cfg(technique: Technique, scale: Scale, retention_us: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_single_core(technique);
    cfg.retention = RetentionSpec::from_micros(retention_us, 2.0);
    cfg.sim_instructions = scale.instructions();
    cfg.warmup_cycles = scale.warmup_cycles();
    cfg
}

/// Builds the paper's dual-core config for a technique at a scale and
/// retention period.
pub fn dual_core_cfg(technique: Technique, scale: Scale, retention_us: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_dual_core(technique);
    cfg.retention = RetentionSpec::from_micros(retention_us, 2.0);
    cfg.sim_instructions = scale.instructions();
    cfg.warmup_cycles = scale.warmup_cycles();
    cfg
}

/// The paper's default ESTEEM parameters for a core count (§7).
pub fn default_algo(cores: u32) -> AlgoParams {
    if cores <= 1 {
        AlgoParams::paper_single_core()
    } else {
        AlgoParams::paper_dual_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = single_core_cfg(Technique::Baseline, Scale::Quick, 40.0);
        assert_eq!(c.retention.period_cycles, 80_000);
        assert_eq!(c.sim_instructions, Scale::Quick.instructions());
        let d = dual_core_cfg(Technique::Rpv, Scale::Quick, 50.0);
        assert_eq!(d.cores, 2);
        assert_eq!(default_algo(1).modules, 8);
        assert_eq!(default_algo(2).modules, 16);
    }
}
