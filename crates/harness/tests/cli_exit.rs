//! CLI error behaviour: invalid flag values must produce a one-line
//! error on stderr and a nonzero exit code — never a panic backtrace.

use std::process::{Command, Output};

fn run_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_esteem-sim"))
        .args(args)
        .output()
        .expect("spawn esteem-sim")
}

fn run_repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_esteem-repro"))
        .args(args)
        .output()
        .expect("spawn esteem-repro")
}

fn assert_clean_failure(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "expected nonzero exit, got {:?} (stderr: {stderr})",
        out.status
    );
    assert!(
        !stderr.contains("panicked at"),
        "stderr must not contain a panic backtrace: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr should mention `{needle}`: {stderr}"
    );
}

#[test]
fn sim_rejects_zero_static_ways() {
    let out = run_sim(&[
        "--technique",
        "static",
        "--ways",
        "0",
        "--instructions",
        "1000",
        "gamess",
    ]);
    assert_clean_failure(&out, "static way count");
}

#[test]
fn sim_rejects_zero_a_min() {
    let out = run_sim(&["--a-min", "0", "--instructions", "1000", "gamess"]);
    assert_clean_failure(&out, "A_min");
}

#[test]
fn sim_rejects_zero_retention() {
    let out = run_sim(&["--retention", "0", "--instructions", "1000", "gamess"]);
    assert_clean_failure(&out, "retention");
}

#[test]
fn sim_rejects_zero_instructions() {
    let out = run_sim(&["--instructions", "0", "gamess"]);
    assert_clean_failure(&out, "sim_instructions");
}

#[test]
fn sim_rejects_bad_alpha() {
    let out = run_sim(&["--alpha", "1.5", "--instructions", "1000", "gamess"]);
    assert_clean_failure(&out, "alpha");
}

#[test]
fn sim_rejects_indivisible_modules() {
    let out = run_sim(&["--modules", "3", "--instructions", "1000", "gamess"]);
    assert_clean_failure(&out, "modules");
}

#[test]
fn sim_rejects_unknown_workload_and_flag() {
    assert_clean_failure(&run_sim(&["no-such-benchmark"]), "unknown workload");
    assert_clean_failure(&run_sim(&["--frobnicate", "gamess"]), "unknown flag");
}

#[test]
fn sim_rejects_unparsable_number() {
    let out = run_sim(&["--instructions", "many", "gamess"]);
    assert_clean_failure(&out, "invalid digit");
}

#[test]
fn repro_rejects_bad_values() {
    assert_clean_failure(&run_repro(&["--threads", "0", "table1"]), "--threads");
    assert_clean_failure(&run_repro(&["--scale", "huge", "table1"]), "bad scale");
    assert_clean_failure(&run_repro(&["no-such-experiment"]), "unknown experiment");
}

#[test]
fn valid_run_still_succeeds() {
    let out = run_sim(&[
        "--technique",
        "baseline",
        "--instructions",
        "200000",
        "gamess",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
