//! End-to-end determinism: figure rows must be bit-identical whether the
//! sweep runs on one thread or many, and whether reports come from the
//! run cache or a fresh simulation.

use std::sync::Mutex;

use esteem_core::{Simulator, Technique};
use esteem_harness::experiments::figs;
use esteem_harness::{dual_core_cfg, runcache, single_core_cfg, Scale};
use esteem_workloads::{benchmark_by_name, mixes::mix_by_acronym};

/// The run cache is process-global; serialize the tests that clear it.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn fig_rows_identical_one_thread_vs_many() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let subset = Some(&["gamess", "milc"][..]);
    runcache::clear();
    let t1 = figs::run_single_core(Scale::Bench, 50.0, 1, subset);
    runcache::clear(); // force the second sweep to actually re-simulate
    let t4 = figs::run_single_core(Scale::Bench, 50.0, 4, subset);
    // FigRow derives PartialEq over f64 fields: this demands bit-identical
    // metrics, not just close ones.
    assert_eq!(t1.rows, t4.rows);
    assert_eq!(t1.avg, t4.avg);
}

/// The simulator's `--threads` knob must never change a report: the
/// worker-pool refill merges at a barrier before any core executes, so the
/// serialized report bytes are identical at any thread count.
#[test]
fn report_bytes_identical_at_any_thread_count() {
    // Any dual mix exercises the pool (single-core runs are always serial).
    let m = mix_by_acronym("GcGa").expect("Table 1 mix");
    let profiles = [m.a, m.b];
    let run = |threads: usize| {
        let cfg = dual_core_cfg(Technique::Rpv, Scale::Bench, 50.0);
        let report = Simulator::new(cfg, &profiles, "GcGa")
            .with_threads(threads)
            .run();
        serde_json::to_string(&report).unwrap()
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "2 threads changed the report bytes");
    assert_eq!(serial, run(3), "3 threads changed the report bytes");
}

#[test]
fn cached_sweep_identical_to_fresh_simulation() {
    let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    runcache::clear();
    let p = benchmark_by_name("hmmer").unwrap();
    let cfg = single_core_cfg(Technique::Rpv, Scale::Bench, 50.0);
    let fresh = Simulator::new(cfg.clone(), std::slice::from_ref(&p), "hmmer").run();
    let miss = runcache::run_cached(cfg.clone(), std::slice::from_ref(&p), "hmmer");
    let hit = runcache::run_cached(cfg, std::slice::from_ref(&p), "hmmer");
    let (hits, misses) = runcache::stats();
    assert_eq!(misses, 1, "first lookup simulates");
    assert!(hits >= 1, "second lookup must be served from the cache");
    let json = |r| serde_json::to_string(r).unwrap();
    assert_eq!(json(&fresh), json(&miss));
    assert_eq!(json(&fresh), json(&hit));
}

#[test]
fn disk_persistence_round_trips() {
    // `ESTEEM_RUN_CACHE_DIR` is read once per process, so this exercises
    // the disk layer directly through a child environment instead: write
    // via the public API of the in-memory layer, then verify the
    // fingerprint is stable so a persisted entry from a previous process
    // would be addressable.
    let p = benchmark_by_name("gamess").unwrap();
    let cfg = single_core_cfg(Technique::Baseline, Scale::Bench, 50.0);
    let a = runcache::fingerprint(&cfg, std::slice::from_ref(&p), "gamess");
    let b = runcache::fingerprint(&cfg.clone(), std::slice::from_ref(&p), "gamess");
    assert_eq!(a, b, "fingerprints must be stable across computations");
}
