//! End-to-end test of the tracing pipeline: `esteem-sim --trace` must
//! produce (a) a valid Chrome trace-event JSON export with nonzero event
//! counts and monotonic per-track timestamps, and (b) a compact JSONL
//! log that the `esteem-trace` analyzer turns into a report with
//! reconfiguration, refresh and energy sections.

use std::path::Path;
use std::process::Command;

use serde::{map_get, Value};

fn run_sim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_esteem-sim"))
        .args(args)
        .output()
        .expect("esteem-sim runs")
}

fn run_analyzer(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_esteem-trace"))
        .args(args)
        .output()
        .expect("esteem-trace runs")
}

fn sim_args<'a>(trace: &'a str, log: Option<&'a str>) -> Vec<&'a str> {
    let mut args = vec![
        "--technique",
        "esteem",
        "--instructions",
        "1500000",
        "--interval",
        "500000",
        "--trace",
        trace,
    ];
    if let Some(log) = log {
        args.extend(["--interval-log", log]);
    }
    args.push("gamess");
    args
}

fn as_f64(v: &Value) -> f64 {
    match *v {
        Value::I64(i) => i as f64,
        Value::U64(u) => u as f64,
        Value::F64(f) => f,
        ref other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn chrome_export_is_valid_and_monotonic_per_track() {
    let dir = std::env::temp_dir().join(format!("esteem-trace-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.json");

    let out = run_sim(&sim_args(trace.to_str().unwrap(), None));
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Independent structural check (not via the analyzer): parse the
    // document and verify counts and per-track ts monotonicity.
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc: Value = serde_json::from_str(&text).expect("valid JSON");
    let root = doc.as_map().expect("object root");
    let events = map_get(root, "traceEvents")
        .expect("traceEvents present")
        .as_seq()
        .expect("traceEvents is an array");
    let mut tracks: Vec<((f64, f64), f64)> = Vec::new();
    let mut real_events = 0u64;
    for ev in events {
        let m = ev.as_map().expect("event is an object");
        let ph = map_get(m, "ph").unwrap().as_str().expect("ph string");
        if ph == "M" {
            continue;
        }
        real_events += 1;
        let key = (
            as_f64(map_get(m, "pid").unwrap()),
            as_f64(map_get(m, "tid").unwrap()),
        );
        let ts = as_f64(map_get(m, "ts").unwrap());
        match tracks.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                assert!(
                    ts >= *last,
                    "track {key:?}: ts {ts} after {last} (must be monotonic)"
                );
                *last = ts;
            }
            None => tracks.push((key, ts)),
        }
    }
    assert!(real_events > 0, "trace must carry events");
    // An ESTEEM run emits on the reconfig, refresh, bank and interval
    // tracks at least.
    assert!(tracks.len() >= 4, "expected >= 4 tracks, got {tracks:?}");

    // The analyzer's Chrome validation mode agrees and exits 0.
    let out = run_analyzer(&["--events", trace.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid Chrome trace"), "got: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyzer_reports_reconfig_refresh_and_energy_from_jsonl() {
    let dir = std::env::temp_dir().join(format!("esteem-trace-jsonl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("run.jsonl");
    let ilog = dir.join("intervals.jsonl");

    let out = run_sim(&sim_args(
        trace.to_str().unwrap(),
        Some(ilog.to_str().unwrap()),
    ));
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every ESTEEM interval produces at least one reconfig decision:
    // 1.5M instructions at 500k-cycle intervals crosses >= 2 boundaries
    // with 8 modules each.
    let text = std::fs::read_to_string(&trace).unwrap();
    let decisions = text
        .lines()
        .filter(|l| l.contains("\"ReconfigDecision\""))
        .count();
    assert!(decisions >= 16, "expected >= 16 decisions, got {decisions}");

    let human = run_analyzer(&[
        "--events",
        trace.to_str().unwrap(),
        "--interval-log",
        ilog.to_str().unwrap(),
    ]);
    assert!(
        human.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&human.stderr)
    );
    let stdout = String::from_utf8_lossy(&human.stdout);
    for needle in [
        "way occupancy",
        "reconfig churn",
        "refresh:",
        "energy over",
        "anomalies:",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    // JSON mode emits a machine-readable analysis with the same facts.
    let json = run_analyzer(&[
        "--events",
        trace.to_str().unwrap(),
        "--interval-log",
        ilog.to_str().unwrap(),
        "--json",
    ]);
    assert!(json.status.success());
    let doc: Value = serde_json::from_str(&String::from_utf8_lossy(&json.stdout))
        .expect("analysis is valid JSON");
    let root = doc.as_map().expect("object");
    let modules = map_get(root, "modules").unwrap().as_seq().unwrap();
    assert_eq!(modules.len(), 8, "one timeline per module");
    let energy = map_get(root, "energy").unwrap().as_map().expect("energy");
    assert!(as_f64(map_get(energy, "total_j").unwrap()) > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyzer_rejects_missing_and_invalid_input() {
    let out = run_analyzer(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--events"));

    let dir = std::env::temp_dir().join(format!("esteem-trace-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "not json").unwrap();
    let out = run_analyzer(&["--events", bad.to_str().unwrap()]);
    assert!(!out.status.success());

    assert!(!Path::new("/nonexistent/trace.jsonl").exists());
    let out = run_analyzer(&["--events", "/nonexistent/trace.jsonl"]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}
