//! Golden-report guard: the exact `SimReport` JSON for the Table 3
//! "Default" configuration, captured before the controller/stats
//! refactor. Any byte-level drift in the report (field order, counter
//! values, float formatting) breaks the run-cache fingerprint contract,
//! so this test compares the serialized report against the committed
//! golden file verbatim.
//!
//! Regenerate (only when an intentional behavior change is made — bump
//! `runcache::FINGERPRINT_VERSION` in the same commit!) with:
//!
//! ```text
//! ESTEEM_BLESS=1 cargo test -p esteem-harness --test golden_report
//! ```

use esteem_core::{Simulator, SystemConfig, Technique};
use esteem_harness::{default_algo, single_core_cfg, Scale};
use esteem_workloads::benchmark_by_name;

/// The Table 3 "Default" row's pair of runs at bench scale (the same
/// config construction as `experiments::table3::run_cell`).
fn table3_default_cfg(technique: Technique) -> SystemConfig {
    single_core_cfg(technique, Scale::Bench, 50.0)
}

fn run(technique: Technique) -> String {
    let p = benchmark_by_name("gamess").unwrap();
    let report = Simulator::new(
        table3_default_cfg(technique),
        std::slice::from_ref(&p),
        "gamess",
    )
    .run();
    serde_json::to_string_pretty(&report).expect("report serializes")
}

fn check_or_bless(file: &str, json: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("ESTEEM_BLESS").is_some() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
    assert_eq!(
        json, golden,
        "SimReport JSON drifted from the pre-refactor golden ({file}); \
         if intentional, re-bless and bump FINGERPRINT_VERSION"
    );
}

#[test]
fn table3_default_esteem_report_matches_golden() {
    let mut algo = default_algo(1);
    algo.interval_cycles = Scale::Bench.interval_cycles();
    check_or_bless(
        "simreport_table3_default_esteem.json",
        &run(Technique::Esteem(algo)),
    );
}

#[test]
fn table3_default_baseline_report_matches_golden() {
    check_or_bless(
        "simreport_table3_default_baseline.json",
        &run(Technique::Baseline),
    );
}

/// Tracing is a strictly read-only tap: running the same configuration
/// with a full-filter tracer attached must reproduce the golden report
/// byte for byte (and therefore the same run-cache fingerprint).
#[test]
fn tracing_enabled_report_matches_golden_bytes() {
    use esteem_trace::{TraceFilter, Tracer};

    let mut algo = default_algo(1);
    algo.interval_cycles = Scale::Bench.interval_cycles();
    let p = benchmark_by_name("gamess").unwrap();
    let tracer = Tracer::ring(1 << 20, TraceFilter::all());
    let report = Simulator::new(
        table3_default_cfg(Technique::Esteem(algo)),
        std::slice::from_ref(&p),
        "gamess",
    )
    .with_tracer(tracer.clone())
    .run();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    assert!(!tracer.drain().is_empty(), "tracer captured events");
    if std::env::var_os("ESTEEM_BLESS").is_some() {
        return; // the golden is blessed by the untraced test above
    }
    check_or_bless("simreport_table3_default_esteem.json", &json);
}
