//! End-to-end test of `esteem-sim --interval-log`: the binary must emit
//! one JSONL record per observation interval with per-module way counts
//! and refresh/hit counters.

use std::process::Command;

use serde::Value;

fn run_sim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_esteem-sim"))
        .args(args)
        .output()
        .expect("esteem-sim runs")
}

fn read_records(path: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("interval log exists");
    text.lines()
        .map(|l| serde_json::from_str(l).expect("each line is valid JSON"))
        .collect()
}

/// The vendored JSON parser yields `I64` for magnitudes up to `i64::MAX`
/// and `U64` above; fold both back to the counter's natural type.
fn as_u64(v: &Value) -> u64 {
    match *v {
        Value::I64(i) if i >= 0 => i as u64,
        Value::U64(u) => u,
        ref other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn get_u64(rec: &Value, key: &str) -> u64 {
    let m = rec.as_map().expect("record is an object");
    as_u64(serde::map_get(m, key).unwrap_or_else(|e| panic!("{e}")))
}

fn get_ways(rec: &Value) -> Vec<u64> {
    let m = rec.as_map().expect("record is an object");
    serde::map_get(m, "ways")
        .expect("ways field present")
        .as_seq()
        .expect("ways is an array")
        .iter()
        .map(as_u64)
        .collect()
}

#[test]
fn esteem_run_streams_interval_records() {
    let dir = std::env::temp_dir().join(format!("esteem-ilog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("esteem.jsonl");

    let out = run_sim(&[
        "--technique",
        "esteem",
        "--instructions",
        "1500000",
        "--interval",
        "500000",
        "--interval-log",
        log.to_str().unwrap(),
        "gamess",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let records = read_records(&log);
    assert!(
        records.len() >= 3,
        "expected one record per 500k-cycle interval, got {}",
        records.len()
    );

    let mut prev_cycle = 0u64;
    for rec in &records {
        let cycle = get_u64(rec, "cycle");
        assert!(cycle > prev_cycle, "cycles strictly increase");
        prev_cycle = cycle;
        // Per-module way counts: ESTEEM single-core has 8 modules of a
        // 16-way cache.
        let ways = get_ways(rec);
        assert_eq!(ways.len(), 8, "one way count per module");
        for w in &ways {
            assert!((1..=16).contains(w), "way count {w}");
        }
        // Refresh/hit counters present with the right type (they are
        // interval deltas).
        get_u64(rec, "refreshes");
        get_u64(rec, "invalidations");
        get_u64(rec, "l2_hits");
        get_u64(rec, "l2_misses");
        get_u64(rec, "mem_reads");
        get_u64(rec, "mem_writes");
        get_u64(rec, "instructions");
        get_u64(rec, "span_cycles");
    }
    // All but the final partial record land on interval boundaries.
    for rec in &records[..records.len() - 1] {
        assert_eq!(get_u64(rec, "cycle") % 500_000, 0);
        assert_eq!(get_u64(rec, "span_cycles"), 500_000);
    }
    // Something actually happened: refreshes and instructions accumulate.
    let refreshes: u64 = records.iter().map(|r| get_u64(r, "refreshes")).sum();
    let instrs: u64 = records.iter().map(|r| get_u64(r, "instructions")).sum();
    assert!(refreshes > 0, "an eDRAM cache must refresh");
    assert!(instrs >= 1_500_000, "whole run covered, got {instrs}");

    // ESTEEM converges on the tiny gamess footprint: by the end of the
    // run most modules run below the full 16 ways.
    let shrunk = get_ways(&records[records.len() - 1])
        .iter()
        .filter(|&&w| w < 16)
        .count();
    assert!(shrunk >= 4, "expected most modules shrunk, got {shrunk}/8");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn static_ways_run_logs_fixed_configuration() {
    let dir = std::env::temp_dir().join(format!("esteem-ilog-static-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("static.jsonl");

    let out = run_sim(&[
        "--technique",
        "static",
        "--ways",
        "4",
        "--instructions",
        "400000",
        "--interval-log",
        log.to_str().unwrap(),
        "gamess",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let records = read_records(&log);
    assert!(!records.is_empty());
    // The one-shot shrink lands at the first quantum boundary, so every
    // observed configuration is the pinned one (a single module — the
    // static technique needs no set sampling).
    for rec in &records {
        assert_eq!(get_ways(rec), vec![4]);
    }

    std::fs::remove_dir_all(&dir).ok();
}
