//! Cluster end-to-end tests: a real coordinator and real in-process
//! `esteem-serve` workers on ephemeral ports, driven over real sockets.
//!
//! Each test uses its own seed range so run-cache fingerprints never
//! collide across tests (the run cache is process-global — which is
//! also what makes the coordinator-restart test able to re-materialize
//! reports, exactly as a shared on-disk cache would in a deployment).

use std::time::{Duration, Instant};

use esteem_cluster::{spawn as spawn_coord, CoordinatorOptions, DispatchOptions};
use esteem_core::Simulator;
use esteem_serve::{client, spawn as spawn_worker, ClusterConfig, JobSpec, ServerOptions};
use serde::{map_get, Deserialize, Serialize, Value};

fn coord_opts() -> CoordinatorOptions {
    CoordinatorOptions {
        addr: "127.0.0.1:0".into(),
        dispatch: DispatchOptions {
            heartbeat_timeout: Duration::from_millis(1500),
            monitor_interval: Duration::from_millis(100),
            poll_interval: Duration::from_millis(10),
            ..DispatchOptions::default()
        },
        ..CoordinatorOptions::default()
    }
}

fn worker_opts(coordinator: &str, node_id: &str) -> ServerOptions {
    let mut cfg = ClusterConfig::new(coordinator.to_owned(), node_id.to_owned());
    cfg.heartbeat = Duration::from_millis(100);
    ServerOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cluster: Some(cfg),
        ..ServerOptions::default()
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        workload: "gamess".into(),
        instructions: 200_000,
        seed,
        ..JobSpec::default()
    }
}

/// Polls `f` until it returns true or the deadline passes.
fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_workers_registered(coord: &esteem_cluster::Coordinator, n: usize) {
    wait_until(
        &format!("{n} worker(s) to register"),
        Duration::from_secs(10),
        || {
            coord
                .cluster()
                .members_snapshot()
                .iter()
                .filter(|(_, m)| m.alive)
                .count()
                >= n
        },
    );
}

/// Submits a sweep body over HTTP; returns (sweep id, total cells).
fn submit_sweep(addr: &str, body: &Value) -> (u64, u64) {
    let body = serde_json::to_string(body).unwrap();
    let (status, resp) = client::request(addr, "POST", "/v1/sweeps", Some(&body)).unwrap();
    assert_eq!(status, 202, "sweep rejected: {resp}");
    let v: Value = serde_json::from_str(&resp).unwrap();
    let m = v.as_map().unwrap();
    (
        u64::from_value(map_get(m, "sweep").unwrap()).unwrap(),
        u64::from_value(map_get(m, "total").unwrap()).unwrap(),
    )
}

/// Polls sweep progress until every cell is done (panics on failures).
fn wait_sweep_done(addr: &str, sweep: u64, total: u64, timeout: Duration) {
    wait_until(&format!("sweep {sweep} to finish"), timeout, || {
        let (status, resp) =
            client::request(addr, "GET", &format!("/v1/sweeps/{sweep}"), None).unwrap();
        assert_eq!(status, 200, "{resp}");
        let v: Value = serde_json::from_str(&resp).unwrap();
        let m = v.as_map().unwrap();
        let done = u64::from_value(map_get(m, "done").unwrap()).unwrap();
        let failed = u64::from_value(map_get(m, "failed").unwrap()).unwrap();
        assert_eq!(failed, 0, "sweep cells failed: {resp}");
        done == total
    });
}

/// Streams the merged sweep report and reconstructs its exact bytes.
fn fetch_report(addr: &str, sweep: u64) -> String {
    let mut out = String::new();
    let status = client::stream_lines(addr, &format!("/v1/sweeps/{sweep}/report"), |line| {
        out.push_str(line);
        out.push('\n');
    })
    .unwrap();
    assert_eq!(status, 200, "report not ready");
    out
}

/// The single-node ground truth: run every cell directly through the
/// simulator and print with the `esteem-sim --json` serializer.
fn baseline_report(cells: &[JobSpec]) -> String {
    let mut out = String::new();
    for spec in cells {
        let r = spec.resolve().unwrap();
        let report = Simulator::new(r.cfg, &r.profiles, &r.label).run();
        out.push_str(&serde_json::to_string_pretty(&report.to_value()).unwrap());
        out.push('\n');
    }
    out
}

#[test]
fn sweep_across_two_workers_is_byte_identical_to_single_node() {
    let coord = spawn_coord(coord_opts()).unwrap();
    let coord_addr = coord.addr().to_string();
    let w1 = spawn_worker(worker_opts(&coord_addr, "w1")).unwrap();
    let w2 = spawn_worker(worker_opts(&coord_addr, "w2")).unwrap();
    wait_workers_registered(&coord, 2);

    // 16 cells: 8 seeds x 2 techniques, expanded row-major with the
    // last axis (technique) fastest.
    let seeds: Vec<u64> = (0xC101..0xC109).collect();
    let techniques = ["baseline", "esteem"];
    let body = Value::Map(vec![
        ("base".into(), spec(0).to_value()),
        (
            "grid".into(),
            Value::Map(vec![
                (
                    "seed".into(),
                    Value::Seq(seeds.iter().map(|s| s.to_value()).collect()),
                ),
                (
                    "technique".into(),
                    Value::Seq(techniques.iter().map(|t| Value::Str((*t).into())).collect()),
                ),
            ]),
        ),
    ]);
    let (sweep, total) = submit_sweep(&coord_addr, &body);
    assert_eq!(total, 16);
    wait_sweep_done(&coord_addr, sweep, total, Duration::from_secs(120));

    let merged = fetch_report(&coord_addr, sweep);
    let cells: Vec<JobSpec> = seeds
        .iter()
        .flat_map(|&seed| {
            techniques.iter().map(move |t| JobSpec {
                seed,
                technique: (*t).into(),
                ..spec(0)
            })
        })
        .collect();
    assert_eq!(
        merged,
        baseline_report(&cells),
        "merged sweep report must be byte-identical to the single-node run"
    );

    // The sweep really sharded: both workers executed cells.
    let members = coord.cluster().members_snapshot();
    for (name, m) in &members {
        assert!(
            m.jobs_done >= 1,
            "worker {name} executed no cells: {members:?}"
        );
    }

    w1.shutdown();
    w1.wait();
    w2.shutdown();
    w2.wait();
    coord.shutdown();
    coord.wait();
}

#[test]
fn killing_a_worker_mid_sweep_redispatches_with_no_lost_or_duplicate_jobs() {
    use std::sync::atomic::Ordering::Relaxed;

    let coord = spawn_coord(coord_opts()).unwrap();
    let coord_addr = coord.addr().to_string();
    let w1 = spawn_worker(worker_opts(&coord_addr, "w1")).unwrap();
    wait_workers_registered(&coord, 1);

    // A "dead" worker: a bound-then-dropped listener gives an address
    // that refuses connections — the same observable behavior as a
    // SIGKILLed worker process.
    let ghost_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let reg = format!("{{\"id\":\"ghost\",\"addr\":\"{ghost_addr}\"}}");
    let (status, _) =
        client::request(&coord_addr, "POST", "/v1/cluster/register", Some(&reg)).unwrap();
    assert_eq!(status, 200);
    wait_workers_registered(&coord, 2);

    let cells: Vec<Value> = (0xC201..0xC209u64).map(|s| spec(s).to_value()).collect();
    let body = Value::Map(vec![("jobs".into(), Value::Seq(cells.clone()))]);
    let (sweep, total) = submit_sweep(&coord_addr, &body);
    assert_eq!(total, 8);
    // Completes despite roughly half the cells sharding to the dead
    // node: its dispatchers hit connection-refused and re-home the work.
    wait_sweep_done(&coord_addr, sweep, total, Duration::from_secs(120));

    let c = &coord.cluster().counters;
    assert!(
        c.node_failures.load(Relaxed) >= 1,
        "dead worker was never declared failed"
    );
    assert!(
        c.jobs_redispatched.load(Relaxed) >= 1,
        "no job was re-dispatched off the dead worker"
    );
    // Zero lost, zero duplicated: every cell done exactly once.
    assert_eq!(c.jobs_done.load(Relaxed), total);
    assert_eq!(c.jobs_failed.load(Relaxed), 0);

    // And the merged report still matches the single-node ground truth.
    let merged = fetch_report(&coord_addr, sweep);
    let specs: Vec<JobSpec> = (0xC201..0xC209u64).map(spec).collect();
    assert_eq!(merged, baseline_report(&specs));

    w1.shutdown();
    w1.wait();
    coord.shutdown();
    coord.wait();
}

#[test]
fn resubmitted_cell_hits_the_owning_workers_run_cache() {
    use std::sync::atomic::Ordering::Relaxed;

    let coord = spawn_coord(coord_opts()).unwrap();
    let coord_addr = coord.addr().to_string();
    let w1 = spawn_worker(worker_opts(&coord_addr, "w1")).unwrap();
    wait_workers_registered(&coord, 1);

    let s = spec(0xC301);
    let first = client::submit(&coord_addr, &s).unwrap();
    let a = client::fetch(&coord_addr, first.job, Duration::from_millis(20)).unwrap();

    // Resubmission dispatches to the ring owner again — no coordinator
    // shortcut — so the hit lands in the worker's run cache and is
    // visible in the coordinator's metrics.
    let again = client::submit(&coord_addr, &s).unwrap();
    assert_ne!(again.job, first.job);
    let b = client::fetch(&coord_addr, again.job, Duration::from_millis(20)).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    assert!(
        coord.cluster().counters.jobs_cached_on_worker.load(Relaxed) >= 1,
        "resubmission must be served from the worker's run cache"
    );
    let (status, text) = client::request(&coord_addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        text.contains("cluster/jobs_cached_on_worker 1"),
        "cache hit missing from /metrics:\n{text}"
    );

    w1.shutdown();
    w1.wait();
    coord.shutdown();
    coord.wait();
}

#[test]
fn coordinator_restart_reconstructs_cluster_state_from_its_journal() {
    let dir = std::env::temp_dir().join(format!("esteem-cluster-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("coord.jsonl");

    let specs: Vec<JobSpec> = (0xC401..0xC405u64).map(spec).collect();
    let (sweep, total, merged_before) = {
        let coord = spawn_coord(CoordinatorOptions {
            journal_path: Some(journal.clone()),
            ..coord_opts()
        })
        .unwrap();
        let coord_addr = coord.addr().to_string();
        let w1 = spawn_worker(worker_opts(&coord_addr, "w1")).unwrap();
        wait_workers_registered(&coord, 1);
        let body = Value::Map(vec![(
            "jobs".into(),
            Value::Seq(specs.iter().map(|s| s.to_value()).collect()),
        )]);
        let (sweep, total) = submit_sweep(&coord_addr, &body);
        wait_sweep_done(&coord_addr, sweep, total, Duration::from_secs(120));
        let merged = fetch_report(&coord_addr, sweep);
        w1.shutdown();
        w1.wait();
        coord.shutdown();
        coord.wait();
        (sweep, total, merged)
    };

    // Restarted coordinator, same journal, no workers at all: finished
    // work is already recoverable (reports re-materialize by
    // fingerprint), and the merged report is byte-identical.
    let coord = spawn_coord(CoordinatorOptions {
        journal_path: Some(journal.clone()),
        ..coord_opts()
    })
    .unwrap();
    let coord_addr = coord.addr().to_string();
    let (status, resp) =
        client::request(&coord_addr, "GET", &format!("/v1/sweeps/{sweep}"), None).unwrap();
    assert_eq!(status, 200, "sweep lost across restart: {resp}");
    let v: Value = serde_json::from_str(&resp).unwrap();
    let m = v.as_map().unwrap();
    assert_eq!(
        u64::from_value(map_get(m, "done").unwrap()).unwrap(),
        total,
        "restored sweep lost progress: {resp}"
    );
    assert_eq!(fetch_report(&coord_addr, sweep), merged_before);

    // Job id allocation resumes above the journal's high-water mark:
    // a new submission must not collide with a recovered job.
    let new = client::submit(&coord_addr, &spec(0xC4FF)).unwrap();
    assert!(new.job > total, "job id {} reused", new.job);
    let (state, _) = client::poll(&coord_addr, new.job).unwrap();
    assert_eq!(state, "queued", "no workers: the new job must queue");

    coord.shutdown();
    coord.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registration_lifecycle_is_visible_on_both_sides() {
    use std::sync::atomic::Ordering::Relaxed;

    let coord = spawn_coord(coord_opts()).unwrap();
    let coord_addr = coord.addr().to_string();
    let w = spawn_worker(worker_opts(&coord_addr, "wlife")).unwrap();
    let worker_addr = w.addr().to_string();
    wait_workers_registered(&coord, 1);

    // Worker side: /v1/status carries the cluster section.
    wait_until(
        "worker to report registered",
        Duration::from_secs(10),
        || {
            let (status, resp) = client::request(&worker_addr, "GET", "/v1/status", None).unwrap();
            assert_eq!(status, 200);
            let v: Value = serde_json::from_str(&resp).unwrap();
            let Some(cluster) = v.as_map().and_then(|m| map_get(m, "cluster").ok()) else {
                return false;
            };
            let cm = cluster.as_map().unwrap();
            assert_eq!(map_get(cm, "role").unwrap().as_str(), Some("worker"));
            assert_eq!(map_get(cm, "node_id").unwrap().as_str(), Some("wlife"));
            map_get(cm, "registered").unwrap() == &Value::Bool(true)
        },
    );

    // Coordinator side: membership endpoint and labeled node metrics.
    let (status, resp) = client::request(&coord_addr, "GET", "/v1/cluster", None).unwrap();
    assert_eq!(status, 200);
    assert!(resp.contains("\"wlife\""), "member missing: {resp}");
    let (_, metrics) = client::request(&coord_addr, "GET", "/metrics", None).unwrap();
    assert!(
        metrics.contains("cluster/node_alive{node=\"wlife\"} 1"),
        "alive gauge missing:\n{metrics}"
    );
    assert!(metrics.contains("cluster/registrations 1"), "{metrics}");
    // The first register counts as a registration; the next beat (one
    // heartbeat interval later) lands in the heartbeat counter.
    wait_until("a heartbeat to land", Duration::from_secs(10), || {
        coord.cluster().counters.heartbeats.load(Relaxed) >= 1
    });

    // Graceful worker shutdown deregisters: the node drains instead of
    // being declared failed.
    w.shutdown();
    w.wait();
    wait_until("worker to deregister", Duration::from_secs(10), || {
        coord
            .cluster()
            .members_snapshot()
            .iter()
            .any(|(n, m)| n == "wlife" && (m.draining || !m.alive))
    });
    assert_eq!(coord.cluster().counters.deregistrations.load(Relaxed), 1);
    assert_eq!(
        coord.cluster().counters.node_failures.load(Relaxed),
        0,
        "graceful leave must not count as a node failure"
    );

    coord.shutdown();
    coord.wait();
}
