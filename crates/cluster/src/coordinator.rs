//! The coordinator daemon: HTTP front end over [`crate::dispatch`].
//!
//! Speaks the same `POST /v1/jobs` / `GET /v1/jobs/{id}` contract as a
//! single `esteem-serve` daemon — `esteem-client submit/fetch` works
//! against either unchanged — plus the sweep API:
//!
//! - `POST /v1/sweeps` accepts `{"jobs":[spec, ..]}` or
//!   `{"base": spec, "grid": {field: [v, ..], ..}}` (expanded row-major,
//!   last axis fastest) and admits every cell atomically.
//! - `GET /v1/sweeps/{id}` reports progress.
//! - `GET /v1/sweeps/{id}/report` streams, once every cell is done, one
//!   pretty-printed report per cell in cell order — byte-identical to
//!   running `esteem-sim --json` per cell on one node.
//!
//! Workers join via `POST /v1/cluster/register` (heartbeat doubles as
//! registration) and leave via `POST /v1/cluster/deregister`.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use esteem_serve::http::{Handler, HandlerResult, HttpServer};
use esteem_serve::JobSpec;
use esteem_stats::{labeled, StatsReading};
use serde::{map_get, Deserialize, Serialize, Value};

use crate::dispatch::{CJobState, Cluster, DispatchOptions};
use crate::journal::{self, CoordJournal};

const VERSION: &str = env!("CARGO_PKG_VERSION");
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Ceiling on cells per sweep: grids multiply fast, and every cell
/// costs a journal record before the 202 goes out.
pub const MAX_SWEEP_CELLS: usize = 100_000;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Bind address; port 0 for ephemeral.
    pub addr: String,
    /// Coordinator journal (`None` disables restart recovery).
    pub journal_path: Option<PathBuf>,
    pub dispatch: DispatchOptions,
    /// How long shutdown waits for open connections.
    pub drain_timeout: Duration,
}

impl Default for CoordinatorOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            journal_path: None,
            dispatch: DispatchOptions::default(),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// A running coordinator.
pub struct Coordinator {
    addr: SocketAddr,
    cluster: Arc<Cluster>,
    http: Option<std::thread::JoinHandle<bool>>,
    monitor: Option<std::thread::JoinHandle<()>>,
    http_handle: esteem_serve::http::ServerHandle,
}

impl Coordinator {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dispatch core (tests and the merge tool reach through this).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Programmatic equivalent of `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.cluster.shutdown();
    }

    /// Blocks until shutdown, then joins dispatchers, monitor, and the
    /// HTTP listener. Returns `true` when connections drained in time.
    pub fn wait(mut self) -> bool {
        self.cluster.wait_shutdown();
        self.cluster.shutdown();
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        self.http_handle.stop();
        match self.http.take() {
            Some(h) => h.join().unwrap_or(false),
            None => true,
        }
    }
}

/// Binds, replays the journal, and starts the monitor + HTTP threads.
pub fn spawn(opts: CoordinatorOptions) -> std::io::Result<Coordinator> {
    let journal = match &opts.journal_path {
        Some(p) => CoordJournal::open(p)?,
        None => CoordJournal::none(),
    };
    let cluster = Cluster::new(opts.dispatch.clone(), journal);
    if let Some(path) = &opts.journal_path {
        let rec = journal::recover(path)?;
        if rec.skipped_lines > 0 {
            eprintln!(
                "esteem-coord: journal {}: skipped {} corrupt line(s) during recovery",
                path.display(),
                rec.skipped_lines
            );
        }
        cluster.restore(rec);
    }
    let handler = make_handler(Arc::clone(&cluster));
    let server = HttpServer::bind(&opts.addr, handler)?;
    let addr = server.local_addr();
    let http_handle = server.handle();
    let drain = opts.drain_timeout;
    let http = std::thread::Builder::new()
        .name("esteem-coord-http".into())
        .spawn(move || server.serve(drain))
        .expect("spawn http thread");
    let mon_cluster = Arc::clone(&cluster);
    let monitor = std::thread::Builder::new()
        .name("esteem-coord-monitor".into())
        .spawn(move || mon_cluster.monitor_loop())
        .expect("spawn monitor thread");
    Ok(Coordinator {
        addr,
        cluster,
        http: Some(http),
        monitor: Some(monitor),
        http_handle,
    })
}

fn json_err(status: u16, msg: &str) -> HandlerResult {
    HandlerResult::Json(
        status,
        serde_json::to_string(&Value::Map(vec![("error".into(), Value::Str(msg.into()))]))
            .expect("serializes"),
    )
}

fn body_map(req_body: &[u8]) -> Result<Vec<(String, Value)>, String> {
    let body = std::str::from_utf8(req_body).map_err(|_| "body is not UTF-8".to_owned())?;
    let v: Value = serde_json::from_str(body).map_err(|e| format!("bad JSON body: {e}"))?;
    v.as_map()
        .map(|m| m.to_vec())
        .ok_or_else(|| "body is not an object".to_owned())
}

/// Expands a sweep request body into its cell specs.
///
/// `{"jobs":[spec, ..]}` is taken verbatim; `{"base": spec, "grid":
/// {field: [v1, v2], ..}}` becomes the cross product in row-major
/// order with the *last* grid axis varying fastest.
fn expand_sweep(m: &[(String, Value)]) -> Result<Vec<JobSpec>, String> {
    if let Ok(jobs) = map_get(m, "jobs") {
        let seq = jobs.as_seq().ok_or("\"jobs\" is not an array")?;
        return seq
            .iter()
            .enumerate()
            .map(|(i, v)| JobSpec::from_value(v).map_err(|e| format!("jobs[{i}]: {e}")))
            .collect();
    }
    let base = map_get(m, "base").map_err(|_| "need \"jobs\" or \"base\"+\"grid\"")?;
    let base = base.as_map().ok_or("\"base\" is not an object")?;
    let grid = map_get(m, "grid").map_err(|_| "need \"grid\" alongside \"base\"")?;
    let grid = grid.as_map().ok_or("\"grid\" is not an object")?;
    let mut axes: Vec<(&str, &[Value])> = Vec::with_capacity(grid.len());
    let mut total = 1usize;
    for (field, vals) in grid {
        let seq = vals
            .as_seq()
            .ok_or_else(|| format!("grid axis \"{field}\" is not an array"))?;
        if seq.is_empty() {
            return Err(format!("grid axis \"{field}\" is empty"));
        }
        total = total.saturating_mul(seq.len());
        axes.push((field.as_str(), seq));
    }
    if total > MAX_SWEEP_CELLS {
        return Err(format!("sweep has {total} cells (max {MAX_SWEEP_CELLS})"));
    }
    let mut specs = Vec::with_capacity(total);
    for i in 0..total {
        let mut cell = base.to_vec();
        // Decompose i with the last axis fastest.
        let mut rem = i;
        for (field, vals) in axes.iter().rev() {
            let v = vals[rem % vals.len()].clone();
            rem /= vals.len();
            match cell.iter_mut().find(|(k, _)| k == field) {
                Some(slot) => slot.1 = v,
                None => cell.push(((*field).to_owned(), v)),
            }
        }
        specs.push(JobSpec::from_value(&Value::Map(cell)).map_err(|e| format!("cell {i}: {e}"))?);
    }
    Ok(specs)
}

fn job_status_body(cluster: &Cluster, id: u64) -> Option<String> {
    cluster.with_job(id, |job| {
        let mut m: Vec<(String, Value)> = vec![
            ("job".into(), job.id.to_value()),
            ("state".into(), Value::Str(job.state.name().into())),
            ("workload".into(), Value::Str(job.spec.workload.clone())),
            (
                "fingerprint".into(),
                Value::Str(format!("{:016x}", job.fingerprint)),
            ),
        ];
        if let Some(sweep) = job.sweep {
            m.push(("sweep".into(), sweep.to_value()));
        }
        match &job.state {
            CJobState::Dispatched { node, .. } => {
                m.push(("node".into(), Value::Str(node.clone())));
            }
            CJobState::Done(pretty) => {
                let result = serde_json::from_str::<Value>(pretty).unwrap_or(Value::Null);
                m.push(("result".into(), result));
            }
            CJobState::Failed(err) => m.push(("error".into(), Value::Str(err.clone()))),
            CJobState::Pending => {}
        }
        serde_json::to_string(&Value::Map(m)).expect("serializes")
    })
}

fn sweep_status_body(cluster: &Cluster, id: u64) -> Option<String> {
    let (s, total) = cluster.sweep_state(id)?;
    let state = if s.failed > 0 {
        "failed"
    } else if s.done == total {
        "done"
    } else {
        "running"
    };
    Some(
        serde_json::to_string(&Value::Map(vec![
            ("sweep".into(), id.to_value()),
            ("state".into(), Value::Str(state.into())),
            ("total".into(), total.to_value()),
            ("done".into(), s.done.to_value()),
            ("failed".into(), s.failed.to_value()),
            (
                "jobs".into(),
                Value::Seq(s.jobs.iter().map(|j| j.to_value()).collect()),
            ),
        ]))
        .expect("serializes"),
    )
}

fn metrics_body(cluster: &Cluster) -> String {
    let mut r = StatsReading::new();
    r.register("cluster", &cluster.counters);
    r.scope("cluster", |s| {
        let (queued, running, done, failed, unassigned) = cluster.job_counts();
        s.gauge("jobs_queued", queued as f64);
        s.gauge("jobs_running", running as f64);
        s.gauge("jobs_done", done as f64);
        s.gauge("jobs_failed", failed as f64);
        s.gauge("jobs_unassigned", unassigned as f64);
        for (name, m) in cluster.members_snapshot() {
            let l = [("node", name.as_str())];
            s.gauge(&labeled("node_alive", &l), if m.alive { 1.0 } else { 0.0 });
            s.gauge(&labeled("node_pending", &l), m.pending as f64);
            s.gauge(&labeled("node_inflight", &l), m.inflight as f64);
            s.gauge(&labeled("node_jobs_done", &l), m.jobs_done as f64);
            s.gauge(&labeled("node_run_p95_us", &l), m.run_p95_us);
        }
        s.counter(&labeled("build_info", &[("version", VERSION)]), 1);
    });
    r.render_text()
}

fn status_body(cluster: &Cluster) -> String {
    let (queued, running, done, failed, unassigned) = cluster.job_counts();
    let workers: Vec<Value> = cluster
        .members_snapshot()
        .into_iter()
        .map(|(name, m)| {
            Value::Map(vec![
                ("node".into(), Value::Str(name)),
                ("addr".into(), Value::Str(m.addr)),
                ("alive".into(), Value::Bool(m.alive)),
                ("draining".into(), Value::Bool(m.draining)),
                ("pending".into(), m.pending.to_value()),
                ("inflight".into(), m.inflight.to_value()),
                ("jobs_done".into(), m.jobs_done.to_value()),
                ("run_p95_us".into(), Value::F64(m.run_p95_us)),
                ("queue_depth".into(), m.queue_depth.to_value()),
                ("last_seen_ms".into(), m.last_seen_ms.to_value()),
            ])
        })
        .collect();
    let sweeps: Vec<Value> = cluster
        .sweep_ids()
        .into_iter()
        .filter_map(|id| {
            let (s, total) = cluster.sweep_state(id)?;
            Some(Value::Map(vec![
                ("sweep".into(), id.to_value()),
                ("total".into(), total.to_value()),
                ("done".into(), s.done.to_value()),
                ("failed".into(), s.failed.to_value()),
            ]))
        })
        .collect();
    let c = &cluster.counters;
    use std::sync::atomic::Ordering::Relaxed;
    let counters = Value::Map(vec![
        (
            "jobs_submitted".into(),
            c.jobs_submitted.load(Relaxed).to_value(),
        ),
        (
            "jobs_dispatched".into(),
            c.jobs_dispatched.load(Relaxed).to_value(),
        ),
        ("jobs_done".into(), c.jobs_done.load(Relaxed).to_value()),
        ("jobs_failed".into(), c.jobs_failed.load(Relaxed).to_value()),
        (
            "jobs_redispatched".into(),
            c.jobs_redispatched.load(Relaxed).to_value(),
        ),
        ("jobs_stolen".into(), c.jobs_stolen.load(Relaxed).to_value()),
        (
            "jobs_cached_on_worker".into(),
            c.jobs_cached_on_worker.load(Relaxed).to_value(),
        ),
        (
            "node_failures".into(),
            c.node_failures.load(Relaxed).to_value(),
        ),
        (
            "registrations".into(),
            c.registrations.load(Relaxed).to_value(),
        ),
        ("heartbeats".into(), c.heartbeats.load(Relaxed).to_value()),
    ]);
    serde_json::to_string(&Value::Map(vec![
        ("version".into(), Value::Str(VERSION.into())),
        ("cluster_role".into(), Value::Str("coordinator".into())),
        (
            "jobs".into(),
            Value::Map(vec![
                ("queued".into(), queued.to_value()),
                ("running".into(), running.to_value()),
                ("done".into(), done.to_value()),
                ("failed".into(), failed.to_value()),
                ("unassigned".into(), unassigned.to_value()),
            ]),
        ),
        ("workers".into(), Value::Seq(workers)),
        ("sweeps".into(), Value::Seq(sweeps)),
        ("counters".into(), counters),
    ]))
    .expect("serializes")
}

fn make_handler(cluster: Arc<Cluster>) -> Handler {
    Arc::new(move |req| {
        let parts: Vec<&str> = req.path.split('/').filter(|p| !p.is_empty()).collect();
        match (req.method.as_str(), parts.as_slice()) {
            ("POST", ["v1", "cluster", "register"]) => {
                let m = match body_map(&req.body) {
                    Ok(m) => m,
                    Err(e) => return json_err(400, &e),
                };
                let (id, addr) = match (
                    map_get(&m, "id").ok().and_then(|v| v.as_str()),
                    map_get(&m, "addr").ok().and_then(|v| v.as_str()),
                ) {
                    (Some(id), Some(addr)) if !id.is_empty() && !addr.is_empty() => (id, addr),
                    _ => return json_err(400, "need non-empty \"id\" and \"addr\""),
                };
                cluster.register(id, addr);
                HandlerResult::Json(200, "{\"ok\":true}".into())
            }
            ("POST", ["v1", "cluster", "deregister"]) => {
                let m = match body_map(&req.body) {
                    Ok(m) => m,
                    Err(e) => return json_err(400, &e),
                };
                match map_get(&m, "id").ok().and_then(|v| v.as_str()) {
                    Some(id) if !id.is_empty() => cluster.deregister(id),
                    _ => return json_err(400, "need non-empty \"id\""),
                }
                HandlerResult::Json(200, "{\"ok\":true}".into())
            }
            ("GET", ["v1", "cluster"]) => {
                let members: Vec<Value> = cluster
                    .members_snapshot()
                    .into_iter()
                    .map(|(name, m)| {
                        Value::Map(vec![
                            ("node".into(), Value::Str(name)),
                            ("addr".into(), Value::Str(m.addr)),
                            ("alive".into(), Value::Bool(m.alive)),
                            ("draining".into(), Value::Bool(m.draining)),
                        ])
                    })
                    .collect();
                HandlerResult::Json(
                    200,
                    serde_json::to_string(&Value::Map(vec![(
                        "members".into(),
                        Value::Seq(members),
                    )]))
                    .expect("serializes"),
                )
            }
            ("POST", ["v1", "jobs"]) => {
                let body = match std::str::from_utf8(&req.body) {
                    Ok(b) => b,
                    Err(_) => return json_err(400, "body is not UTF-8"),
                };
                let spec: JobSpec = match serde_json::from_str(body) {
                    Ok(s) => s,
                    Err(e) => return json_err(400, &format!("bad job spec: {e}")),
                };
                match cluster.submit(spec, None) {
                    Ok(id) => HandlerResult::Json(
                        202,
                        serde_json::to_string(&Value::Map(vec![
                            ("job".into(), id.to_value()),
                            ("coalesced".into(), Value::Bool(false)),
                            ("cached".into(), Value::Bool(false)),
                        ]))
                        .expect("serializes"),
                    ),
                    Err(e) => json_err(e.status, &e.msg),
                }
            }
            ("GET", ["v1", "jobs", id]) => {
                match id
                    .parse::<u64>()
                    .ok()
                    .and_then(|i| job_status_body(&cluster, i))
                {
                    Some(body) => HandlerResult::Json(200, body),
                    None => json_err(404, "no such job"),
                }
            }
            ("POST", ["v1", "sweeps"]) => {
                let m = match body_map(&req.body) {
                    Ok(m) => m,
                    Err(e) => return json_err(400, &e),
                };
                let specs = match expand_sweep(&m) {
                    Ok(s) => s,
                    Err(e) => return json_err(400, &e),
                };
                match cluster.submit_sweep(specs) {
                    Ok((sweep, jobs)) => HandlerResult::Json(
                        202,
                        serde_json::to_string(&Value::Map(vec![
                            ("sweep".into(), sweep.to_value()),
                            ("total".into(), (jobs.len() as u64).to_value()),
                            (
                                "jobs".into(),
                                Value::Seq(jobs.iter().map(|j| j.to_value()).collect()),
                            ),
                        ]))
                        .expect("serializes"),
                    ),
                    Err(e) => json_err(e.status, &e.msg),
                }
            }
            ("GET", ["v1", "sweeps", id]) => {
                match id
                    .parse::<u64>()
                    .ok()
                    .and_then(|i| sweep_status_body(&cluster, i))
                {
                    Some(body) => HandlerResult::Json(200, body),
                    None => json_err(404, "no such sweep"),
                }
            }
            ("GET", ["v1", "sweeps", id, "report"]) => {
                let Some(id) = id.parse::<u64>().ok() else {
                    return json_err(404, "no such sweep");
                };
                let Some((s, total)) = cluster.sweep_state(id) else {
                    return json_err(404, "no such sweep");
                };
                if s.failed > 0 {
                    return json_err(500, &format!("{} of {} cells failed", s.failed, total));
                }
                match cluster.sweep_report(id) {
                    Some(reports) => HandlerResult::Stream(200, Box::new(reports.into_iter())),
                    None => json_err(
                        409,
                        &format!("sweep not finished ({}/{} done)", s.done, total),
                    ),
                }
            }
            ("GET", ["metrics"]) => {
                HandlerResult::Typed(200, METRICS_CONTENT_TYPE, metrics_body(&cluster))
            }
            ("GET", ["v1", "status"]) => HandlerResult::Json(200, status_body(&cluster)),
            ("GET", ["v1", "health"]) => {
                let (queued, running, ..) = cluster.job_counts();
                HandlerResult::Json(
                    200,
                    serde_json::to_string(&Value::Map(vec![
                        ("ok".into(), Value::Bool(true)),
                        ("role".into(), Value::Str("coordinator".into())),
                        ("jobs_queued".into(), queued.to_value()),
                        ("jobs_running".into(), running.to_value()),
                    ]))
                    .expect("serializes"),
                )
            }
            ("POST", ["v1", "shutdown"]) => {
                cluster.request_shutdown();
                HandlerResult::Json(200, "{\"shutting_down\":true}".into())
            }
            ("POST" | "GET", _) => json_err(404, "no such endpoint"),
            _ => json_err(405, "method not allowed"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_map() -> Vec<(String, Value)> {
        vec![
            ("workload".into(), Value::Str("gamess".into())),
            ("instructions".into(), Value::U64(1_000_000)),
        ]
    }

    #[test]
    fn grid_expansion_is_row_major_last_axis_fastest() {
        let m = vec![
            ("base".into(), Value::Map(base_map())),
            (
                "grid".into(),
                Value::Map(vec![
                    (
                        "seed".into(),
                        Value::Seq(vec![Value::U64(1), Value::U64(2)]),
                    ),
                    (
                        "technique".into(),
                        Value::Seq(vec![
                            Value::Str("baseline".into()),
                            Value::Str("esteem".into()),
                            Value::Str("rpv".into()),
                        ]),
                    ),
                ]),
            ),
        ];
        let specs = expand_sweep(&m).unwrap();
        assert_eq!(specs.len(), 6);
        let cells: Vec<(u64, String)> = specs
            .iter()
            .map(|s| (s.seed, s.technique.clone()))
            .collect();
        assert_eq!(
            cells,
            vec![
                (1, "baseline".into()),
                (1, "esteem".into()),
                (1, "rpv".into()),
                (2, "baseline".into()),
                (2, "esteem".into()),
                (2, "rpv".into()),
            ]
        );
    }

    #[test]
    fn explicit_job_list_is_taken_verbatim() {
        let m = vec![(
            "jobs".into(),
            Value::Seq(vec![Value::Map(base_map()), Value::Map(base_map())]),
        )];
        let specs = expand_sweep(&m).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].workload, "gamess");
    }

    #[test]
    fn oversized_grid_is_rejected() {
        let axis: Vec<Value> = (0..400u64).map(Value::U64).collect();
        let m = vec![
            ("base".into(), Value::Map(base_map())),
            (
                "grid".into(),
                Value::Map(vec![
                    ("seed".into(), Value::Seq(axis.clone())),
                    ("interval".into(), Value::Seq(axis)),
                ]),
            ),
        ];
        let err = expand_sweep(&m).unwrap_err();
        assert!(err.contains("160000 cells"), "{err}");
    }

    #[test]
    fn sweep_body_without_jobs_or_base_is_rejected() {
        assert!(expand_sweep(&[]).is_err());
    }
}
