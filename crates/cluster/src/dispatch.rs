//! Membership, sharding, and dispatch: the coordinator's core state
//! machine.
//!
//! Jobs shard to workers by run-cache fingerprint over a consistent
//! [`HashRing`], so identical sweep cells always land on the node that
//! already has them cached. Per-node dispatcher threads push work to
//! their worker over the plain `POST /v1/jobs` API and poll it to
//! completion; an idle dispatcher steals queued (not yet dispatched)
//! work from the node with the deepest backlog, weighted by that
//! node's `run_us` p95 from its `/v1/status` stage histograms — the
//! straggler signal.
//!
//! Safety argument for re-dispatch: the simulator is deterministic, so
//! a job is a pure function of its spec. A job on a node that died (or
//! merely looks dead) can be re-run anywhere with byte-identical
//! results; the only hazard is double-*accounting*, which a
//! first-terminal-transition-wins rule on the coordinator prevents.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use esteem_harness::runcache;
use esteem_serve::client::{self, RetryPolicy};
use esteem_serve::JobSpec;
use esteem_stats::{Scope, StatsSource};
use serde::{Serialize, Value};

use crate::journal::{CoordJournal, CoordOutcome, CoordRecovery};
use crate::ring::HashRing;

/// Read timeout for coordinator→worker control calls. Short: a worker
/// that cannot answer within this is straggling badly enough to treat
/// as suspect, and re-dispatch is always safe.
const CONTROL_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Floor for the straggler signal so nodes with no samples yet still
/// rank by backlog depth.
const P95_FLOOR_US: f64 = 1_000.0;

/// Tuning knobs for the dispatcher (defaults are sized for localhost
/// clusters and the test suite; production sweeps mostly care about
/// `workers_per_node`).
#[derive(Debug, Clone)]
pub struct DispatchOptions {
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// A worker silent (no heartbeat, no status reply) longer than this
    /// is declared dead and its jobs re-dispatched.
    pub heartbeat_timeout: Duration,
    /// How often the monitor polls worker `/v1/status` for liveness and
    /// the straggler signal.
    pub monitor_interval: Duration,
    /// Dispatcher threads (= max in-flight jobs) per worker node.
    pub workers_per_node: usize,
    /// Minimum queued backlog on a victim before an idle node steals.
    pub steal_min_backlog: usize,
    /// Retry policy for coordinator→worker submits/polls.
    pub retry: RetryPolicy,
    /// Poll interval while waiting on a dispatched job.
    pub poll_interval: Duration,
}

impl Default for DispatchOptions {
    fn default() -> Self {
        Self {
            vnodes: 64,
            heartbeat_timeout: Duration::from_secs(5),
            monitor_interval: Duration::from_millis(500),
            workers_per_node: 2,
            steal_min_backlog: 2,
            retry: RetryPolicy::new(2, 100),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Cluster-level counters, exported under `cluster/` in `/metrics`.
#[derive(Debug, Default)]
pub struct ClusterCounters {
    pub jobs_submitted: AtomicU64,
    pub sweeps_submitted: AtomicU64,
    pub jobs_dispatched: AtomicU64,
    pub jobs_done: AtomicU64,
    pub jobs_failed: AtomicU64,
    /// Jobs re-dispatched off a dead or suspect node.
    pub jobs_redispatched: AtomicU64,
    /// Jobs an idle node stole from a straggler's queue.
    pub jobs_stolen: AtomicU64,
    /// Dispatches answered from the owning worker's run cache.
    pub jobs_cached_on_worker: AtomicU64,
    pub node_failures: AtomicU64,
    pub registrations: AtomicU64,
    pub deregistrations: AtomicU64,
    pub heartbeats: AtomicU64,
    pub journal_skipped: AtomicU64,
}

impl StatsSource for ClusterCounters {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter(
            "jobs_submitted",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        out.counter(
            "sweeps_submitted",
            self.sweeps_submitted.load(Ordering::Relaxed),
        );
        out.counter(
            "jobs_dispatched",
            self.jobs_dispatched.load(Ordering::Relaxed),
        );
        out.counter("jobs_done", self.jobs_done.load(Ordering::Relaxed));
        out.counter("jobs_failed", self.jobs_failed.load(Ordering::Relaxed));
        out.counter(
            "jobs_redispatched",
            self.jobs_redispatched.load(Ordering::Relaxed),
        );
        out.counter("jobs_stolen", self.jobs_stolen.load(Ordering::Relaxed));
        out.counter(
            "jobs_cached_on_worker",
            self.jobs_cached_on_worker.load(Ordering::Relaxed),
        );
        out.counter("node_failures", self.node_failures.load(Ordering::Relaxed));
        out.counter("registrations", self.registrations.load(Ordering::Relaxed));
        out.counter(
            "deregistrations",
            self.deregistrations.load(Ordering::Relaxed),
        );
        out.counter("heartbeats", self.heartbeats.load(Ordering::Relaxed));
        out.counter(
            "journal_skipped_lines",
            self.journal_skipped.load(Ordering::Relaxed),
        );
    }
}

/// Lifecycle of a coordinator job.
#[derive(Debug, Clone, PartialEq)]
pub enum CJobState {
    /// Queued on some node's pending list (or unassigned).
    Pending,
    /// Claimed by a dispatcher thread; `token` uniquely identifies the
    /// claim so a stale completion (from before a re-dispatch) cannot
    /// double-account.
    Dispatched {
        node: String,
        token: u64,
    },
    /// Finished: the pretty-printed report JSON, exactly as
    /// `esteem-sim --json` prints it.
    Done(String),
    Failed(String),
}

impl CJobState {
    pub fn name(&self) -> &'static str {
        match self {
            CJobState::Pending => "queued",
            CJobState::Dispatched { .. } => "running",
            CJobState::Done(_) => "done",
            CJobState::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, CJobState::Done(_) | CJobState::Failed(_))
    }
}

#[derive(Debug)]
pub struct CJob {
    pub id: u64,
    pub spec: JobSpec,
    pub fingerprint: u64,
    pub sweep: Option<u64>,
    pub state: CJobState,
}

#[derive(Debug, Default, Clone)]
pub struct SweepState {
    /// Member jobs in cell order (the report streams in this order).
    pub jobs: Vec<u64>,
    pub done: u64,
    pub failed: u64,
}

/// One worker as the coordinator sees it.
#[derive(Debug)]
pub struct Member {
    pub addr: String,
    pub alive: bool,
    /// Draining: deregistered gracefully; in-flight jobs finish but no
    /// new work is claimed for it.
    pub draining: bool,
    /// Bumped on every (re-)registration and node failure; dispatcher
    /// threads from older generations exit.
    pub generation: u64,
    pub last_seen: Instant,
    /// Jobs currently claimed by this node's dispatcher threads.
    pub inflight: usize,
    pub jobs_done: u64,
    /// Straggler signal: the worker's `run_us` p95 from `/v1/status`.
    pub run_p95_us: f64,
    /// The worker's own queue depth from `/v1/status`.
    pub queue_depth: u64,
}

struct Inner {
    members: HashMap<String, Member>,
    ring: HashRing,
    jobs: HashMap<u64, CJob>,
    sweeps: HashMap<u64, SweepState>,
    /// Per-node queues of Pending job ids (front = next to run).
    pending: HashMap<String, VecDeque<u64>>,
    /// Pending jobs with no live node to own them.
    unassigned: VecDeque<u64>,
    shutdown: bool,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// The coordinator's core: membership + sharding + dispatch state.
pub struct Cluster {
    inner: Mutex<Inner>,
    /// Notified on new work, membership changes, completions, shutdown.
    work: Condvar,
    pub counters: ClusterCounters,
    journal: CoordJournal,
    opts: DispatchOptions,
    next_job: AtomicU64,
    next_sweep: AtomicU64,
    next_token: AtomicU64,
}

/// Errors surfaced to the HTTP layer.
#[derive(Debug, PartialEq, Eq)]
pub struct SubmitError {
    pub status: u16,
    pub msg: String,
}

impl Cluster {
    pub fn new(opts: DispatchOptions, journal: CoordJournal) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(Inner {
                members: HashMap::new(),
                ring: HashRing::new(opts.vnodes),
                jobs: HashMap::new(),
                sweeps: HashMap::new(),
                pending: HashMap::new(),
                unassigned: VecDeque::new(),
                shutdown: false,
                threads: Vec::new(),
            }),
            work: Condvar::new(),
            counters: ClusterCounters::default(),
            journal,
            opts,
            next_job: AtomicU64::new(0),
            next_sweep: AtomicU64::new(0),
            next_token: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rebuilds dispatch state from a replayed journal (coordinator
    /// restart). Done jobs re-materialize their report bytes from the
    /// process-global run cache; evicted ones re-dispatch (safe:
    /// deterministic).
    pub fn restore(self: &Arc<Self>, rec: CoordRecovery) {
        self.next_job.store(rec.max_job_id, Ordering::Relaxed);
        self.next_sweep.store(rec.max_sweep_id, Ordering::Relaxed);
        self.counters
            .journal_skipped
            .fetch_add(rec.skipped_lines, Ordering::Relaxed);
        let mut inner = self.lock();
        for (id, jobs) in rec.sweeps {
            inner.sweeps.insert(
                id,
                SweepState {
                    jobs,
                    done: 0,
                    failed: 0,
                },
            );
        }
        for r in rec.jobs {
            let state = match r.outcome {
                CoordOutcome::Done => match runcache::lookup(r.fingerprint) {
                    Some(report) => CJobState::Done(
                        serde_json::to_string_pretty(&report.to_value()).expect("serializes"),
                    ),
                    None => CJobState::Pending,
                },
                CoordOutcome::Failed(err) => CJobState::Failed(err),
                CoordOutcome::Unfinished => CJobState::Pending,
            };
            if let (Some(sweep_id), true) = (r.sweep, state.is_terminal()) {
                if let Some(sweep) = inner.sweeps.get_mut(&sweep_id) {
                    match state {
                        CJobState::Done(_) => sweep.done += 1,
                        CJobState::Failed(_) => sweep.failed += 1,
                        _ => {}
                    }
                }
            }
            if state == CJobState::Pending {
                inner.unassigned.push_back(r.id);
            }
            inner.jobs.insert(
                r.id,
                CJob {
                    id: r.id,
                    spec: r.spec,
                    fingerprint: r.fingerprint,
                    sweep: r.sweep,
                    state,
                },
            );
        }
        drop(inner);
        self.work.notify_all();
    }

    /// Registers (or heartbeats) a worker. Registration is idempotent:
    /// an alive worker at the same address just refreshes liveness.
    pub fn register(self: &Arc<Self>, node: &str, addr: &str) {
        let mut inner = self.lock();
        if let Some(m) = inner.members.get_mut(node) {
            if m.alive && !m.draining {
                m.last_seen = Instant::now();
                if m.addr != addr {
                    m.addr = addr.to_owned();
                }
                self.counters.heartbeats.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // New node, or a dead/draining one coming back.
        let generation = inner
            .members
            .get(node)
            .map(|m| m.generation + 1)
            .unwrap_or(1);
        inner.members.insert(
            node.to_owned(),
            Member {
                addr: addr.to_owned(),
                alive: true,
                draining: false,
                generation,
                last_seen: Instant::now(),
                inflight: 0,
                jobs_done: 0,
                run_p95_us: 0.0,
                queue_depth: 0,
            },
        );
        inner.ring.add(node);
        self.counters.registrations.fetch_add(1, Ordering::Relaxed);
        // Re-shard every Pending job over the new ring: cache affinity
        // wants cells on their ring owner, and the new node must take
        // its arcs over immediately.
        self.reshard_pending(&mut inner);
        for i in 0..self.opts.workers_per_node {
            let cluster = Arc::clone(self);
            let name = node.to_owned();
            let handle = std::thread::Builder::new()
                .name(format!("esteem-coord-{node}-{i}"))
                .spawn(move || cluster.dispatcher_loop(&name, generation))
                .expect("spawn dispatcher");
            inner.threads.push(handle);
        }
        drop(inner);
        self.work.notify_all();
    }

    /// Graceful deregister: stop giving the node work, re-shard its
    /// queue, let in-flight jobs finish on it.
    pub fn deregister(self: &Arc<Self>, node: &str) {
        let mut inner = self.lock();
        let Some(m) = inner.members.get_mut(node) else {
            return;
        };
        if m.draining || !m.alive {
            return;
        }
        m.draining = true;
        inner.ring.remove(node);
        self.counters
            .deregistrations
            .fetch_add(1, Ordering::Relaxed);
        self.reshard_pending(&mut inner);
        drop(inner);
        self.work.notify_all();
    }

    /// Declares a node dead: takes it off the ring and makes every job
    /// it held (queued *or* in flight) eligible for dispatch elsewhere.
    fn fail_node(self: &Arc<Self>, node: &str, generation: u64) {
        let mut inner = self.lock();
        let Some(m) = inner.members.get_mut(node) else {
            return;
        };
        // A newer generation means the node already re-registered; the
        // failure this call is reporting is stale.
        if m.generation != generation || !m.alive {
            return;
        }
        m.alive = false;
        m.inflight = 0;
        inner.ring.remove(node);
        self.counters.node_failures.fetch_add(1, Ordering::Relaxed);
        // In-flight jobs on the dead node go back to Pending.
        let stranded: Vec<u64> = inner
            .jobs
            .values()
            .filter(|j| matches!(&j.state, CJobState::Dispatched { node: n, .. } if n == node))
            .map(|j| j.id)
            .collect();
        for id in &stranded {
            if let Some(job) = inner.jobs.get_mut(id) {
                job.state = CJobState::Pending;
            }
            inner.unassigned.push_back(*id);
            self.counters
                .jobs_redispatched
                .fetch_add(1, Ordering::Relaxed);
        }
        self.reshard_pending(&mut inner);
        drop(inner);
        self.work.notify_all();
    }

    /// Redistributes every Pending job over the current ring. Jobs on a
    /// node that is gone (or was never assigned) land on their ring
    /// owner; with no live nodes they wait in `unassigned`.
    fn reshard_pending(&self, inner: &mut Inner) {
        let mut ids: Vec<u64> = std::mem::take(&mut inner.unassigned).into();
        for (_, q) in inner.pending.iter_mut() {
            ids.extend(std::mem::take(q));
        }
        // Submit order keeps sweeps roughly in cell order per node.
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let Some(job) = inner.jobs.get(&id) else {
                continue;
            };
            if job.state != CJobState::Pending {
                continue;
            }
            match inner.ring.owner(job.fingerprint) {
                Some(owner) => {
                    let owner = owner.to_owned();
                    inner.pending.entry(owner).or_default().push_back(id);
                }
                None => inner.unassigned.push_back(id),
            }
        }
    }

    /// Accepts one job: resolves + fingerprints the spec, journals it,
    /// and queues it on its ring owner. Returns the job id.
    pub fn submit(self: &Arc<Self>, spec: JobSpec, sweep: Option<u64>) -> Result<u64, SubmitError> {
        let resolved = spec.resolve().map_err(|e| SubmitError {
            status: 400,
            msg: e,
        })?;
        Ok(self.admit(spec, resolved.fingerprint, sweep))
    }

    /// Queues an already-resolved job (shared by `submit` and sweeps).
    fn admit(self: &Arc<Self>, spec: JobSpec, fingerprint: u64, sweep: Option<u64>) -> u64 {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed) + 1;
        self.journal.submit(id, sweep, fingerprint, &spec);
        self.counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.lock();
        inner.jobs.insert(
            id,
            CJob {
                id,
                spec,
                fingerprint,
                sweep,
                state: CJobState::Pending,
            },
        );
        match inner.ring.owner(fingerprint) {
            Some(owner) => {
                let owner = owner.to_owned();
                inner.pending.entry(owner).or_default().push_back(id);
            }
            None => inner.unassigned.push_back(id),
        }
        drop(inner);
        self.work.notify_all();
        id
    }

    /// Accepts a sweep: every spec must resolve before any cell is
    /// admitted (all-or-nothing). Returns `(sweep id, job ids)`.
    pub fn submit_sweep(
        self: &Arc<Self>,
        specs: Vec<JobSpec>,
    ) -> Result<(u64, Vec<u64>), SubmitError> {
        if specs.is_empty() {
            return Err(SubmitError {
                status: 400,
                msg: "sweep has no cells".into(),
            });
        }
        let mut resolved = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let r = spec.resolve().map_err(|e| SubmitError {
                status: 400,
                msg: format!("cell {i}: {e}"),
            })?;
            resolved.push(r.fingerprint);
        }
        let sweep_id = self.next_sweep.fetch_add(1, Ordering::Relaxed) + 1;
        self.counters
            .sweeps_submitted
            .fetch_add(1, Ordering::Relaxed);
        let mut job_ids = Vec::with_capacity(specs.len());
        for (spec, fp) in specs.into_iter().zip(resolved) {
            job_ids.push(self.admit(spec, fp, Some(sweep_id)));
        }
        self.journal.sweep(sweep_id, &job_ids);
        self.lock().sweeps.insert(
            sweep_id,
            SweepState {
                jobs: job_ids.clone(),
                done: 0,
                failed: 0,
            },
        );
        self.work.notify_all();
        Ok((sweep_id, job_ids))
    }

    /// One dispatcher thread: claim work for `node`, run it remotely,
    /// repeat. Exits when the node's generation changes (death or
    /// re-registration), the node drains, or the cluster shuts down.
    fn dispatcher_loop(self: &Arc<Self>, node: &str, generation: u64) {
        loop {
            let claimed = {
                let mut inner = self.lock();
                loop {
                    if inner.shutdown {
                        return;
                    }
                    match inner.members.get(node) {
                        Some(m) if m.alive && !m.draining && m.generation == generation => {}
                        _ => return,
                    }
                    if let Some(claim) = self.claim(&mut inner, node) {
                        break claim;
                    }
                    inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.run_job(node, generation, claimed);
        }
    }

    /// Pops the next job for `node`: its own queue first, else steals
    /// from the worst straggler with enough backlog. Marks the job
    /// Dispatched and bumps inflight. Must run under the inner lock.
    fn claim(&self, inner: &mut Inner, node: &str) -> Option<(u64, u64, String)> {
        let own = inner.pending.get_mut(node).and_then(|q| q.pop_front());
        let id = match own {
            Some(id) => Some(id),
            None => self.steal(inner, node),
        }?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        let addr = inner.members.get(node)?.addr.clone();
        let job = inner.jobs.get_mut(&id)?;
        job.state = CJobState::Dispatched {
            node: node.to_owned(),
            token,
        };
        if let Some(m) = inner.members.get_mut(node) {
            m.inflight += 1;
            m.last_seen = Instant::now();
        }
        self.counters
            .jobs_dispatched
            .fetch_add(1, Ordering::Relaxed);
        self.journal.dispatch(id, node);
        Some((id, token, addr))
    }

    /// Picks a steal victim: the alive node with the deepest *queued*
    /// backlog weighted by its run-time p95 (straggler signal), with at
    /// least `steal_min_backlog` queued. Steals from the back of the
    /// victim's queue — the work it would get to last.
    fn steal(&self, inner: &mut Inner, thief: &str) -> Option<u64> {
        let mut best: Option<(f64, String)> = None;
        for (name, q) in &inner.pending {
            if name == thief || q.len() < self.opts.steal_min_backlog {
                continue;
            }
            let Some(m) = inner.members.get(name) else {
                continue;
            };
            if !m.alive || m.draining {
                continue;
            }
            let score = q.len() as f64 * m.run_p95_us.max(P95_FLOOR_US);
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, name.clone()));
            }
        }
        let (_, victim) = best?;
        let id = inner.pending.get_mut(&victim)?.pop_back()?;
        self.counters.jobs_stolen.fetch_add(1, Ordering::Relaxed);
        Some(id)
    }

    /// Runs one claimed job on the remote worker, polling to terminal
    /// state. Any transport failure declares the node suspect and
    /// re-dispatches (safe: deterministic simulator + claim tokens).
    fn run_job(self: &Arc<Self>, node: &str, generation: u64, claim: (u64, u64, String)) {
        let (id, token, addr) = claim;
        let spec = {
            let inner = self.lock();
            match inner.jobs.get(&id) {
                Some(j) => j.spec.clone(),
                None => return,
            }
        };
        let resp = match client::submit_with(&addr, &spec, &self.opts.retry, CONTROL_READ_TIMEOUT) {
            Ok(r) => r,
            Err(e) if e.contains("submit failed (") => {
                // The worker answered but rejected (429 shed / 503
                // draining): requeue and let the ring (possibly minus
                // this node, if it is shutting down) take it again.
                // A shed carries the worker's Retry-After hint; honor
                // it (bounded) so a saturated worker is not re-offered
                // the job faster than its queue drains.
                let wait = client::retry_after_ms_from_error(&e)
                    .map(|ms| Duration::from_millis(ms.min(10_000)))
                    .unwrap_or(self.opts.poll_interval)
                    .max(self.opts.poll_interval);
                self.release(node, id, token);
                std::thread::sleep(wait);
                return;
            }
            Err(_) => {
                self.node_down(node, generation, id, token);
                return;
            }
        };
        if resp.cached {
            self.counters
                .jobs_cached_on_worker
                .fetch_add(1, Ordering::Relaxed);
        }
        loop {
            {
                let inner = self.lock();
                if inner.shutdown {
                    return;
                }
                // Abandon if the claim is stale (monitor declared this
                // node dead and the job moved on).
                match inner.jobs.get(&id).map(|j| &j.state) {
                    Some(CJobState::Dispatched { token: t, .. }) if *t == token => {}
                    _ => return,
                }
            }
            match client::poll_with(&addr, resp.job, &self.opts.retry, CONTROL_READ_TIMEOUT) {
                Ok((state, v)) => match state.as_str() {
                    "done" => {
                        let result = v
                            .as_map()
                            .and_then(|m| serde::map_get(m, "result").ok())
                            .cloned()
                            .unwrap_or(Value::Null);
                        let pretty = serde_json::to_string_pretty(&result).expect("serializes");
                        self.complete(node, id, token, Ok(pretty));
                        return;
                    }
                    "failed" => {
                        // A deterministic simulator panic: re-running
                        // reproduces it, so the failure is final.
                        let err = v
                            .as_map()
                            .and_then(|m| serde::map_get(m, "error").ok())
                            .and_then(|e| e.as_str())
                            .unwrap_or("unknown error")
                            .to_owned();
                        self.complete(node, id, token, Err(err));
                        return;
                    }
                    _ => std::thread::sleep(self.opts.poll_interval),
                },
                Err(_) => {
                    self.node_down(node, generation, id, token);
                    return;
                }
            }
        }
    }

    /// Returns a claimed-but-unstarted job to the queues.
    fn release(self: &Arc<Self>, node: &str, id: u64, token: u64) {
        let mut inner = self.lock();
        if let Some(job) = inner.jobs.get_mut(&id) {
            if job.state
                == (CJobState::Dispatched {
                    node: node.to_owned(),
                    token,
                })
            {
                job.state = CJobState::Pending;
                inner.unassigned.push_back(id);
                self.reshard_pending(&mut inner);
            }
        }
        if let Some(m) = inner.members.get_mut(node) {
            m.inflight = m.inflight.saturating_sub(1);
        }
        drop(inner);
        self.work.notify_all();
    }

    fn node_down(self: &Arc<Self>, node: &str, generation: u64, _id: u64, _token: u64) {
        // fail_node re-homes every job dispatched to `node`, including
        // this one, and bumps the generation so sibling threads exit.
        self.fail_node(node, generation);
    }

    /// First-terminal-transition-wins completion: a stale claim (token
    /// mismatch) or an already-terminal job is a no-op, so re-dispatch
    /// can never lose or double-count a job.
    fn complete(
        self: &Arc<Self>,
        node: &str,
        id: u64,
        token: u64,
        outcome: Result<String, String>,
    ) {
        let mut inner = self.lock();
        let Some(job) = inner.jobs.get_mut(&id) else {
            return;
        };
        let ours = matches!(&job.state,
            CJobState::Dispatched { node: n, token: t } if n == node && *t == token);
        if ours && !job.state.is_terminal() {
            let sweep = job.sweep;
            match outcome {
                Ok(pretty) => {
                    job.state = CJobState::Done(pretty);
                    self.journal.done(id);
                    self.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
                    if let Some(s) = sweep.and_then(|s| inner.sweeps.get_mut(&s)) {
                        s.done += 1;
                    }
                }
                Err(err) => {
                    job.state = CJobState::Failed(err.clone());
                    self.journal.fail(id, &err);
                    self.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(s) = sweep.and_then(|s| inner.sweeps.get_mut(&s)) {
                        s.failed += 1;
                    }
                }
            }
            if let Some(m) = inner.members.get_mut(node) {
                m.inflight = m.inflight.saturating_sub(1);
                m.jobs_done += 1;
                m.last_seen = Instant::now();
            }
        }
        drop(inner);
        self.work.notify_all();
    }

    /// Liveness + straggler-signal monitor; run on a dedicated thread.
    /// Polls every alive worker's `/v1/status`; a worker that neither
    /// heartbeats nor answers within `heartbeat_timeout` is failed.
    pub fn monitor_loop(self: &Arc<Self>) {
        loop {
            let targets: Vec<(String, String, u64)> = {
                let inner = self.lock();
                if inner.shutdown {
                    return;
                }
                inner
                    .members
                    .iter()
                    .filter(|(_, m)| m.alive && !m.draining)
                    .map(|(n, m)| (n.clone(), m.addr.clone(), m.generation))
                    .collect()
            };
            for (node, addr, generation) in targets {
                match client::request_with(
                    &addr,
                    "GET",
                    "/v1/status",
                    None,
                    &RetryPolicy::none(),
                    Duration::from_secs(2),
                ) {
                    Ok((200, body)) => {
                        let (p95, depth) = parse_status_signal(&body);
                        let mut inner = self.lock();
                        if let Some(m) = inner.members.get_mut(&node) {
                            if m.generation == generation {
                                m.last_seen = Instant::now();
                                m.run_p95_us = p95;
                                m.queue_depth = depth;
                            }
                        }
                    }
                    _ => {
                        let stale = {
                            let inner = self.lock();
                            inner.members.get(&node).is_some_and(|m| {
                                m.generation == generation
                                    && m.last_seen.elapsed() > self.opts.heartbeat_timeout
                            })
                        };
                        if stale {
                            self.fail_node(&node, generation);
                        }
                    }
                }
            }
            let inner = self.lock();
            if inner.shutdown {
                return;
            }
            let (inner, _) = self
                .work
                .wait_timeout(inner, self.opts.monitor_interval)
                .unwrap_or_else(|e| e.into_inner());
            drop(inner);
        }
    }

    /// Flags shutdown without joining (the `POST /v1/shutdown` path:
    /// the HTTP handler cannot join threads while a request is open).
    pub fn request_shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    /// Blocks until shutdown has been requested.
    pub fn wait_shutdown(&self) {
        let mut inner = self.lock();
        while !inner.shutdown {
            inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Requests shutdown and joins every dispatcher thread. In-flight
    /// polls notice within one poll interval.
    pub fn shutdown(&self) {
        self.request_shutdown();
        loop {
            let Some(handle) = self.lock().threads.pop() else {
                break;
            };
            let _ = handle.join();
        }
    }

    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Read access for the HTTP layer and tests.
    pub fn with_job<T>(&self, id: u64, f: impl FnOnce(&CJob) -> T) -> Option<T> {
        let inner = self.lock();
        inner.jobs.get(&id).map(f)
    }

    pub fn sweep_state(&self, id: u64) -> Option<(SweepState, u64)> {
        let inner = self.lock();
        let s = inner.sweeps.get(&id)?;
        Some((s.clone(), s.jobs.len() as u64))
    }

    /// The report bodies of a finished sweep, in cell order. `None`
    /// while any cell is unfinished; failed cells are reported by
    /// [`Cluster::sweep_state`].
    pub fn sweep_report(&self, id: u64) -> Option<Vec<String>> {
        let inner = self.lock();
        let s = inner.sweeps.get(&id)?;
        let mut out = Vec::with_capacity(s.jobs.len());
        for jid in &s.jobs {
            match inner.jobs.get(jid).map(|j| &j.state) {
                Some(CJobState::Done(pretty)) => out.push(pretty.clone()),
                _ => return None,
            }
        }
        Some(out)
    }

    /// Per-member snapshot for `/v1/status` and `/metrics`.
    pub fn members_snapshot(&self) -> Vec<(String, MemberSnapshot)> {
        let inner = self.lock();
        let mut v: Vec<(String, MemberSnapshot)> = inner
            .members
            .iter()
            .map(|(n, m)| {
                (
                    n.clone(),
                    MemberSnapshot {
                        addr: m.addr.clone(),
                        alive: m.alive,
                        draining: m.draining,
                        inflight: m.inflight as u64,
                        pending: inner.pending.get(n).map(|q| q.len() as u64).unwrap_or(0),
                        jobs_done: m.jobs_done,
                        run_p95_us: m.run_p95_us,
                        queue_depth: m.queue_depth,
                        last_seen_ms: m.last_seen.elapsed().as_millis() as u64,
                    },
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Job counts by state: (queued, running, done, failed, unassigned).
    pub fn job_counts(&self) -> (u64, u64, u64, u64, u64) {
        let inner = self.lock();
        let mut c = (0u64, 0u64, 0u64, 0u64, 0u64);
        for j in inner.jobs.values() {
            match j.state {
                CJobState::Pending => c.0 += 1,
                CJobState::Dispatched { .. } => c.1 += 1,
                CJobState::Done(_) => c.2 += 1,
                CJobState::Failed(_) => c.3 += 1,
            }
        }
        c.4 = inner.unassigned.len() as u64;
        c
    }

    pub fn sweep_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.lock().sweeps.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    pub fn journal_path(&self) -> Option<std::path::PathBuf> {
        self.journal.path().map(|p| p.to_owned())
    }
}

/// One member's externally visible state.
#[derive(Debug, Clone)]
pub struct MemberSnapshot {
    pub addr: String,
    pub alive: bool,
    pub draining: bool,
    pub inflight: u64,
    pub pending: u64,
    pub jobs_done: u64,
    pub run_p95_us: f64,
    pub queue_depth: u64,
    pub last_seen_ms: u64,
}

/// Extracts `(stages.run_us.p95_us, queue_depth)` from a worker's
/// `/v1/status` body; zeros when absent.
fn parse_status_signal(body: &str) -> (f64, u64) {
    let Ok(v) = serde_json::from_str::<Value>(body) else {
        return (0.0, 0);
    };
    let get = |m: &[(String, Value)], k: &str| -> Option<Value> {
        m.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone())
    };
    let m = match v.as_map() {
        Some(m) => m.to_vec(),
        None => return (0.0, 0),
    };
    let depth = match get(&m, "queue_depth") {
        Some(Value::U64(n)) => n,
        Some(Value::I64(n)) => n.max(0) as u64,
        _ => 0,
    };
    let p95 = get(&m, "stages")
        .and_then(|s| s.as_map().map(|x| x.to_vec()))
        .and_then(|s| get(&s, "run_us"))
        .and_then(|r| r.as_map().map(|x| x.to_vec()))
        .and_then(|r| get(&r, "p95_us"))
        .map(|p| match p {
            Value::U64(n) => n as f64,
            Value::I64(n) => n as f64,
            Value::F64(f) => f,
            _ => 0.0,
        })
        .unwrap_or(0.0);
    (p95, depth)
}
