//! Coordinator + N workers sweep fabric over [`esteem_serve`] daemons.
//!
//! The coordinator accepts the same `POST /v1/jobs` API as a single
//! daemon plus a `POST /v1/sweeps` batch endpoint, shards cells to
//! workers by run-cache fingerprint over a consistent-hash ring
//! ([`ring`]), steals queued work from stragglers using the workers'
//! per-stage latency histograms as the signal ([`dispatch`]), and
//! journals every decision so a coordinator restart reconstructs
//! cluster state ([`journal`]). Per-node worker journals fold into one
//! recoverable view with [`merge`].
//!
//! Everything rides on determinism: a cell is a pure function of its
//! spec, so re-dispatching off a dead or slow worker can change *where*
//! work ran but never *what* the merged sweep report contains — it
//! stays byte-identical to a single-node run.

pub mod coordinator;
pub mod dispatch;
pub mod journal;
pub mod merge;
pub mod ring;

pub use coordinator::{spawn, Coordinator, CoordinatorOptions, MAX_SWEEP_CELLS};
pub use dispatch::{CJobState, Cluster, ClusterCounters, DispatchOptions, MemberSnapshot};
pub use journal::{recover, CoordJournal, CoordOutcome, CoordRecovery};
pub use merge::{merge_journals, MergedJob, MergedView};
pub use ring::HashRing;
