//! Journal merge: folds per-node worker journals into one recoverable
//! view of the cluster's work.
//!
//! Each worker keeps its own crash-safe journal (see
//! [`esteem_serve::journal`]). After a sweep — or after losing the
//! coordinator — the union of those journals is the ground truth of
//! what ran where. Jobs are keyed by run-cache *fingerprint*, not job
//! id: ids are per-node counters and collide across nodes, while the
//! fingerprint identifies the work itself, so a job re-dispatched after
//! a node death shows up as one logical entry with multiple attempts.
//!
//! Outcome precedence is `Done > Failed > Unfinished`: the simulator is
//! deterministic, so any node finishing a cell proves the cell done; a
//! `Failed`/`Done` disagreement for the same fingerprint is recorded as
//! a conflict (it indicates non-determinism or version skew and must
//! not pass silently).

use std::collections::HashMap;
use std::path::Path;

use esteem_serve::journal::{recover, RecoveredOutcome};
use serde::{Serialize, Value};

/// One logical job in the merged view.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedJob {
    pub fingerprint: u64,
    pub workload: String,
    /// `(node, outcome-name)` per attempt, in input-node order.
    pub attempts: Vec<(String, &'static str)>,
    /// Folded outcome under Done > Failed > Unfinished.
    pub outcome: &'static str,
    /// Error text of the first failed attempt, if any.
    pub error: Option<String>,
}

/// The merged cluster view.
#[derive(Debug, Default)]
pub struct MergedView {
    /// Fingerprint-keyed jobs in first-seen order.
    pub jobs: Vec<MergedJob>,
    /// Corrupt lines skipped across all inputs.
    pub skipped_lines: u64,
    /// Fingerprints where one node reported Done and another Failed.
    pub conflicts: Vec<u64>,
}

fn outcome_name(o: &RecoveredOutcome) -> &'static str {
    match o {
        RecoveredOutcome::Done => "done",
        RecoveredOutcome::Failed(_) => "failed",
        RecoveredOutcome::Unfinished => "unfinished",
    }
}

fn rank(name: &str) -> u8 {
    match name {
        "done" => 2,
        "failed" => 1,
        _ => 0,
    }
}

/// Merges `(node name, journal path)` pairs into one view.
pub fn merge_journals(inputs: &[(String, &Path)]) -> std::io::Result<MergedView> {
    let mut view = MergedView::default();
    let mut index: HashMap<u64, usize> = HashMap::new();
    for (node, path) in inputs {
        let rec = recover(path)?;
        view.skipped_lines += rec.skipped_lines;
        for job in rec.jobs {
            let name = outcome_name(&job.outcome);
            let slot = *index.entry(job.fingerprint).or_insert_with(|| {
                view.jobs.push(MergedJob {
                    fingerprint: job.fingerprint,
                    workload: job.spec.workload.clone(),
                    attempts: Vec::new(),
                    outcome: "unfinished",
                    error: None,
                });
                view.jobs.len() - 1
            });
            let merged = &mut view.jobs[slot];
            merged.attempts.push((node.clone(), name));
            // Done vs Failed on the same work is a determinism violation.
            let terminal_disagrees = (merged.outcome == "done" && name == "failed")
                || (merged.outcome == "failed" && name == "done");
            if terminal_disagrees && !view.conflicts.contains(&job.fingerprint) {
                view.conflicts.push(job.fingerprint);
            }
            if rank(name) > rank(merged.outcome) {
                merged.outcome = name;
            }
            if let (None, RecoveredOutcome::Failed(e)) = (&merged.error, &job.outcome) {
                merged.error = Some(e.clone());
            }
        }
    }
    Ok(view)
}

impl MergedView {
    /// Counts by folded outcome: (done, failed, unfinished).
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for j in &self.jobs {
            match j.outcome {
                "done" => t.0 += 1,
                "failed" => t.1 += 1,
                _ => t.2 += 1,
            }
        }
        t
    }

    /// JSON rendering for `esteem-coord merge`.
    pub fn to_value(&self) -> Value {
        let (done, failed, unfinished) = self.totals();
        Value::Map(vec![
            (
                "jobs".into(),
                Value::Seq(
                    self.jobs
                        .iter()
                        .map(|j| {
                            let mut m = vec![
                                (
                                    "fingerprint".into(),
                                    Value::Str(format!("{:016x}", j.fingerprint)),
                                ),
                                ("workload".into(), Value::Str(j.workload.clone())),
                                ("outcome".into(), Value::Str(j.outcome.into())),
                                (
                                    "attempts".into(),
                                    Value::Seq(
                                        j.attempts
                                            .iter()
                                            .map(|(node, o)| {
                                                Value::Map(vec![
                                                    ("node".into(), Value::Str(node.clone())),
                                                    ("outcome".into(), Value::Str((*o).into())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ];
                            if let Some(e) = &j.error {
                                m.push(("error".into(), Value::Str(e.clone())));
                            }
                            Value::Map(m)
                        })
                        .collect(),
                ),
            ),
            ("done".into(), done.to_value()),
            ("failed".into(), failed.to_value()),
            ("unfinished".into(), unfinished.to_value()),
            ("skipped_lines".into(), self.skipped_lines.to_value()),
            (
                "conflicts".into(),
                Value::Seq(
                    self.conflicts
                        .iter()
                        .map(|fp| Value::Str(format!("{fp:016x}")))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esteem_serve::{JobSpec, Journal};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("esteem-merge-{}-{name}", std::process::id()))
    }

    fn spec(workload: &str) -> JobSpec {
        JobSpec {
            workload: workload.into(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn merges_two_nodes_with_redispatch_under_done_precedence() {
        let p1 = tmp("w1.jsonl");
        let p2 = tmp("w2.jsonl");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
        {
            let j = Journal::open(&p1).unwrap();
            j.submit(1, 0xaa, &spec("gamess"));
            j.done(1);
            // Fingerprint 0xbb dispatched here but the node died.
            j.submit(2, 0xbb, &spec("mcf"));
        }
        {
            let j = Journal::open(&p2).unwrap();
            // Re-dispatched 0xbb finished on the second node.
            j.submit(1, 0xbb, &spec("mcf"));
            j.done(1);
        }
        let view = merge_journals(&[("w1".into(), &p1), ("w2".into(), &p2)]).unwrap();
        assert_eq!(view.jobs.len(), 2);
        assert_eq!(view.totals(), (2, 0, 0));
        assert!(view.conflicts.is_empty());
        let bb = view.jobs.iter().find(|j| j.fingerprint == 0xbb).unwrap();
        assert_eq!(bb.outcome, "done");
        assert_eq!(
            bb.attempts,
            vec![("w1".into(), "unfinished"), ("w2".into(), "done")]
        );
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn done_failed_disagreement_is_a_conflict() {
        let p1 = tmp("c1.jsonl");
        let p2 = tmp("c2.jsonl");
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
        {
            let j = Journal::open(&p1).unwrap();
            j.submit(1, 0xcc, &spec("gamess"));
            j.done(1);
        }
        {
            let j = Journal::open(&p2).unwrap();
            j.submit(1, 0xcc, &spec("gamess"));
            j.fail(1, "boom");
        }
        let view = merge_journals(&[("w1".into(), &p1), ("w2".into(), &p2)]).unwrap();
        assert_eq!(view.conflicts, vec![0xcc]);
        // Done still wins the fold; the conflict flags the investigation.
        assert_eq!(view.jobs[0].outcome, "done");
        assert_eq!(view.jobs[0].error.as_deref(), Some("boom"));
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }
}
