//! Consistent-hash ring with virtual nodes.
//!
//! Jobs are keyed by their run-cache fingerprint; the owner of a key is
//! the node whose nearest virtual point clockwise from the (re-hashed)
//! key comes first. Virtual nodes smooth the key distribution and bound
//! how much ownership moves on membership changes: removing a node
//! re-homes only that node's arcs, so identical sweep cells keep landing
//! on the node that already has them in its run cache.

/// Consistent-hash ring. Cheap to rebuild (tens of nodes × tens of
/// virtual points), so mutation rebuilds the sorted point list
/// wholesale rather than editing it incrementally.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    nodes: Vec<String>,
    /// Sorted `(point, node index)` pairs.
    points: Vec<(u64, usize)>,
}

/// FNV-1a over the node name: stable, decent avalanche for short keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HashRing {
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
            points: Vec::new(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Adds a node (no-op if present).
    pub fn add(&mut self, node: &str) {
        if self.contains(node) {
            return;
        }
        self.nodes.push(node.to_owned());
        self.rebuild();
    }

    /// Removes a node (no-op if absent).
    pub fn remove(&mut self, node: &str) {
        let before = self.nodes.len();
        self.nodes.retain(|n| n != node);
        if self.nodes.len() != before {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        // Sort nodes so the point layout is a pure function of the
        // membership *set*, independent of insertion order — a
        // coordinator restart that re-learns members in a different
        // order must shard identically.
        self.nodes.sort();
        self.points.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            let base = fnv1a(node.as_bytes());
            for v in 0..self.vnodes {
                self.points.push((splitmix64(base ^ (v as u64) << 1), i));
            }
        }
        self.points.sort_unstable();
    }

    /// The node owning `key` (first virtual point at or after the
    /// re-hashed key, wrapping), or `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = splitmix64(key);
        let idx = match self.points.binary_search_by_key(&h, |&(p, _)| p) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        };
        Some(&self.nodes[self.points[idx].1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD)
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(64);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let mut ring = HashRing::new(64);
        ring.add("only");
        for k in keys(100) {
            assert_eq!(ring.owner(k), Some("only"));
        }
    }

    #[test]
    fn ownership_is_insertion_order_independent() {
        let names = ["w1", "w2", "w3", "w4"];
        let mut a = HashRing::new(64);
        let mut b = HashRing::new(64);
        for n in names {
            a.add(n);
        }
        for n in names.iter().rev() {
            b.add(n);
        }
        for k in keys(500) {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    #[test]
    fn removal_only_remaps_the_removed_nodes_keys() {
        let mut ring = HashRing::new(64);
        for n in ["w1", "w2", "w3", "w4"] {
            ring.add(n);
        }
        let before: Vec<(u64, String)> = keys(1000)
            .map(|k| (k, ring.owner(k).unwrap().to_owned()))
            .collect();
        ring.remove("w3");
        for (k, owner) in &before {
            let now = ring.owner(*k).unwrap();
            if owner != "w3" {
                assert_eq!(now, owner, "key {k:#x} moved off a surviving node");
            } else {
                assert_ne!(now, "w3");
            }
        }
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let mut ring = HashRing::new(64);
        let names = ["w1", "w2", "w3", "w4"];
        for n in names {
            ring.add(n);
        }
        let mut counts = std::collections::HashMap::new();
        let total = 4000u64;
        for k in keys(total) {
            *counts
                .entry(ring.owner(k).unwrap().to_owned())
                .or_insert(0u64) += 1;
        }
        for n in names {
            let share = counts.get(n).copied().unwrap_or(0) as f64 / total as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "{n} owns {share:.2} of keys"
            );
        }
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = HashRing::new(8);
        ring.add("w1");
        ring.add("w1");
        assert_eq!(ring.len(), 1);
        ring.remove("w2");
        ring.remove("w1");
        ring.remove("w1");
        assert!(ring.is_empty());
    }
}
