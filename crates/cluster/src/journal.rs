//! Coordinator journal: crash-safe append-only record of sweeps, job
//! submissions, dispatch decisions, and outcomes.
//!
//! Same shape and philosophy as the worker journal
//! ([`esteem_serve::journal`]): one JSON object per line, flushed per
//! record, torn/corrupt lines skipped on replay. Reports are *not*
//! journaled — a recovered `done` job re-materializes its report from
//! the process-global run cache by fingerprint, and if the cache no
//! longer holds it the job is simply re-dispatched (the simulator is
//! deterministic, so the re-run reproduces the identical bytes).
//!
//! ```text
//! {"event":"sweep","sweep":1,"jobs":[1,2,3],"t":..}
//! {"event":"submit","job":1,"sweep":1,"fingerprint":"00ab..","spec":{..},"t":..}
//! {"event":"dispatch","job":1,"node":"w1","t":..}
//! {"event":"done","job":1,"t":..}
//! {"event":"fail","job":2,"error":"..","t":..}
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use esteem_serve::JobSpec;
use serde::{map_get, Deserialize, Serialize, Value};

/// Append-side handle; [`CoordJournal::none`] disables journaling.
pub struct CoordJournal {
    file: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    path: Option<PathBuf>,
}

fn epoch_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

impl CoordJournal {
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self {
            file: Some(Mutex::new(std::io::BufWriter::new(file))),
            path: Some(path.to_owned()),
        })
    }

    pub fn none() -> Self {
        Self {
            file: None,
            path: None,
        }
    }

    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn record(&self, mut fields: Vec<(String, Value)>) {
        let Some(file) = &self.file else { return };
        fields.push(("t".into(), epoch_secs().to_value()));
        let line = serde_json::to_string(&Value::Map(fields)).expect("journal record serializes");
        let mut w = file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }

    pub fn sweep(&self, sweep: u64, jobs: &[u64]) {
        self.record(vec![
            ("event".into(), Value::Str("sweep".into())),
            ("sweep".into(), sweep.to_value()),
            (
                "jobs".into(),
                Value::Seq(jobs.iter().map(|j| j.to_value()).collect()),
            ),
        ]);
    }

    pub fn submit(&self, job: u64, sweep: Option<u64>, fingerprint: u64, spec: &JobSpec) {
        let mut fields = vec![
            ("event".into(), Value::Str("submit".into())),
            ("job".into(), job.to_value()),
        ];
        if let Some(s) = sweep {
            fields.push(("sweep".into(), s.to_value()));
        }
        fields.push((
            "fingerprint".into(),
            Value::Str(format!("{fingerprint:016x}")),
        ));
        fields.push(("spec".into(), spec.to_value()));
        self.record(fields);
    }

    pub fn dispatch(&self, job: u64, node: &str) {
        self.record(vec![
            ("event".into(), Value::Str("dispatch".into())),
            ("job".into(), job.to_value()),
            ("node".into(), Value::Str(node.into())),
        ]);
    }

    pub fn done(&self, job: u64) {
        self.record(vec![
            ("event".into(), Value::Str("done".into())),
            ("job".into(), job.to_value()),
        ]);
    }

    pub fn fail(&self, job: u64, error: &str) {
        self.record(vec![
            ("event".into(), Value::Str("fail".into())),
            ("job".into(), job.to_value()),
            ("error".into(), Value::Str(error.into())),
        ]);
    }
}

/// Replayed outcome of one coordinator job.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordOutcome {
    /// Never finished (possibly dispatched at crash time): re-dispatch.
    Unfinished,
    /// Finished; the report re-materializes from the run cache or, if
    /// evicted, by re-dispatching (deterministic).
    Done,
    Failed(String),
}

#[derive(Debug, Clone, PartialEq)]
pub struct CoordRecoveredJob {
    pub id: u64,
    pub spec: JobSpec,
    pub fingerprint: u64,
    pub sweep: Option<u64>,
    /// Last dispatch target, informational only.
    pub last_node: Option<String>,
    pub outcome: CoordOutcome,
}

#[derive(Debug, Default)]
pub struct CoordRecovery {
    /// In submit order.
    pub jobs: Vec<CoordRecoveredJob>,
    /// sweep id -> member job ids, in cell order.
    pub sweeps: Vec<(u64, Vec<u64>)>,
    pub max_job_id: u64,
    pub max_sweep_id: u64,
    pub skipped_lines: u64,
}

/// Replays a coordinator journal; missing file = empty recovery.
pub fn recover(path: &Path) -> std::io::Result<CoordRecovery> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(CoordRecovery::default()),
        Err(e) => return Err(e),
    };
    let mut rec = CoordRecovery::default();
    let mut index: HashMap<u64, usize> = HashMap::new();
    for raw in bytes.split(|&b| b == b'\n') {
        if raw.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            rec.skipped_lines += 1;
            continue;
        };
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            rec.skipped_lines += 1;
            continue;
        };
        if apply(&mut rec, &mut index, &v).is_none() {
            rec.skipped_lines += 1;
        }
    }
    Ok(rec)
}

fn apply(rec: &mut CoordRecovery, index: &mut HashMap<u64, usize>, v: &Value) -> Option<()> {
    let m = v.as_map()?;
    let event = map_get(m, "event").ok()?.as_str()?;
    if event == "sweep" {
        let id = u64::from_value(map_get(m, "sweep").ok()?).ok()?;
        let jobs: Vec<u64> = map_get(m, "jobs")
            .ok()?
            .as_seq()?
            .iter()
            .map(|j| u64::from_value(j).ok())
            .collect::<Option<_>>()?;
        rec.max_sweep_id = rec.max_sweep_id.max(id);
        rec.sweeps.push((id, jobs));
        return Some(());
    }
    let id = u64::from_value(map_get(m, "job").ok()?).ok()?;
    rec.max_job_id = rec.max_job_id.max(id);
    match event {
        "submit" => {
            let spec = JobSpec::from_value(map_get(m, "spec").ok()?).ok()?;
            let fp = map_get(m, "fingerprint").ok()?.as_str()?;
            let fingerprint = u64::from_str_radix(fp, 16).ok()?;
            let sweep = match map_get(m, "sweep") {
                Ok(s) => Some(u64::from_value(s).ok()?),
                Err(_) => None,
            };
            index.insert(id, rec.jobs.len());
            rec.jobs.push(CoordRecoveredJob {
                id,
                spec,
                fingerprint,
                sweep,
                last_node: None,
                outcome: CoordOutcome::Unfinished,
            });
        }
        "dispatch" => {
            let node = map_get(m, "node").ok()?.as_str()?.to_owned();
            rec.jobs[*index.get(&id)?].last_node = Some(node);
        }
        "done" => {
            rec.jobs[*index.get(&id)?].outcome = CoordOutcome::Done;
        }
        "fail" => {
            let error = map_get(m, "error").ok()?.as_str()?.to_owned();
            rec.jobs[*index.get(&id)?].outcome = CoordOutcome::Failed(error);
        }
        _ => return None,
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "esteem-coord-journal-{}-{name}",
            std::process::id()
        ))
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            workload: "gamess".into(),
            seed,
            ..JobSpec::default()
        }
    }

    #[test]
    fn round_trips_sweeps_dispatches_and_outcomes() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = CoordJournal::open(&path).unwrap();
        j.sweep(1, &[1, 2]);
        j.submit(1, Some(1), 0xa, &spec(1));
        j.submit(2, Some(1), 0xb, &spec(2));
        j.submit(3, None, 0xc, &spec(3));
        j.dispatch(1, "w1");
        j.dispatch(2, "w2");
        j.done(1);
        j.fail(2, "boom");
        // Job 3 dispatched but unfinished at crash time.
        j.dispatch(3, "w1");
        drop(j);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.skipped_lines, 0);
        assert_eq!(rec.max_job_id, 3);
        assert_eq!(rec.max_sweep_id, 1);
        assert_eq!(rec.sweeps, vec![(1, vec![1, 2])]);
        assert_eq!(rec.jobs.len(), 3);
        assert_eq!(rec.jobs[0].outcome, CoordOutcome::Done);
        assert_eq!(rec.jobs[0].sweep, Some(1));
        assert_eq!(rec.jobs[0].last_node.as_deref(), Some("w1"));
        assert_eq!(rec.jobs[1].outcome, CoordOutcome::Failed("boom".into()));
        assert_eq!(rec.jobs[2].outcome, CoordOutcome::Unfinished);
        assert_eq!(rec.jobs[2].sweep, None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_and_orphans_are_skipped() {
        let path = tmp("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = CoordJournal::open(&path).unwrap();
        j.submit(1, None, 0x1, &spec(1));
        j.done(9); // orphan: no submit survived
        drop(j);
        {
            let mut f = std::fs::File::options().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"done\",\"jo").unwrap();
        }
        let rec = recover(&path).unwrap();
        assert_eq!(rec.skipped_lines, 2);
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].outcome, CoordOutcome::Unfinished);
        // The orphan still advances the id high-water mark.
        assert_eq!(rec.max_job_id, 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty() {
        let rec = recover(Path::new("/nonexistent/esteem-coord.jsonl")).unwrap();
        assert!(rec.jobs.is_empty() && rec.sweeps.is_empty());
    }
}
