//! The cluster coordinator daemon and journal-merge tool.
//!
//! ```text
//! esteem-coord [options]                 run the coordinator
//!   --addr <host:port>          bind address (default 127.0.0.1:7118;
//!                               port 0 picks an ephemeral port, printed
//!                               on stdout as "listening on <addr>")
//!   --journal <file>            coordinator journal; enables restart
//!                               recovery
//!   --vnodes <n>                virtual nodes per worker on the hash
//!                               ring (default 64)
//!   --workers-per-node <n>      dispatcher threads (= max in-flight
//!                               jobs) per worker (default 2)
//!   --heartbeat-timeout-ms <ms> declare a silent worker dead after
//!                               this (default 5000)
//!
//! esteem-coord merge <name>=<journal> [<name>=<journal> ...]
//!   fold per-worker journals into one JSON view on stdout (outcome
//!   precedence done > failed > unfinished; done/failed disagreements
//!   are listed under "conflicts")
//! ```
//!
//! The coordinator exits after `POST /v1/shutdown`.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use esteem_cluster::{merge_journals, CoordinatorOptions};

const HELP: &str = "usage: esteem-coord [--addr host:port] [--journal file] [--vnodes n] \
     [--workers-per-node n] [--heartbeat-timeout-ms ms]\n\
       esteem-coord merge name=journal [name=journal ...]";

fn parse() -> Result<CoordinatorOptions, String> {
    let mut opts = CoordinatorOptions {
        addr: "127.0.0.1:7118".into(),
        ..CoordinatorOptions::default()
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => opts.addr = next(&mut it, "--addr")?,
            "--journal" => opts.journal_path = Some(next(&mut it, "--journal")?.into()),
            "--vnodes" => {
                opts.dispatch.vnodes = next(&mut it, "--vnodes")?
                    .parse()
                    .map_err(|e| format!("--vnodes: {e}"))?;
                if opts.dispatch.vnodes == 0 {
                    return Err("--vnodes must be >= 1".into());
                }
            }
            "--workers-per-node" => {
                opts.dispatch.workers_per_node = next(&mut it, "--workers-per-node")?
                    .parse()
                    .map_err(|e| format!("--workers-per-node: {e}"))?;
                if opts.dispatch.workers_per_node == 0 {
                    return Err("--workers-per-node must be >= 1".into());
                }
            }
            "--heartbeat-timeout-ms" => {
                let ms: u64 = next(&mut it, "--heartbeat-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("--heartbeat-timeout-ms must be >= 1".into());
                }
                opts.dispatch.heartbeat_timeout = Duration::from_millis(ms);
                // Probe at least twice per timeout window.
                opts.dispatch.monitor_interval = Duration::from_millis((ms / 2).max(50));
            }
            "-h" | "--help" => return Err(HELP.into()),
            other => return Err(format!("unknown flag {other}\n{HELP}")),
        }
    }
    Ok(opts)
}

fn run_merge(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("merge needs at least one name=journal argument\n{HELP}");
        return ExitCode::FAILURE;
    }
    let mut inputs: Vec<(String, PathBuf)> = Vec::with_capacity(args.len());
    for arg in args {
        let Some((name, path)) = arg.split_once('=') else {
            eprintln!("merge argument '{arg}' is not name=journal");
            return ExitCode::FAILURE;
        };
        if name.is_empty() || path.is_empty() {
            eprintln!("merge argument '{arg}' is not name=journal");
            return ExitCode::FAILURE;
        }
        inputs.push((name.to_owned(), PathBuf::from(path)));
    }
    let borrowed: Vec<(String, &std::path::Path)> = inputs
        .iter()
        .map(|(n, p)| (n.clone(), p.as_path()))
        .collect();
    match merge_journals(&borrowed) {
        Ok(view) => {
            println!(
                "{}",
                serde_json::to_string_pretty(&view.to_value()).expect("serializes")
            );
            if view.conflicts.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "warning: {} fingerprint(s) with done/failed disagreement",
                    view.conflicts.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("merging journals: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return run_merge(&args[1..]);
    }
    let opts = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let coord = match esteem_cluster::spawn(opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("starting coordinator: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts parse this line for the ephemeral port; flush before
    // blocking.
    println!("listening on {}", coord.addr());
    let _ = std::io::stdout().flush();
    let drained = coord.wait();
    if !drained {
        eprintln!("warning: some connections did not drain before the timeout");
    }
    ExitCode::SUCCESS
}
