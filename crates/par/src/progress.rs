//! Minimal, dependency-free progress reporting for long experiment sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Thread-safe completion counter that optionally prints a one-line tick to
/// stderr each time a job finishes. Used by the experiment harness so that
/// multi-minute figure regenerations show liveness.
pub struct Progress {
    label: String,
    total: usize,
    done: AtomicUsize,
    enabled: bool,
    started: Instant,
}

impl Progress {
    pub fn new(label: &str, total: usize, enabled: bool) -> Self {
        Self {
            label: label.to_owned(),
            total,
            done: AtomicUsize::new(0),
            enabled,
            started: Instant::now(),
        }
    }

    /// Records one completed job; returns the new completion count.
    pub fn tick(&self) -> usize {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled {
            let secs = self.started.elapsed().as_secs_f64();
            eprintln!(
                "[{}] {}/{} done ({:.1}s elapsed)",
                if self.label.is_empty() {
                    "sweep"
                } else {
                    &self.label
                },
                done,
                self.total,
                secs
            );
        }
        done
    }

    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks() {
        let p = Progress::new("t", 3, false);
        assert_eq!(p.completed(), 0);
        assert_eq!(p.tick(), 1);
        assert_eq!(p.tick(), 2);
        assert_eq!(p.completed(), 2);
    }
}
