//! Deterministic, order-preserving parallel execution utilities.
//!
//! The ESTEEM reproduction runs hundreds of independent simulations per
//! figure (workload x technique x configuration). Each simulation is
//! single-threaded and deterministic; all parallelism in this repository
//! lives *above* the simulator, in this crate.
//!
//! The design intentionally avoids a global thread pool: every call to
//! [`parallel_map`] spins up scoped workers (via [`std::thread::scope`]) that
//! pull indices from a shared atomic cursor (dynamic self-scheduling, which
//! balances the very uneven run times of different benchmark simulations)
//! and write results into pre-allocated slots, preserving input order.
//!
//! Guarantees:
//! * Output order == input order, independent of thread count.
//! * A job panic is propagated to the caller (no lost results, no hangs).
//! * `threads == 1` degenerates to a plain sequential loop (no spawn), which
//!   makes `parallel_map` safe to call from within already-parallel code.

mod pool;
mod progress;
mod worker;

pub use pool::{
    panic_message, parallel_map, parallel_map_with, try_parallel_map, try_parallel_map_with,
    JobPanic, ParConfig,
};
pub use progress::Progress;
pub use worker::{PoolMetrics, SubmitError, WorkerPool};

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the machine parallelism,
/// clamped to the number of jobs by [`parallel_map`] at call time.
///
/// Honors the `ESTEEM_THREADS` environment variable when set (useful to make
/// CI runs or determinism tests single-threaded without code changes).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ESTEEM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::Mutex;

    /// `ESTEEM_THREADS` is process-global state: every test that touches
    /// it must hold this lock, or a concurrently running test could read
    /// a half-configured value.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Sets (or clears) `ESTEEM_THREADS` for the duration of a closure,
    /// restoring whatever was there before — even if the closure panics.
    fn with_threads_env<R>(value: Option<&str>, body: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prior = std::env::var("ESTEEM_THREADS").ok();
        struct Restore(Option<String>);
        impl Drop for Restore {
            fn drop(&mut self) {
                match &self.0 {
                    Some(v) => std::env::set_var("ESTEEM_THREADS", v),
                    None => std::env::remove_var("ESTEEM_THREADS"),
                }
            }
        }
        let _restore = Restore(prior);
        match value {
            Some(v) => std::env::set_var("ESTEEM_THREADS", v),
            None => std::env::remove_var("ESTEEM_THREADS"),
        }
        body()
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_override_respected() {
        with_threads_env(Some("3"), || {
            assert_eq!(default_threads(), 3);
        });
        with_threads_env(Some("0"), || {
            // Invalid values fall back to machine parallelism.
            assert!(default_threads() >= 1);
        });
    }
}
