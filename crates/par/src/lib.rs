//! Deterministic, order-preserving parallel execution utilities.
//!
//! The ESTEEM reproduction runs hundreds of independent simulations per
//! figure (workload x technique x configuration). Each simulation is
//! single-threaded and deterministic; all parallelism in this repository
//! lives *above* the simulator, in this crate.
//!
//! The design intentionally avoids a global thread pool: every call to
//! [`parallel_map`] spins up scoped workers (via [`crossbeam::thread`]) that
//! pull indices from a shared atomic cursor (dynamic self-scheduling, which
//! balances the very uneven run times of different benchmark simulations)
//! and write results into pre-allocated slots, preserving input order.
//!
//! Guarantees:
//! * Output order == input order, independent of thread count.
//! * A job panic is propagated to the caller (no lost results, no hangs).
//! * `threads == 1` degenerates to a plain sequential loop (no spawn), which
//!   makes `parallel_map` safe to call from within already-parallel code.

mod pool;
mod progress;

pub use pool::{parallel_map, parallel_map_with, ParConfig};
pub use progress::Progress;

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the machine parallelism,
/// clamped to the number of jobs by [`parallel_map`] at call time.
///
/// Honors the `ESTEEM_THREADS` environment variable when set (useful to make
/// CI runs or determinism tests single-threaded without code changes).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ESTEEM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_override_respected() {
        // Note: mutating the environment is process-global; keep the value
        // sane and restore afterwards so other tests are unaffected.
        std::env::set_var("ESTEEM_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::remove_var("ESTEEM_THREADS");
    }
}
