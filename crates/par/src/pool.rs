//! Order-preserving dynamic-scheduling parallel map.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Progress;

/// Configuration for [`parallel_map_with`].
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Worker thread count. Clamped to the job count; `1` runs inline.
    pub threads: usize,
    /// Optional human-readable label used by progress reporting.
    pub label: String,
    /// Emit per-job completion ticks to stderr when `true`.
    pub progress: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self {
            threads: crate::default_threads(),
            label: String::new(),
            progress: false,
        }
    }
}

/// Applies `f` to every element of `items` in parallel and returns the
/// results **in input order**.
///
/// Jobs are self-scheduled: workers repeatedly claim the next unclaimed
/// index from an atomic cursor. This gives good load balance when job
/// durations vary wildly (a `mcf` simulation is far slower than `gamess`).
///
/// # Panics
/// Propagates the panic of any job to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(&ParConfig::default(), items, f)
}

/// [`parallel_map`] with explicit configuration.
pub fn parallel_map_with<T, R, F>(cfg: &ParConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = cfg.threads.max(1).min(n.max(1));
    let progress = Progress::new(&cfg.label, n, cfg.progress);

    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .map(|it| {
                let r = f(it);
                progress.tick();
                r
            })
            .collect();
    }

    // Pre-allocated result slots; each index is written exactly once, by
    // the worker that claimed it, before the scope joins. `Option` lets us
    // avoid `R: Default` and assert full coverage at the end.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);

    {
        // Hand each worker a disjoint view of the slot vector through a
        // raw pointer wrapper; disjointness is guaranteed by the unique
        // claim of each index from `cursor`.
        struct SlotsPtr<R>(*mut Option<R>);
        unsafe impl<R: Send> Sync for SlotsPtr<R> {}
        let slots_ptr = SlotsPtr(slots.as_mut_ptr());

        // std::thread::scope joins every worker before returning and
        // re-raises any worker panic in the caller.
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cursor = &cursor;
                let f = &f;
                let slots_ptr = &slots_ptr;
                let progress = &progress;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&items[i]);
                    // SAFETY: index `i` was claimed exactly once via the
                    // atomic fetch_add, so no other thread writes slot `i`;
                    // the scope guarantees `slots` outlives all workers.
                    unsafe {
                        *slots_ptr.0.add(i) = Some(r);
                    }
                    progress.tick();
                });
            }
        });
    }

    slots
        .into_iter()
        .map(|s| s.expect("every slot written before scope join"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_independent_of_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let cfg = ParConfig {
                threads,
                ..ParConfig::default()
            };
            let out = parallel_map_with(&cfg, &items, |&x| x * x + 1);
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let items = vec![41u32];
        let out = parallel_map(&items, |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_job_durations_balance() {
        // Jobs with wildly different costs must still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let spins = if x % 7 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            // Return something order-dependent but cheap to verify.
            let _ = acc;
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn job_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let _ = parallel_map(&items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<u32> = (0..3).collect();
        let cfg = ParConfig {
            threads: 32,
            ..ParConfig::default()
        };
        let out = parallel_map_with(&cfg, &items, |&x| x + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
