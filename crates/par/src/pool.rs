//! Order-preserving dynamic-scheduling parallel map.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Progress;

/// One job's caught panic: the input index it was processing and the
/// panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    pub index: usize,
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Renders a `catch_unwind` payload as text (`panic!` with a string or
/// `String` payload; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Configuration for [`parallel_map_with`].
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Worker thread count. Clamped to the job count; `1` runs inline.
    pub threads: usize,
    /// Optional human-readable label used by progress reporting.
    pub label: String,
    /// Emit per-job completion ticks to stderr when `true`.
    pub progress: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self {
            threads: crate::default_threads(),
            label: String::new(),
            progress: false,
        }
    }
}

/// Applies `f` to every element of `items` in parallel and returns the
/// results **in input order**.
///
/// Jobs are self-scheduled: workers repeatedly claim the next unclaimed
/// index from an atomic cursor. This gives good load balance when job
/// durations vary wildly (a `mcf` simulation is far slower than `gamess`).
///
/// # Panics
/// Propagates the panic of any job to the caller — but only after every
/// other job has finished (a panicking simulation no longer aborts the
/// rest of the sweep mid-flight; use [`try_parallel_map`] to observe
/// per-item failures without panicking).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(&ParConfig::default(), items, f)
}

/// [`parallel_map`] with explicit configuration.
pub fn parallel_map_with<T, R, F>(cfg: &ParConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let results = try_parallel_map_with(cfg, items, f);
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

/// Panic-isolating [`parallel_map`]: each job runs under
/// `catch_unwind`, so one panicking item yields an `Err` slot while
/// every other item still completes and returns. Output order equals
/// input order.
pub fn try_parallel_map<T, R, F>(items: &[T], f: F) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map_with(&ParConfig::default(), items, f)
}

/// [`try_parallel_map`] with explicit configuration.
pub fn try_parallel_map_with<T, R, F>(
    cfg: &ParConfig,
    items: &[T],
    f: F,
) -> Vec<Result<R, JobPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = cfg.threads.max(1).min(n.max(1));
    let progress = Progress::new(&cfg.label, n, cfg.progress);
    let run_one = |i: usize| -> Result<R, JobPanic> {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    };

    if threads <= 1 || n <= 1 {
        return (0..n)
            .map(|i| {
                let r = run_one(i);
                progress.tick();
                r
            })
            .collect();
    }

    // Pre-allocated result slots; each index is written exactly once, by
    // the worker that claimed it, before the scope joins. `Option` lets us
    // avoid `R: Default` and assert full coverage at the end.
    let mut slots: Vec<Option<Result<R, JobPanic>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);

    {
        // Hand each worker a disjoint view of the slot vector through a
        // raw pointer wrapper; disjointness is guaranteed by the unique
        // claim of each index from `cursor`.
        struct SlotsPtr<R>(*mut Option<R>);
        unsafe impl<R: Send> Sync for SlotsPtr<R> {}
        let slots_ptr = SlotsPtr(slots.as_mut_ptr());

        // std::thread::scope joins every worker before returning; caught
        // job panics land in their slots instead of unwinding the worker.
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cursor = &cursor;
                let run_one = &run_one;
                let slots_ptr = &slots_ptr;
                let progress = &progress;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = run_one(i);
                    // SAFETY: index `i` was claimed exactly once via the
                    // atomic fetch_add, so no other thread writes slot `i`;
                    // the scope guarantees `slots` outlives all workers.
                    unsafe {
                        *slots_ptr.0.add(i) = Some(r);
                    }
                    progress.tick();
                });
            }
        });
    }

    slots
        .into_iter()
        .map(|s| s.expect("every slot written before scope join"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn order_independent_of_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let cfg = ParConfig {
                threads,
                ..ParConfig::default()
            };
            let out = parallel_map_with(&cfg, &items, |&x| x * x + 1);
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out = parallel_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let items = vec![41u32];
        let out = parallel_map(&items, |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn uneven_job_durations_balance() {
        // Jobs with wildly different costs must still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let spins = if x % 7 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            // Return something order-dependent but cheap to verify.
            let _ = acc;
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic]
    fn job_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let _ = parallel_map(&items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn try_map_isolates_panics_per_item() {
        // Regression: one panicking closure used to take down the whole
        // sweep; now it must flag only its own slot.
        let items: Vec<u32> = (0..64).collect();
        for threads in [1usize, 4] {
            let cfg = ParConfig {
                threads,
                ..ParConfig::default()
            };
            let out = try_parallel_map_with(&cfg, &items, |&x| {
                if x % 13 == 7 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 13 == 7 {
                    let p = r.as_ref().expect_err("slot must flag the panic");
                    assert_eq!(p.index, i);
                    assert_eq!(p.message, format!("boom at {i}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn map_panic_still_completes_other_items() {
        // The panic propagates, but only after every job ran: the panic
        // message names the *first* failed index, proving the sweep was
        // not aborted mid-flight by an unwinding worker.
        let items: Vec<u32> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(&items, |&x| {
                if x == 3 {
                    panic!("item three");
                }
                x
            })
        })
        .expect_err("must propagate");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("job 3"), "got: {msg}");
        assert!(msg.contains("item three"), "got: {msg}");
    }

    #[test]
    fn non_string_payload_is_rendered() {
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<u32> = (0..3).collect();
        let cfg = ParConfig {
            threads: 32,
            ..ParConfig::default()
        };
        let out = parallel_map_with(&cfg, &items, |&x| x + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
