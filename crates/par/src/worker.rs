//! Long-lived worker pool with a submit/shutdown lifecycle.
//!
//! [`parallel_map`](crate::parallel_map) spins workers up per call —
//! right for batch sweeps, wrong for a resident service that accepts
//! jobs over its whole lifetime. [`WorkerPool`] keeps a fixed set of
//! threads alive and feeds them closures through a bounded queue:
//!
//! * **Backpressure** — the queue is bounded; [`WorkerPool::submit`]
//!   blocks when it is full and [`WorkerPool::try_submit`] refuses, so a
//!   producer can shed load instead of buffering unboundedly.
//! * **Panic isolation** — each job runs under `catch_unwind`; a
//!   panicking job is counted and its worker keeps serving. A service
//!   must outlive any single bad request.
//! * **Graceful shutdown** — [`WorkerPool::shutdown`] stops intake,
//!   drains every queued job, and joins the workers.
//! * **Optional instrumentation** — [`WorkerPool::instrumented`]
//!   attaches a [`PoolMetrics`] (task-latency and queue-wait
//!   histograms, per-worker busy time). A plain [`WorkerPool::new`]
//!   pool takes no timestamps at all, so the simulator's refill pool
//!   stays zero-cost; the pool reports through [`StatsSource`] either
//!   way (queue depth, active, completed, panics).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use esteem_stats::{Histogram, Scope, StatsSource};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Latency/utilization instrumentation for a pool built with
/// [`WorkerPool::instrumented`]. Recording is lock-free
/// (histograms are atomic); collection happens through the pool's
/// [`StatsSource`] impl.
#[derive(Debug)]
pub struct PoolMetrics {
    /// Wall-clock run time of each executed job, microseconds.
    task_us: Histogram,
    /// Submit-to-dequeue wait of each executed job, microseconds.
    queue_wait_us: Histogram,
    /// Cumulative busy microseconds per worker.
    busy_us: Box<[AtomicU64]>,
    /// Utilization denominator: pool construction time.
    epoch: Instant,
}

impl PoolMetrics {
    fn new(threads: usize) -> Self {
        Self {
            task_us: Histogram::new(),
            queue_wait_us: Histogram::new(),
            busy_us: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
        }
    }

    /// Task-latency distribution so far.
    pub fn task_us(&self) -> esteem_stats::HistogramSnapshot {
        self.task_us.snapshot()
    }

    /// Queue-wait distribution so far.
    pub fn queue_wait_us(&self) -> esteem_stats::HistogramSnapshot {
        self.queue_wait_us.snapshot()
    }

    /// Fraction of wall time worker `i` spent running jobs since the
    /// pool started (clamped to 1.0 against timer skew).
    pub fn worker_utilization(&self, i: usize) -> f64 {
        let elapsed = self.epoch.elapsed().as_micros().max(1) as f64;
        (self.busy_us[i].load(Ordering::Relaxed) as f64 / elapsed).min(1.0)
    }

    /// Mean utilization across all workers.
    pub fn mean_utilization(&self) -> f64 {
        if self.busy_us.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.busy_us.len())
            .map(|i| self.worker_utilization(i))
            .sum();
        sum / self.busy_us.len() as f64
    }

    pub fn workers(&self) -> usize {
        self.busy_us.len()
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only from [`WorkerPool::try_submit`]).
    Full,
    /// The pool is shutting down and no longer accepts work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "worker pool queue is full"),
            SubmitError::Closed => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A queued closure plus its enqueue time (taken only when the pool is
/// instrumented, so plain pools never touch the clock).
struct QueuedJob {
    job: Job,
    queued_at: Option<Instant>,
}

struct State {
    queue: VecDeque<QueuedJob>,
    closed: bool,
    /// Jobs currently executing on a worker.
    active: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or the pool closes (workers wait).
    job_ready: Condvar,
    /// Signalled when a queue slot frees up (blocking submitters wait).
    slot_free: Condvar,
    /// Signalled when a job finishes (idle waiters).
    job_done: Condvar,
    capacity: usize,
    panics: AtomicU64,
    completed: AtomicU64,
    /// Present only on instrumented pools.
    metrics: Option<Arc<PoolMetrics>>,
}

/// Fixed-size pool of long-lived workers over a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one) behind a queue of
    /// `capacity` pending jobs (at least one). No instrumentation, no
    /// clock reads — the hot-path refill pool uses this.
    pub fn new(threads: usize, capacity: usize) -> Self {
        Self::build(threads, capacity, None)
    }

    /// Like [`Self::new`] but with a [`PoolMetrics`] attached: every
    /// executed job records queue wait and run time, and per-worker
    /// busy time accumulates for utilization reporting.
    pub fn instrumented(threads: usize, capacity: usize) -> Self {
        let metrics = Arc::new(PoolMetrics::new(threads.max(1)));
        Self::build(threads, capacity, Some(metrics))
    }

    fn build(threads: usize, capacity: usize, metrics: Option<Arc<PoolMetrics>>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
                active: 0,
            }),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
            job_done: Condvar::new(),
            capacity: capacity.max(1),
            panics: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            metrics,
        });
        let handles = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("esteem-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// The attached instrumentation (None on a plain [`Self::new`] pool).
    pub fn metrics(&self) -> Option<&Arc<PoolMetrics>> {
        self.shared.metrics.as_ref()
    }

    fn wrap(&self, job: Job) -> QueuedJob {
        QueuedJob {
            job,
            queued_at: self.shared.metrics.as_ref().map(|_| Instant::now()),
        }
    }

    /// Enqueues a job, blocking while the queue is at capacity.
    /// Fails only when the pool is closed.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let entry = self.wrap(job);
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(entry);
                self.shared.job_ready.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .slot_free
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues a job without blocking; refuses when full or closed.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let entry = self.wrap(job);
        let mut st = self.lock();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full);
        }
        st.queue.push_back(entry);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Jobs queued but not yet started.
    pub fn pending(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.lock().active
    }

    /// Jobs whose closure panicked (caught; the worker survived).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Jobs that ran to completion (including panicked ones).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Blocks until the queue is empty and no job is executing.
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while !st.queue.is_empty() || st.active > 0 {
            st = self
                .shared
                .job_done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops intake, drains every queued job, and joins the workers.
    pub fn shutdown(mut self) {
        self.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Workers never panic while holding the lock (jobs run outside
        // it), but recover from poisoning anyway: the queue is plain data.
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for WorkerPool {
    /// Dropping without [`Self::shutdown`] still closes intake and joins,
    /// so no worker thread outlives the pool handle.
    fn drop(&mut self) {
        self.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker_idx: usize) {
    loop {
        let entry = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(entry) = st.queue.pop_front() {
                    st.active += 1;
                    shared.slot_free.notify_one();
                    break entry;
                }
                if st.closed {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let started = shared.metrics.as_ref().map(|m| {
            if let Some(q) = entry.queued_at {
                m.queue_wait_us.record_duration_us(q.elapsed());
            }
            Instant::now()
        });
        if std::panic::catch_unwind(AssertUnwindSafe(entry.job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(m), Some(t0)) = (&shared.metrics, started) {
            let dt = t0.elapsed();
            m.task_us.record_duration_us(dt);
            m.busy_us[worker_idx].fetch_add(
                dt.as_micros().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.active -= 1;
        drop(st);
        shared.job_done.notify_all();
    }
}

impl StatsSource for WorkerPool {
    /// Queue depth, activity and (when instrumented) latency
    /// distributions plus per-worker utilization. Read-only.
    fn collect(&self, out: &mut Scope<'_>) {
        out.gauge("queue_depth", self.pending() as f64);
        out.gauge("active", self.active() as f64);
        out.counter("completed", self.completed());
        out.counter("panics", self.panics());
        if let Some(m) = &self.shared.metrics {
            out.histogram("task_us", m.task_us.snapshot());
            out.histogram("queue_wait_us", m.queue_wait_us.snapshot());
            out.gauge("utilization", m.mean_utilization());
            out.scope("workers", |s| {
                for i in 0..m.workers() {
                    s.gauge(&format!("{i}/utilization"), m.worker_utilization(i));
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(pool.completed(), 32);
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.submit(Box::new(|| panic!("bad job"))).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.submit(Box::new(move || {
            r.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
        pool.wait_idle();
        assert_eq!(pool.panics(), 1);
        assert_eq!(ran.load(Ordering::Relaxed), 1, "worker survived the panic");
        pool.shutdown();
    }

    #[test]
    fn try_submit_sheds_when_full() {
        // One worker blocked on a gate; queue of one fills with the next.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = WorkerPool::new(1, 1);
        let g = Arc::clone(&gate);
        pool.submit(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }))
        .unwrap();
        // Wait until the worker picked up the gated job.
        while pool.active() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(Box::new(|| {})).unwrap();
        assert_eq!(pool.try_submit(Box::new(|| {})), Err(SubmitError::Full));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.wait_idle();
        assert_eq!(pool.completed(), 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(2, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_micros(100));
                c.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 40, "drained before join");
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let pool = WorkerPool::new(1, 4);
        pool.close();
        assert_eq!(
            pool.submit(Box::new(|| {})).unwrap_err(),
            SubmitError::Closed
        );
        pool.shutdown();
    }

    #[test]
    fn instrumented_pool_records_latency_and_utilization() {
        let pool = WorkerPool::instrumented(2, 16);
        for _ in 0..10 {
            pool.submit(Box::new(|| {
                std::thread::sleep(Duration::from_millis(2));
            }))
            .unwrap();
        }
        pool.wait_idle();
        let m = pool.metrics().expect("instrumented pool has metrics");
        let task = m.task_us();
        assert_eq!(task.count(), 10);
        assert!(task.quantile(0.5) >= 1_000, "jobs slept ~2ms");
        assert_eq!(m.queue_wait_us().count(), 10);
        assert_eq!(m.workers(), 2);
        let util: f64 = (0..2).map(|i| m.worker_utilization(i)).sum();
        assert!(util > 0.0, "busy time accumulated");
        assert!(m.mean_utilization() <= 1.0);

        // StatsSource reports the distributions.
        let mut r = esteem_stats::StatsReading::new();
        r.register("pool", &pool);
        assert_eq!(r.histogram("pool/task_us").unwrap().count(), 10);
        assert_eq!(r.counter("pool/completed"), 10);
        pool.shutdown();
    }

    #[test]
    fn plain_pool_reports_stats_without_metrics() {
        let pool = WorkerPool::new(1, 4);
        assert!(pool.metrics().is_none());
        pool.submit(Box::new(|| {})).unwrap();
        pool.wait_idle();
        let mut r = esteem_stats::StatsReading::new();
        r.register("pool", &pool);
        assert_eq!(r.counter("pool/completed"), 1);
        assert!(r.histogram("pool/task_us").is_none(), "no histograms");
        pool.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 8);
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap();
            }
        }
        // Drop closed intake and joined after draining.
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
