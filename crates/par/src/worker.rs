//! Long-lived worker pool with a submit/shutdown lifecycle.
//!
//! [`parallel_map`](crate::parallel_map) spins workers up per call —
//! right for batch sweeps, wrong for a resident service that accepts
//! jobs over its whole lifetime. [`WorkerPool`] keeps a fixed set of
//! threads alive and feeds them closures through a bounded queue:
//!
//! * **Backpressure** — the queue is bounded; [`WorkerPool::submit`]
//!   blocks when it is full and [`WorkerPool::try_submit`] refuses, so a
//!   producer can shed load instead of buffering unboundedly.
//! * **Panic isolation** — each job runs under `catch_unwind`; a
//!   panicking job is counted and its worker keeps serving. A service
//!   must outlive any single bad request.
//! * **Graceful shutdown** — [`WorkerPool::shutdown`] stops intake,
//!   drains every queued job, and joins the workers.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (only from [`WorkerPool::try_submit`]).
    Full,
    /// The pool is shutting down and no longer accepts work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "worker pool queue is full"),
            SubmitError::Closed => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct State {
    queue: VecDeque<Job>,
    closed: bool,
    /// Jobs currently executing on a worker.
    active: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or the pool closes (workers wait).
    job_ready: Condvar,
    /// Signalled when a queue slot frees up (blocking submitters wait).
    slot_free: Condvar,
    /// Signalled when a job finishes (idle waiters).
    job_done: Condvar,
    capacity: usize,
    panics: AtomicU64,
    completed: AtomicU64,
}

/// Fixed-size pool of long-lived workers over a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one) behind a queue of
    /// `capacity` pending jobs (at least one).
    pub fn new(threads: usize, capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
                active: 0,
            }),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
            job_done: Condvar::new(),
            capacity: capacity.max(1),
            panics: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let handles = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("esteem-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Enqueues a job, blocking while the queue is at capacity.
    /// Fails only when the pool is closed.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(job);
                self.shared.job_ready.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .slot_free
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues a job without blocking; refuses when full or closed.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut st = self.lock();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full);
        }
        st.queue.push_back(job);
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Jobs queued but not yet started.
    pub fn pending(&self) -> usize {
        self.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.lock().active
    }

    /// Jobs whose closure panicked (caught; the worker survived).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Jobs that ran to completion (including panicked ones).
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Blocks until the queue is empty and no job is executing.
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while !st.queue.is_empty() || st.active > 0 {
            st = self
                .shared
                .job_done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops intake, drains every queued job, and joins the workers.
    pub fn shutdown(mut self) {
        self.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.shared.job_ready.notify_all();
        self.shared.slot_free.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // Workers never panic while holding the lock (jobs run outside
        // it), but recover from poisoning anyway: the queue is plain data.
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for WorkerPool {
    /// Dropping without [`Self::shutdown`] still closes intake and joins,
    /// so no worker thread outlives the pool handle.
    fn drop(&mut self) {
        self.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.active += 1;
                    shared.slot_free.notify_one();
                    break job;
                }
                if st.closed {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.completed.fetch_add(1, Ordering::Relaxed);
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.active -= 1;
        drop(st);
        shared.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(4, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 32);
        assert_eq!(pool.completed(), 32);
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.submit(Box::new(|| panic!("bad job"))).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.submit(Box::new(move || {
            r.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
        pool.wait_idle();
        assert_eq!(pool.panics(), 1);
        assert_eq!(ran.load(Ordering::Relaxed), 1, "worker survived the panic");
        pool.shutdown();
    }

    #[test]
    fn try_submit_sheds_when_full() {
        // One worker blocked on a gate; queue of one fills with the next.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = WorkerPool::new(1, 1);
        let g = Arc::clone(&gate);
        pool.submit(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }))
        .unwrap();
        // Wait until the worker picked up the gated job.
        while pool.active() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(Box::new(|| {})).unwrap();
        assert_eq!(pool.try_submit(Box::new(|| {})), Err(SubmitError::Full));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.wait_idle();
        assert_eq!(pool.completed(), 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(2, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_micros(100));
                c.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 40, "drained before join");
    }

    #[test]
    fn submit_after_shutdown_refused() {
        let pool = WorkerPool::new(1, 4);
        pool.close();
        assert_eq!(
            pool.submit(Box::new(|| {})).unwrap_err(),
            SubmitError::Closed
        );
        pool.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 8);
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                pool.submit(Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap();
            }
        }
        // Drop closed intake and joined after draining.
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}
