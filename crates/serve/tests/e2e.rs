//! End-to-end tests: a real daemon on an ephemeral port, driven over
//! real sockets through the client library (and, in one test, through
//! the actual `esteem-serve`/`esteem-client` binaries).
//!
//! Each test runs its own daemon. Specs use per-test seeds so their
//! run-cache fingerprints never collide across tests (the run cache is
//! process-global); colliding on purpose is exactly what the dedupe
//! tests do.

use std::time::Duration;

use esteem_core::Simulator;
use esteem_serve::{client, spawn, AdmissionOptions, JobSpec, ServerOptions};
use serde::{map_get, Deserialize, Serialize, Value};

fn opts() -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 8,
        ..ServerOptions::default()
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        workload: "gamess".into(),
        instructions: 200_000,
        seed,
        ..JobSpec::default()
    }
}

/// A spec with a tiny warm-up. The scheduling/admission tests care
/// about queue physics, not simulator fidelity, and the default
/// 35 M-cycle warm-up costs seconds per job in debug builds.
fn quick(seed: u64) -> JobSpec {
    JobSpec {
        instructions: 20_000,
        warmup: Some(200_000),
        ..spec(seed)
    }
}

#[test]
fn submit_poll_fetch_matches_cli_path_byte_for_byte() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();

    let spec = spec(0xE2E1);
    let resp = client::submit(&addr, &spec).unwrap();
    assert!(!resp.coalesced);
    let result = client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
    let via_daemon = serde_json::to_string_pretty(&result).unwrap();

    // The CLI path: resolve the same options and run the simulator
    // directly, printing with the same pretty serializer as
    // `esteem-sim --json`.
    let r = spec.resolve().unwrap();
    let report = Simulator::new(r.cfg, &r.profiles, &r.label).run();
    let via_cli = serde_json::to_string_pretty(&report.to_value()).unwrap();

    assert_eq!(via_daemon, via_cli, "daemon result must be byte-identical");

    daemon.shutdown();
    assert!(daemon.wait());
}

#[test]
fn duplicate_inflight_submissions_coalesce_to_one_execution() {
    let daemon = spawn(ServerOptions {
        start_paused: true,
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();

    let spec = spec(0xE2E2);
    let first = client::submit(&addr, &spec).unwrap();
    assert!(!first.coalesced && !first.cached);
    // Scheduler is paused, so the first submission is still queued:
    // identical specs must coalesce onto it, not run again.
    let second = client::submit(&addr, &spec).unwrap();
    assert!(second.coalesced, "identical in-flight spec must coalesce");
    assert_eq!(
        second.job, first.job,
        "coalesced submit returns the primary id"
    );

    daemon.resume();
    let a = client::fetch(&addr, first.job, Duration::from_millis(20)).unwrap();
    let b = client::fetch(&addr, second.job, Duration::from_millis(20)).unwrap();
    assert_eq!(a, b);

    // Counters prove a single execution: one coalesce recorded, exactly
    // one job completed (the primary), nothing else submitted or run.
    assert_eq!(
        daemon
            .counters()
            .coalesced
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        daemon
            .counters()
            .submitted
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        daemon
            .counters()
            .completed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn resubmitting_a_finished_config_is_served_from_the_run_cache() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let spec = spec(0xE2E3);
    let first = client::submit(&addr, &spec).unwrap();
    client::fetch(&addr, first.job, Duration::from_millis(20)).unwrap();
    let again = client::submit(&addr, &spec).unwrap();
    assert!(again.cached, "finished config must be a run-cache hit");
    assert_ne!(
        again.job, first.job,
        "cached submit still gets its own job id"
    );
    let (state, _) = client::poll(&addr, again.job).unwrap();
    assert_eq!(state, "done");
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn panicking_simulation_fails_the_job_but_daemon_keeps_serving() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();

    // a_min = 0 violates the configuration invariants; the simulator's
    // validation panics inside the worker.
    let bad = JobSpec {
        a_min: 0,
        ..spec(0xE2E4)
    };
    let resp = client::submit(&addr, &bad).unwrap();
    let err = client::fetch(&addr, resp.job, Duration::from_millis(20))
        .expect_err("invalid config must fail the job");
    assert!(err.contains("failed"), "got: {err}");
    let (state, v) = client::poll(&addr, resp.job).unwrap();
    assert_eq!(state, "failed");
    let error = v
        .as_map()
        .and_then(|m| map_get(m, "error").ok())
        .and_then(|e| e.as_str())
        .unwrap_or_default()
        .to_owned();
    assert!(!error.is_empty(), "failed job must carry the panic message");

    // The daemon survived: a good job on the same daemon completes.
    let good = client::submit(&addr, &spec(0xE2E5)).unwrap();
    client::fetch(&addr, good.job, Duration::from_millis(20)).unwrap();
    assert_eq!(
        daemon
            .counters()
            .failed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn full_queue_sheds_with_429() {
    let daemon = spawn(ServerOptions {
        queue_capacity: 1,
        start_paused: true,
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    client::submit(&addr, &spec(0xE2E6)).unwrap();
    let err = client::submit(&addr, &spec(0xE2E7)).expect_err("second submit must shed");
    assert!(
        err.contains("429") && err.contains("queue full"),
        "got: {err}"
    );
    assert_eq!(
        daemon
            .counters()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    daemon.resume();
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn events_stream_carries_interval_samples() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    // Short reconfiguration interval so a small run still emits several
    // interval records.
    let spec = JobSpec {
        interval: 100_000,
        instructions: 1_000_000,
        ..spec(0xE2E8)
    };
    let resp = client::submit(&addr, &spec).unwrap();
    let mut lines = Vec::new();
    let status = client::stream_lines(&addr, &format!("/v1/jobs/{}/events", resp.job), |l| {
        lines.push(l.to_owned());
    })
    .unwrap();
    assert_eq!(status, 200);
    assert!(!lines.is_empty(), "expected at least one interval sample");
    for line in &lines {
        let v: Value = serde_json::from_str(line).unwrap();
        let m = v.as_map().expect("sample is an object");
        assert!(map_get(m, "cycle").is_ok() && map_get(m, "refreshes").is_ok());
    }
    // The stream ended because the job finished.
    let (state, _) = client::poll(&addr, resp.job).unwrap();
    assert_eq!(state, "done");
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn metrics_exposes_serve_runcache_and_http_counters() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2E9)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
    let text = client::metrics(&addr).unwrap();
    for needle in [
        "serve/jobs_submitted 1",
        "serve/jobs_completed 1",
        "serve/queue_depth",
        "runcache/hits",
        "runcache/misses",
        "http/requests",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn trace_spans_cover_queue_wait_cache_and_run() {
    use esteem_trace::TraceEvent;
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2EA)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
    let names: Vec<String> = daemon
        .trace_events()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Span { name, .. } => Some(name),
            _ => None,
        })
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with("queue_wait")),
        "queue-wait span missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "job.cache_lookup"),
        "cache-lookup span missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "job.run"),
        "run span missing: {names:?}"
    );
    daemon.shutdown();
    daemon.wait();
}

#[test]
fn journal_recovery_restores_done_jobs_and_requeues_unfinished() {
    let dir = std::env::temp_dir().join(format!("esteem-e2e-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    // First daemon: complete one job, then shut down.
    let done_spec = spec(0xE2EB);
    let first_id = {
        let daemon = spawn(ServerOptions {
            journal_path: Some(journal.clone()),
            ..opts()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let resp = client::submit(&addr, &done_spec).unwrap();
        client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();
        daemon.shutdown();
        daemon.wait();
        resp.job
    };

    // Simulate a crash with one accepted-but-unfinished job: append its
    // submit record by hand (as a crashed daemon would have left it).
    let unfinished_spec = spec(0xE2EC);
    let unfinished_id = first_id + 10;
    {
        let j = esteem_serve::Journal::open(&journal).unwrap();
        let fp = unfinished_spec.resolve().unwrap().fingerprint;
        j.submit(unfinished_id, fp, &unfinished_spec);
        j.start(unfinished_id);
    }

    // Second daemon on the same journal: the done job is restored, the
    // unfinished one is re-queued and runs to completion.
    let daemon = spawn(ServerOptions {
        journal_path: Some(journal.clone()),
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    assert!(
        daemon
            .counters()
            .recovered
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 2
    );
    let (state, v) = client::poll(&addr, first_id).unwrap();
    assert_eq!(state, "done", "finished job must survive the restart");
    assert!(
        v.as_map()
            .map(|m| map_get(m, "result").is_ok())
            .unwrap_or(false),
        "restored job must carry its result"
    );
    let recovered = client::fetch(&addr, unfinished_id, Duration::from_millis(20)).unwrap();
    let expected = {
        let r = unfinished_spec.resolve().unwrap();
        Simulator::new(r.cfg, &r.profiles, &r.label)
            .run()
            .to_value()
    };
    assert_eq!(
        serde_json::to_string(&recovered).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "re-run recovered job reproduces the identical report"
    );
    daemon.shutdown();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption injection: clobber a line in the *middle* of the journal
/// (with non-UTF-8 bytes, the nastiest case) and restart. The daemon must
/// boot, count the skipped line, and still recover every intact record.
#[test]
fn journal_recovery_survives_corrupt_middle_line() {
    let dir = std::env::temp_dir().join(format!("esteem-e2e-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    // First daemon: run two jobs to completion, producing at least
    // submit/start/done triples for each.
    let spec_a = spec(0xE2ED);
    let spec_b = spec(0xE2EE);
    let (id_a, id_b) = {
        let daemon = spawn(ServerOptions {
            journal_path: Some(journal.clone()),
            ..opts()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let ra = client::submit(&addr, &spec_a).unwrap();
        client::fetch(&addr, ra.job, Duration::from_millis(20)).unwrap();
        let rb = client::submit(&addr, &spec_b).unwrap();
        client::fetch(&addr, rb.job, Duration::from_millis(20)).unwrap();
        daemon.shutdown();
        daemon.wait();
        (ra.job, rb.job)
    };

    // Clobber job A's `done` line in place with invalid UTF-8, leaving
    // every other line (including job B's whole history) intact.
    let bytes = std::fs::read(&journal).unwrap();
    let needle = format!("\"event\":\"done\",\"job\":{id_a}");
    let mut out = Vec::new();
    let mut clobbered = false;
    for line in bytes.split(|&b| b == b'\n') {
        if !clobbered && String::from_utf8_lossy(line).contains(&needle) {
            out.extend(vec![0xFE_u8; line.len()]);
            clobbered = true;
        } else {
            out.extend_from_slice(line);
        }
        out.push(b'\n');
    }
    assert!(clobbered, "done record for job {id_a} not found in journal");
    std::fs::write(&journal, out).unwrap();

    // Second daemon: boots despite the corruption, reports the skipped
    // line, keeps job B done, and re-queues job A (its `done` was lost,
    // so it replays as unfinished) to the identical deterministic result.
    let daemon = spawn(ServerOptions {
        journal_path: Some(journal.clone()),
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    assert_eq!(
        daemon
            .counters()
            .journal_skipped
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "exactly the clobbered line is skipped"
    );
    let (state_b, _) = client::poll(&addr, id_b).unwrap();
    assert_eq!(state_b, "done", "intact job must survive the corruption");
    let report_a = client::fetch(&addr, id_a, Duration::from_millis(20)).unwrap();
    let expected = {
        let r = spec_a.resolve().unwrap();
        Simulator::new(r.cfg, &r.profiles, &r.label)
            .run()
            .to_value()
    };
    assert_eq!(
        serde_json::to_string(&report_a).unwrap(),
        serde_json::to_string(&expected).unwrap(),
        "re-run of the job with the lost `done` reproduces its report"
    );
    let text = client::metrics(&addr).unwrap();
    assert!(
        text.contains("journal_skipped_lines"),
        "skipped-line counter must be exported in /metrics:\n{text}"
    );
    daemon.shutdown();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_specs_and_bad_routes_get_clean_errors() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    // Unknown workload.
    let err = client::submit(
        &addr,
        &JobSpec {
            workload: "not-a-benchmark".into(),
            ..JobSpec::default()
        },
    )
    .expect_err("unknown workload rejected");
    assert!(err.contains("400"), "got: {err}");
    // Unknown field in the spec body.
    let (status, body) = client::request(
        &addr,
        "POST",
        "/v1/jobs",
        Some("{\"workload\":\"gamess\",\"retentoin_us\":40}"),
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("retentoin_us"), "got: {body}");
    // Unknown job id and unknown route.
    let (status, _) = client::request(&addr, "GET", "/v1/jobs/999999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(&addr, "GET", "/v1/nope", None).unwrap();
    assert_eq!(status, 404);
    // Wrong method.
    let (status, _) = client::request(&addr, "PUT", "/v1/jobs", None).unwrap();
    assert_eq!(status, 405);
    assert_eq!(
        daemon
            .counters()
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    daemon.shutdown();
    daemon.wait();
}

/// Inject a known latency population directly into the daemon's stage
/// histograms, then read the percentiles back through `/v1/status`. The
/// histogram's documented bound is 1/64 (~1.6%) relative error.
#[test]
fn status_reports_percentiles_for_injected_latencies() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let m = daemon.serve_metrics();
    for us in 1..=1000u64 {
        m.submit_us.record(us);
    }
    m.record_e2e(esteem_serve::Outcome::Done, "injector", 4096);

    let (status, body) = client::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let stage = |v: &Value, path: &[&str]| -> Value {
        let mut cur = v.clone();
        for p in path {
            cur = cur
                .as_map()
                .and_then(|m| map_get(m, p).ok())
                .unwrap_or_else(|| panic!("missing {p} in {body}"))
                .clone();
        }
        cur
    };
    let num = |v: &Value, key: &str| -> u64 {
        match stage(v, &[key]) {
            Value::U64(n) => n,
            Value::I64(n) => n as u64,
            Value::F64(f) => f as u64,
            other => panic!("{key} is not numeric: {other:?}"),
        }
    };
    let submit = stage(&v, &["stages", "submit_us"]);
    assert_eq!(num(&submit, "count"), 1000);
    // Exact ranks of the uniform 1..=1000 population, with the 1/64
    // relative-error ceiling on the reported bucket upper bound.
    for (q, exact) in [("p50_us", 500u64), ("p95_us", 950), ("p99_us", 990)] {
        let got = num(&submit, q);
        assert!(
            got >= exact && got as f64 <= exact as f64 * (1.0 + 1.0 / 64.0) + 1.0,
            "{q}: got {got}, exact {exact}"
        );
    }
    assert_eq!(num(&submit, "max_us"), 1000);
    let e2e_done = stage(&v, &["e2e_us", "done"]);
    assert_eq!(num(&e2e_done, "count"), 1);
    assert_eq!(num(&e2e_done, "p50_us"), 4096, "4096 sits on a bucket edge");

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn status_and_flight_recorder_cover_a_real_job() {
    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2F0)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();

    let (status, body) = client::request(&addr, "GET", "/v1/status", None).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let m = v.as_map().unwrap();
    assert_eq!(
        map_get(m, "version").unwrap().as_str().unwrap(),
        env!("CARGO_PKG_VERSION")
    );
    let workers = map_get(m, "workers").unwrap().as_map().unwrap();
    assert_eq!(map_get(workers, "count").unwrap(), &(2u64.to_value()));
    let per = map_get(workers, "per_worker").unwrap().as_seq().unwrap();
    assert_eq!(per.len(), 2, "one utilization entry per worker");
    let stages = map_get(m, "stages").unwrap().as_map().unwrap();
    for name in [
        "submit_us",
        "queue_wait_us",
        "cache_lookup_us",
        "run_us",
        "serialize_us",
    ] {
        let st = map_get(stages, name).unwrap().as_map().unwrap();
        let count = u64::from_value(map_get(st, "count").unwrap()).unwrap();
        assert!(count >= 1, "stage {name} recorded nothing:\n{body}");
    }

    // The flight recorder holds the job's trip with its stage split.
    let (status, body) = client::request(&addr, "GET", "/v1/flight-recorder", None).unwrap();
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&body).unwrap();
    let jobs = v
        .as_map()
        .and_then(|m| map_get(m, "jobs").ok())
        .and_then(|j| j.as_seq())
        .expect("flight recorder has a jobs array");
    let entry = jobs
        .iter()
        .find(|j| {
            j.as_map()
                .and_then(|m| map_get(m, "job").ok())
                .is_some_and(|id| id == &resp.job.to_value())
        })
        .unwrap_or_else(|| panic!("job {} not in flight recorder:\n{body}", resp.job));
    let em = entry.as_map().unwrap();
    assert_eq!(map_get(em, "outcome").unwrap().as_str().unwrap(), "done");
    let run_us = u64::from_value(map_get(em, "run_us").unwrap()).unwrap();
    let e2e_us = u64::from_value(map_get(em, "e2e_us").unwrap()).unwrap();
    assert!(run_us > 0 && e2e_us >= run_us, "run {run_us}, e2e {e2e_us}");
    // Trace events ride along (non-destructively: the daemon accessor
    // still sees them afterwards).
    assert!(v
        .as_map()
        .and_then(|m| map_get(m, "trace").ok())
        .and_then(|t| t.as_seq())
        .is_some_and(|t| !t.is_empty()));
    assert!(!daemon.trace_events().is_empty());

    daemon.shutdown();
    daemon.wait();
}

#[test]
fn metrics_expose_histograms_build_info_and_content_type() {
    use std::io::{Read as _, Write as _};

    let daemon = spawn(opts()).unwrap();
    let addr = daemon.addr().to_string();
    let resp = client::submit(&addr, &spec(0xE2F1)).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20)).unwrap();

    let text = client::metrics(&addr).unwrap();
    for needle in [
        "serve/stage/run_us_bucket{le=\"",
        "serve/stage/run_us_bucket{le=\"+Inf\"}",
        "serve/stage/run_us_count 1",
        "serve/stage/run_us_sum ",
        "serve/stage/e2e_us_bucket{outcome=\"done\",le=\"",
        "serve/uptime_seconds",
        &format!(
            "serve/build_info{{version=\"{}\",git=",
            env!("CARGO_PKG_VERSION")
        ),
        "pool/task_us_count",
        "pool/workers/0/utilization",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The exposition content type (client::request drops headers, so go
    // over a raw socket).
    let mut s = std::net::TcpStream::connect(daemon.addr()).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(
        out.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "exposition content type missing:\n{}",
        out.lines().take(8).collect::<Vec<_>>().join("\n")
    );

    daemon.shutdown();
    daemon.wait();
}

/// A panicking job triggers the crash dump: the flight-recorder body is
/// written to the configured path, with the failed job in it.
#[test]
fn panicking_job_writes_flight_dump() {
    let dir = std::env::temp_dir().join(format!("esteem-e2e-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.json");

    let daemon = spawn(ServerOptions {
        flight_dump: Some(dump.clone()),
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let bad = JobSpec {
        a_min: 0,
        ..spec(0xE2F2)
    };
    let resp = client::submit(&addr, &bad).unwrap();
    client::fetch(&addr, resp.job, Duration::from_millis(20))
        .expect_err("invalid config must fail the job");

    // The dump lands just after the job turns terminal; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let text = loop {
        match std::fs::read_to_string(&dump) {
            Ok(t) if !t.is_empty() => break t,
            _ if std::time::Instant::now() > deadline => {
                panic!("flight dump never appeared at {}", dump.display())
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let v: Value = serde_json::from_str(&text).unwrap();
    let jobs = v
        .as_map()
        .and_then(|m| map_get(m, "jobs").ok())
        .and_then(|j| j.as_seq())
        .expect("dump has a jobs array");
    assert!(
        jobs.iter().any(|j| {
            j.as_map()
                .is_some_and(|m| map_get(m, "outcome").is_ok_and(|o| o.as_str() == Some("failed")))
        }),
        "failed job missing from dump:\n{text}"
    );

    daemon.shutdown();
    daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The real binaries, end to end: daemon process on an ephemeral port,
/// driven by `esteem-client` submit/poll/fetch/shutdown.
#[test]
fn daemon_and_client_binaries_round_trip() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("esteem-e2e-bin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_esteem-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    std::io::BufReader::new(daemon.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
        .to_owned();

    let client_bin = env!("CARGO_BIN_EXE_esteem-client");
    let run = |args: &[&str]| {
        let out = Command::new(client_bin)
            .arg(&addr)
            .args(args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "esteem-client {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let submitted = run(&[
        "submit",
        "--instructions",
        "200000",
        "--seed",
        "60910",
        "gamess",
    ]);
    let id = submitted
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("unexpected submit output: {submitted:?}"))
        .to_owned();
    let fetched = run(&["fetch", &id]);

    // Byte-identity with the CLI path, via the same serializer.
    let expected = {
        let spec = JobSpec {
            workload: "gamess".into(),
            instructions: 200_000,
            seed: 60910,
            ..JobSpec::default()
        };
        let r = spec.resolve().unwrap();
        let report = Simulator::new(r.cfg, &r.profiles, &r.label).run();
        serde_json::to_string_pretty(&report.to_value()).unwrap()
    };
    assert_eq!(fetched.trim_end(), expected);

    let metrics = run(&["metrics"]);
    assert!(
        metrics.contains("serve/jobs_submitted 1"),
        "got:\n{metrics}"
    );

    // The dashboard binary against the live daemon, in one-shot mode.
    let top = Command::new(env!("CARGO_BIN_EXE_esteem-top"))
        .args([addr.as_str(), "--once"])
        .output()
        .unwrap();
    assert!(
        top.status.success(),
        "esteem-top --once failed: {}",
        String::from_utf8_lossy(&top.stderr)
    );
    let dash = String::from_utf8(top.stdout).unwrap();
    for needle in [
        "esteem-top —",
        "queue depth",
        "workers",
        "p95",
        "run",
        "e2e done",
    ] {
        assert!(dash.contains(needle), "missing {needle:?} in:\n{dash}");
    }

    run(&["shutdown"]);
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon exit: {status:?}");
    // The journal artifact exists and records the whole lifecycle.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert!(journal_text.contains("\"submit\"") && journal_text.contains("\"done\""));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Admission control, priority aging, Retry-After, and the load harness.

/// Blocks until `read()` reaches `at_least` (short poll, long timeout).
fn wait_for(read: impl Fn() -> u64, at_least: u64, what: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while read() < at_least {
        assert!(
            std::time::Instant::now() < deadline,
            "timeout waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Token-bucket refusal is per-client: alice exhausting her burst does
/// not touch bob's bucket, and every shed carries Retry-After hints in
/// both the error string and the raw response headers.
#[test]
fn rate_limit_refuses_per_client_with_retry_hints() {
    let daemon = spawn(ServerOptions {
        start_paused: true,
        queue_capacity: 16,
        admission: AdmissionOptions {
            rate_per_sec: Some(0.5),
            burst: 2.0,
            ..AdmissionOptions::default()
        },
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();
    let with_client = |seed: u64, client: &str| JobSpec {
        client: client.into(),
        ..quick(seed)
    };

    // Alice's burst of 2 is admitted; her third submit is refused.
    client::submit(&addr, &with_client(0xAC01, "alice")).unwrap();
    client::submit(&addr, &with_client(0xAC02, "alice")).unwrap();
    let err = client::submit(&addr, &with_client(0xAC03, "alice"))
        .expect_err("third submit in the burst window must shed");
    assert!(
        err.contains("429") && err.contains("rate limited"),
        "got: {err}"
    );
    let hint = client::retry_after_ms_from_error(&err)
        .expect("shed error must embed the Retry-After hint");
    assert!(hint >= 1, "hint {hint}ms");

    // Bob sails through on his own bucket while alice is throttled.
    client::submit(&addr, &with_client(0xAC04, "bob")).unwrap();

    // The raw 429 response carries both header forms.
    let body = serde_json::to_string(&with_client(0xAC05, "alice").to_value()).unwrap();
    let (status, headers, resp) = client::request_full(
        &addr,
        "POST",
        "/v1/jobs",
        Some(&body),
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(status, 429, "got {status}: {resp}");
    assert!(
        headers.iter().any(|(k, _)| k == "retry-after"),
        "Retry-After missing: {headers:?}"
    );
    assert!(
        client::retry_after_ms(&headers).is_some_and(|ms| ms >= 1),
        "retry-after-ms missing: {headers:?}"
    );

    let c = daemon.counters();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    assert!(load(&c.shed_rate_limited) >= 2, "both alice sheds counted");
    assert_eq!(load(&c.shed), load(&c.shed_rate_limited));

    // Status exposes the admission block.
    let (_, status_body) = client::request(&addr, "GET", "/v1/status", None).unwrap();
    for needle in ["\"admission\"", "\"rate_per_sec\"", "\"buckets\""] {
        assert!(
            status_body.contains(needle),
            "missing {needle}:\n{status_body}"
        );
    }

    daemon.resume();
    daemon.shutdown();
    daemon.wait();
}

/// SLO shedding engages while the queue-wait window breaches the SLO
/// and disengages once the breach ages out of the sliding window.
#[test]
fn slo_shedding_engages_on_queue_wait_flood_and_disengages() {
    let daemon = spawn(ServerOptions {
        admission: AdmissionOptions {
            slo_ms: Some(50),
            window_slot_ms: 100,
            window_slots: 2,
            min_window_samples: 4,
            ..AdmissionOptions::default()
        },
        ..opts()
    })
    .unwrap();
    let addr = daemon.addr().to_string();

    // Inject a queue-wait flood far over the 50ms SLO (the public
    // recording surface doubles as the latency injection point).
    for _ in 0..20 {
        daemon.serve_metrics().queue_wait_us.record(400_000);
    }
    let err = client::submit(&addr, &quick(0xAC10)).expect_err("breached SLO must shed");
    assert!(err.contains("429") && err.contains("SLO"), "got: {err}");
    assert!(
        client::retry_after_ms_from_error(&err).is_some(),
        "SLO shed must carry a hint: {err}"
    );

    // Once the window rotates past the flood, submissions are admitted
    // again — and the admitted job actually runs to completion.
    let mut admitted = None;
    for i in 0..40u64 {
        std::thread::sleep(Duration::from_millis(120));
        if let Ok(resp) = client::submit(&addr, &quick(0xAC20 + i)) {
            admitted = Some(resp);
            break;
        }
    }
    let admitted = admitted.expect("shedding must disengage after the flood ages out");
    client::fetch(&addr, admitted.job, Duration::from_millis(10)).unwrap();
    assert!(
        daemon
            .counters()
            .shed_slo
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    daemon.shutdown();
    daemon.wait();
}

/// Priority aging: a p1 job behind a p2 flood is eventually promoted
/// over *fresh* p2 arrivals; without aging the fresh flood starves it
/// indefinitely. Completion order is read off the flight recorder.
#[test]
fn priority_aging_promotes_a_starved_job_over_fresh_arrivals() {
    let run = |aging_pops: u64, seed_base: u64| -> (usize, usize, usize) {
        let daemon = spawn(ServerOptions {
            workers: 1,
            queue_capacity: 16,
            start_paused: true,
            aging_pops,
            ..opts()
        })
        .unwrap();
        let addr = daemon.addr().to_string();
        let p2 = |seed: u64| JobSpec {
            priority: 2,
            ..quick(seed)
        };
        // Paused: a p2 flood, then the p1 job that would starve.
        for i in 0..6 {
            client::submit(&addr, &p2(seed_base + i)).unwrap();
        }
        let starved = client::submit(
            &addr,
            &JobSpec {
                priority: 1,
                ..quick(seed_base + 10)
            },
        )
        .unwrap()
        .job;
        daemon.resume();
        // Fresh p2 arrivals while the flood drains — the sustained-load
        // shape that starves p1 forever without aging.
        let completed = || {
            daemon
                .counters()
                .completed
                .load(std::sync::atomic::Ordering::Relaxed)
        };
        wait_for(completed, 1, "first flood completion");
        let g1 = client::submit(&addr, &p2(seed_base + 20)).unwrap().job;
        wait_for(completed, 2, "second flood completion");
        let g2 = client::submit(&addr, &p2(seed_base + 21)).unwrap().job;
        wait_for(completed, 9, "all nine jobs");
        let order: Vec<u64> = daemon
            .flight_recorder()
            .snapshot()
            .iter()
            .map(|t| t.job)
            .collect();
        let pos = |id: u64| {
            order
                .iter()
                .position(|&j| j == id)
                .unwrap_or_else(|| panic!("job {id} missing from {order:?}"))
        };
        let res = (pos(starved), pos(g1), pos(g2));
        daemon.shutdown();
        daemon.wait();
        res
    };
    let (s, g1, g2) = run(0, 0xA6E0_0000);
    assert!(
        s > g1 && s > g2,
        "without aging fresh p2 arrivals starve p1: starved at {s}, fresh at {g1}/{g2}"
    );
    let (s, g1, g2) = run(1, 0xA6E1_0000);
    assert!(
        s < g1 && s < g2,
        "aging must promote the starved job: starved at {s}, fresh at {g1}/{g2}"
    );
}

/// A short closed-loop load run against a live daemon: completions
/// happen, latency is measured, and the report carries the server view.
#[test]
fn loadgen_closed_loop_drives_a_live_daemon() {
    use esteem_serve::loadgen::{self, LoadgenOptions, Mode};
    let daemon = spawn(opts()).unwrap();
    let lopts = LoadgenOptions {
        addr: daemon.addr().to_string(),
        mode: Mode::Closed { concurrency: 2 },
        duration: Duration::from_millis(1200),
        seed: 0x0010_AD01,
        clients: 2,
        hit_ratio: 0.3,
        expensive_frac: 0.0,
        cheap_instructions: 100_000,
        poll_interval: Duration::from_millis(3),
        ..LoadgenOptions::default()
    };
    let report = loadgen::run(&lopts);
    assert!(report.completed > 0, "no completions: {report:?}");
    assert_eq!(report.latency.count, report.completed);
    assert!(report.throughput_rps > 0.0);
    assert!(report.shed_rate < 1.0);
    assert!(report.latency.p95_us >= report.latency.p50_us);
    let sq = report
        .server_queue_wait
        .expect("server status must be readable after the run");
    // Cached and coalesced completions never enqueue, so they leave no
    // queue-wait sample behind.
    assert!(
        sq.count + report.cached + report.coalesced >= report.completed,
        "queue-wait samples {} can't cover completions {} (cached {}, coalesced {})",
        sq.count,
        report.completed,
        report.cached,
        report.coalesced
    );
    daemon.shutdown();
    daemon.wait();
}

/// `esteem-loadgen --smoke` is deterministic: same seed, same digest,
/// run to run; a different seed moves it.
#[test]
fn loadgen_smoke_digest_is_deterministic() {
    use std::process::Command;
    let digest = |args: &[&str]| -> String {
        let out = Command::new(env!("CARGO_BIN_EXE_esteem-loadgen"))
            .args(args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "loadgen {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let a = digest(&["--smoke", "--seed", "42", "--mode", "open", "--rps", "50"]);
    let b = digest(&["--smoke", "--seed", "42", "--mode", "open", "--rps", "50"]);
    assert_eq!(a, b, "fixed seed must give an identical schedule");
    assert!(a.starts_with("schedule digest: "), "got: {a}");
    let c = digest(&["--smoke", "--seed", "43", "--mode", "open", "--rps", "50"]);
    assert_ne!(a, c, "a different seed must move the digest");
}

/// The acceptance criterion: under sustained open-loop overload (1.3x
/// the probed saturation rate) of a one-worker daemon, `--slo-ms`
/// admission keeps queue-wait p95 within 2x the SLO, while the
/// uncontrolled baseline blows through it. Everything is measured in
/// units of the probed single-job runtime R so the test is
/// machine-speed independent.
#[test]
fn slo_shedding_bounds_overload_p95_where_baseline_collapses() {
    use esteem_serve::loadgen::{self, LoadgenOptions, Mode};

    // Heavier than `quick()` on purpose: the SLO thresholds below are
    // multiples of the probed job runtime R, and R must dominate the
    // scheduling/polling noise of the loaded phases for the multiples
    // to mean anything. (Probed R is idle-machine R; under load each
    // job also absorbs contention, which only widens the baseline
    // breach but would sink a too-tight controlled bound.)
    const LOAD_WARMUP: u64 = 2_000_000;

    // Probe the saturation rate with a closed-loop run at concurrency
    // 3: enough outstanding jobs that the single worker never idles
    // waiting on client-side submit/fetch turnaround, so
    // `duration / completed` measures the true per-job *service* time.
    // (A serial or one-off probe instead measures service plus client
    // overhead, overestimating R by tens of percent — and an "overload"
    // phase paced from that R quietly runs at ~1.0x saturation, where
    // shedding correctly never engages.) The probe polls at the same
    // cadence as the load phases: on a small machine polling is real
    // contention, and a probe that polls harder than the load phase
    // reports an R the loaded daemon then beats.
    let r_us = {
        let daemon = spawn(ServerOptions {
            workers: 1,
            ..opts()
        })
        .unwrap();
        let probe_opts = |seed: u64, secs: u64| LoadgenOptions {
            addr: daemon.addr().to_string(),
            mode: Mode::Closed { concurrency: 3 },
            duration: Duration::from_secs(secs),
            seed,
            hit_ratio: 0.0,
            expensive_frac: 0.0,
            cheap_instructions: 20_000,
            warmup: Some(LOAD_WARMUP),
            poll_interval: Duration::from_millis(25),
            ..LoadgenOptions::default()
        };
        // Discard a first run: the earliest jobs in the *process* run
        // ~1.5x slower than steady state (allocator growth, page
        // faults), and a probe that includes them overstates R — which
        // understates the saturation rate and turns the "overload"
        // phases into ~1.0x runs where shedding never engages.
        loadgen::run(&probe_opts(0xAD11, 2));
        let probe = loadgen::run(&probe_opts(0xAD10, 3));
        daemon.shutdown();
        daemon.wait();
        assert!(probe.completed > 0, "probe run completed nothing");
        ((probe.duration_s * 1e6) as u64 / probe.completed).max(10_000)
    };
    let slo_us = 5 * r_us;
    let r_s = r_us as f64 / 1e6;
    // 1.3x the one-worker saturation rate: far enough past 1.0 that
    // probe error cannot flip the phases back under saturation, yet low
    // enough that the worst admitted job (queued just before shedding
    // engages, popped after the backlog drains) waits ~1.3x SLO —
    // inside the 2x bound asserted below. (The worst wait scales with
    // the overload factor: shedding engages at the first pop beyond the
    // SLO, and the backlog already admitted at that instant is factor x
    // SLO deep in time.)
    let overload_factor = 1.3;
    let measure = Duration::from_secs_f64((80.0 * r_s).max(4.0));
    // Calibrate each phase's nominal rps so the *realized* arrival
    // count inside the measurement window hits the target factor
    // exactly. A finite Poisson stream can run 20-30% hot or cold by
    // seed luck, which is the difference between "1.3x overload" and
    // "1.7x overload" — offsets scale exactly as 1/rps, so placing the
    // k-th unit-rate arrival at the window edge nails the realized
    // rate deterministically.
    let rps_for = |seed: u64| -> f64 {
        let t = measure.as_secs_f64();
        let k = ((overload_factor * t / r_s).ceil() as usize).max(2);
        let unit = loadgen::arrival_offsets_us(seed, k, 1.0);
        (unit[k - 1] as f64 / 1e6) / t
    };

    let overload = |admission: AdmissionOptions, seed: u64| -> (u64, u64) {
        let daemon = spawn(ServerOptions {
            workers: 1,
            queue_capacity: 64,
            admission,
            ..opts()
        })
        .unwrap();
        let rps = rps_for(seed ^ 0xFFFF);
        let lg = |seed: u64, duration: Duration| LoadgenOptions {
            addr: daemon.addr().to_string(),
            mode: Mode::Open { rps },
            duration,
            seed,
            clients: 4,
            hit_ratio: 0.0,
            expensive_frac: 0.0,
            cheap_instructions: 20_000,
            warmup: Some(LOAD_WARMUP),
            // Gentle polling: at 1.3x saturation dozens of jobs are in
            // flight, and aggressive polling would itself become the
            // load the SLO math doesn't model. 25ms is still well under
            // the SLO (5R), so it does not distort the wait histogram.
            poll_interval: Duration::from_millis(25),
            ..LoadgenOptions::default()
        };
        // Short warm phase (thread pools, run-cache misses), then the
        // measured phase against a clean histogram baseline.
        loadgen::run(&lg(seed, Duration::from_secs(1)));
        let base = daemon.serve_metrics().queue_wait_us.snapshot();
        let report = loadgen::run(&lg(seed ^ 0xFFFF, measure));
        eprintln!(
            "overload phase {seed:x}: attempts {} completed {} shed {} dropped {} failed {} \
             cached {} coalesced {}",
            report.attempts,
            report.completed,
            report.shed,
            report.dropped,
            report.failed,
            report.cached,
            report.coalesced
        );
        let p95 = daemon
            .serve_metrics()
            .queue_wait_us
            .snapshot()
            .delta_since(&base)
            .quantile(0.95);
        let shed_slo = daemon
            .counters()
            .shed_slo
            .load(std::sync::atomic::Ordering::Relaxed);
        daemon.shutdown();
        daemon.wait();
        (p95, shed_slo)
    };

    let (baseline_p95, _) = overload(AdmissionOptions::default(), 0xAD20);
    let (controlled_p95, controlled_sheds) = overload(
        AdmissionOptions {
            slo_ms: Some(slo_us / 1_000),
            // Queue-wait samples arrive one per pop, i.e. one per
            // *loaded* service time (R plus contention), so the window
            // is sized in units of R, not wall-clock — a fixed-ms window
            // would never hold a sample on a slow machine. One sample is
            // enough to engage: the p95 bound relies on shedding firing
            // on the *first* pop whose wait clears the SLO, before the
            // backlog (whose jobs are already beyond saving) deepens.
            window_slot_ms: (r_us / 1_000).max(50),
            window_slots: 4,
            min_window_samples: 1,
            ..AdmissionOptions::default()
        },
        0xAD30,
    );
    eprintln!(
        "overload: R {r_us}us, slo {slo_us}us, baseline p95 {baseline_p95}us, \
         controlled p95 {controlled_p95}us ({controlled_sheds} SLO sheds)"
    );
    assert!(
        baseline_p95 > 2 * slo_us,
        "uncontrolled 1.3x overload must breach 2x SLO: p95 {baseline_p95}us, slo {slo_us}us"
    );
    assert!(
        controlled_p95 <= 2 * slo_us,
        "admission must hold p95 within 2x SLO: p95 {controlled_p95}us, slo {slo_us}us \
         (baseline was {baseline_p95}us)"
    );
    assert!(
        controlled_sheds > 0,
        "the bound must come from SLO shedding actually engaging"
    );
}
